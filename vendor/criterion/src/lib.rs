//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use. The build environment has no registry
//! access, so the real crate cannot be fetched.
//!
//! Semantics: each `bench_function` closure is warmed up, then timed over
//! `sample_size` samples with `std::time::Instant`; mean/min wall time per
//! iteration (and bytes-per-second when a [`Throughput`] is set) print to
//! stdout. Under `cargo test` (which passes `--test` to `harness = false`
//! bench binaries) every benchmark body runs exactly once as a smoke test,
//! mirroring real criterion's test mode.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test`
        // during `cargo test`, expecting a fast smoke run.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {label} ... ok (smoke)");
            return;
        }
        // Warm-up, then calibrate the per-sample iteration count toward
        // ~5 ms so short routines are not pure timer noise.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed / (iters as u32);
            total += per;
            best = best.min(per);
        }
        let mean = total / (self.sample_size as u32);
        let rate = self.throughput.map(|t| {
            let mean_s = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => {
                    format!(", {:.1} MiB/s", n as f64 / mean_s / (1 << 20) as f64)
                }
                Throughput::Elements(n) => format!(", {:.1} Melem/s", n as f64 / mean_s / 1e6),
            }
        });
        println!(
            "bench {label:48} mean {mean:>12?} min {best:>12?}{}",
            rate.unwrap_or_default()
        );
    }

    /// Close the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declare a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

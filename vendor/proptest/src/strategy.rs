//! The `Strategy` trait and its combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`gen_value`) plus `Sized` combinators, mirroring the
/// pieces of real proptest's `Strategy` this workspace uses. There are no
/// value trees and no shrinking: strategies produce final values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf; `recurse` receives a
    /// strategy for the previous level and returns the next level. `depth`
    /// bounds nesting; the size/branch hints of real proptest are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // At every level, bias 1-in-3 toward the leaf so expected size
            // stays finite even before the hard depth bound kicks in.
            level = Union::weighted(vec![(1, leaf.clone()), (2, recurse(level).boxed())]).boxed();
        }
        level
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Weighted choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Uniform choice between `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice with explicit relative weights.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // The affine map can round up to exactly `end` for draws
                // near 1; keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between the given strategies, all yielding the same type.
///
/// ```
/// use proptest::prelude::*;
/// use proptest::test_runner::TestRng;
/// let s = prop_oneof![Just(1u8), Just(2u8), 3u8..10];
/// let mut rng = TestRng::new(1);
/// for _ in 0..50 {
///     let v = s.gen_value(&mut rng);
///     assert!((1..10).contains(&v));
/// }
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

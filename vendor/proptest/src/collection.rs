//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for collection strategies (half-open or exact).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `vec(element, 0..5)` — a vector of 0 to 4 generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

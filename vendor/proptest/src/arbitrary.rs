//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced; full bit-pattern floats (NaN/Inf) are not
        // needed by any test in this workspace.
        (rng.unit_f64() - 0.5) * 2.0e9
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

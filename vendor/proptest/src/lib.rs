//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses. The build environment has no registry access, so
//! the real crate cannot be fetched.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic by default.** Every test function derives its RNG seed
//!   from a fixed workspace seed (`0x5EED_2022`) mixed with the test's own
//!   name, so runs are bit-identical across machines and invocations. Set
//!   `PROPTEST_SEED=<u64>` to explore a different stream and
//!   `PROPTEST_CASES=<n>` to change the case count (default 64).
//! * **No shrinking.** A failing case panics immediately with the case
//!   index; because seeding is deterministic, re-running reproduces it
//!   exactly, which replaces the `proptest-regressions/` persistence files.
//! * Strategies generate directly (no value trees).
//!
//! Supported surface: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, numeric range
//! strategies, char-class regex string strategies (`"[a-z]{1,6}"`), tuple
//! strategies, `Strategy::prop_map`/`prop_recursive`/`boxed`, and
//! `prop::collection::vec`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Define property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over deterministically generated
/// cases. An optional leading `#![proptest_config(expr)]` sets the
/// [`test_runner::ProptestConfig`] for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                // Draw each binding from its strategy, left to right.
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                { $body }
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            panic!("prop_assert_eq failed: {:?} != {:?}", lhs, rhs);
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                lhs, rhs, format!($($fmt)+)
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            panic!("prop_assert_ne failed: both sides are {:?}", lhs);
        }
    }};
}

/// Discard the current case (it counts as neither success nor failure).
/// Only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// The prelude: everything the `proptest!` idiom needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of the crate root (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

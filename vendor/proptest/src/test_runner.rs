//! Deterministic test runner: configuration, RNG and the case loop used by
//! the `proptest!` macro expansion.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` when a case must be discarded.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Outcome of one generated case.
pub type CaseResult = Result<(), Rejected>;

/// Deterministic SplitMix64 RNG used to drive every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed workspace-wide base seed (see crate docs for overrides).
    pub const BASE_SEED: u64 = 0x5EED_2022;

    /// Seed a generator directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive the seed for a named test: base seed (or `PROPTEST_SEED`)
    /// mixed with an FNV-1a hash of the test name, so distinct tests see
    /// distinct but reproducible streams.
    pub fn for_test(name: &str) -> (u64, Self) {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| {
                v.strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
            })
            .unwrap_or(Self::BASE_SEED);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = base ^ h;
        (seed, TestRng::new(seed))
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drive one property: generate cases with `run_case` until `cases`
/// accepted runs succeed. Panics (propagating the case's own panic) on the
/// first failure, after printing enough context to reproduce it.
pub fn run<F>(test_name: &str, config: &ProptestConfig, mut run_case: F)
where
    F: FnMut(&mut TestRng) -> CaseResult,
{
    let (seed, mut rng) = TestRng::for_test(test_name);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 16 + 256;
    while accepted < config.cases {
        let before = rng.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(Rejected)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{test_name}': too many rejected cases \
                         ({rejected} rejects for {accepted} accepts)"
                    );
                }
            }
            Err(payload) => {
                let _ = before; // state that produced the failing case
                eprintln!(
                    "proptest '{test_name}' failed at case {accepted} \
                     (seed 0x{seed:016x}); the run is deterministic — \
                     re-running reproduces this exact case"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

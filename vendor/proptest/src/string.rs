//! Regex-literal string strategies: `"[a-z]{1,6}"` as a `Strategy<Value =
//! String>`, the proptest idiom for random identifiers and payloads.
//!
//! Supports the subset this workspace uses: literal characters, escapes
//! (`\n`, `\t`, `\r`, `\\`, `\"`, `\[`, …), character classes `[...]`
//! (with ranges), groups `(...)`, alternation `|`, and the quantifiers
//! `?`, `{n}` and `{m,n}`. Unsupported syntax panics with a clear message
//! so a silent mis-generation can never weaken a property.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Node {
    /// One character drawn uniformly from the set.
    Class(Vec<char>),
    /// Concatenation.
    Seq(Vec<Node>),
    /// Uniform choice between alternatives.
    Alt(Vec<Node>),
    /// `min..=max` repetitions of the inner node.
    Repeat {
        node: Box<Node>,
        min: usize,
        max: usize,
    },
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        // Every other escaped character stands for itself (\\, \", \[, \-, …).
        other => other,
    }
}

struct Parser<'a> {
    pattern: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            pattern,
            chars: pattern.chars().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn fail(&self, msg: &str) -> ! {
        panic!("regex strategy {:?}: {msg}", self.pattern)
    }

    /// alternation := sequence ('|' sequence)*
    fn alternation(&mut self) -> Node {
        let mut alts = vec![self.sequence()];
        while self.peek() == Some('|') {
            self.next();
            alts.push(self.sequence());
        }
        if alts.len() == 1 {
            alts.pop().expect("one element")
        } else {
            Node::Alt(alts)
        }
    }

    /// sequence := (atom quantifier?)*
    fn sequence(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            items.push(self.quantified(atom));
        }
        Node::Seq(items)
    }

    fn atom(&mut self) -> Node {
        let c = self.next().expect("sequence checked peek");
        match c {
            '[' => Node::Class(self.class_body()),
            '(' => {
                let inner = self.alternation();
                if self.next() != Some(')') {
                    self.fail("unterminated group");
                }
                inner
            }
            '\\' => match self.next() {
                Some(e) => Node::Class(vec![unescape(e)]),
                None => self.fail("dangling escape"),
            },
            '{' | '}' | '*' | '+' | '?' | '^' | '$' | '.' => self.fail(
                "unsupported metacharacter (vendored proptest supports classes, \
                 escapes, groups, alternation, `?` and `{m,n}` only)",
            ),
            literal => Node::Class(vec![literal]),
        }
    }

    fn quantified(&mut self, node: Node) -> Node {
        match self.peek() {
            Some('?') => {
                self.next();
                Node::Repeat {
                    node: Box::new(node),
                    min: 0,
                    max: 1,
                }
            }
            Some('{') => {
                self.next();
                let mut body = String::new();
                loop {
                    match self.next() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => self.fail("unterminated repetition"),
                    }
                }
                let counts: Vec<usize> = body
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .unwrap_or_else(|_| self.fail("bad repetition count"))
                    })
                    .collect();
                let (min, max) = match counts.as_slice() {
                    [n] => (*n, *n),
                    [m, n] => (*m, *n),
                    _ => self.fail("bad repetition"),
                };
                if min > max {
                    self.fail("inverted repetition");
                }
                Node::Repeat {
                    node: Box::new(node),
                    min,
                    max,
                }
            }
            _ => node,
        }
    }

    /// Body of a `[...]` class; the opening `[` is already consumed.
    fn class_body(&mut self) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = match self.next() {
                Some(c) => c,
                None => self.fail("unterminated character class"),
            };
            match c {
                ']' => break,
                '\\' => match self.next() {
                    Some(e) => set.push(unescape(e)),
                    None => self.fail("dangling escape"),
                },
                lo => {
                    // Range `a-z` (a `-` before `]` is a literal).
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.next();
                        let hi = self.next().expect("peeked range end");
                        if lo > hi {
                            self.fail("inverted class range");
                        }
                        let mut ch = lo;
                        loop {
                            set.push(ch);
                            if ch == hi {
                                break;
                            }
                            ch = char::from_u32(ch as u32 + 1).expect("class range");
                        }
                    } else {
                        set.push(lo);
                    }
                }
            }
        }
        if set.is_empty() {
            self.fail("empty character class");
        }
        set
    }
}

fn parse(pattern: &str) -> Node {
    let mut p = Parser::new(pattern);
    let node = p.alternation();
    if p.peek().is_some() {
        p.fail("trailing `)` without opening group");
    }
    node
}

fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Class(set) => out.push(set[rng.usize_in(0, set.len())]),
        Node::Seq(items) => {
            for item in items {
                generate(item, rng, out);
            }
        }
        Node::Alt(alts) => generate(&alts[rng.usize_in(0, alts.len())], rng, out),
        Node::Repeat { node, min, max } => {
            let count = if min == max {
                *min
            } else {
                rng.usize_in(*min, *max + 1)
            };
            for _ in 0..count {
                generate(node, rng, out);
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        // Parsing on every call keeps the API allocation-free at set-up
        // time; patterns are tiny, so this is not a hot path.
        let node = parse(self);
        let mut out = String::new();
        generate(&node, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-c]{0,6}".gen_value(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn escapes_and_literals() {
        let mut rng = TestRng::new(4);
        let s = r#"ab\nc"#.gen_value(&mut rng);
        assert_eq!(s, "ab\nc");
        for _ in 0..100 {
            let s = "[x\\n\\]\\\\]{1,3}".gen_value(&mut rng);
            assert!(s.chars().all(|c| "x\n]\\".contains(c)));
        }
    }

    #[test]
    fn json_ish_class() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9 _\\\\\"\\n\\t{}\\[\\],:]{0,12}".gen_value(&mut rng);
            assert!(s.len() <= 12);
        }
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::new(6);
        let s = "[0-9]{4}".gen_value(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn groups_optionals_and_alternation() {
        let mut rng = TestRng::new(7);
        let mut saw_dot = false;
        let mut saw_exp = false;
        for _ in 0..300 {
            let s = "-?[0-9]{1,5}(\\.[0-9]{1,3})?(e-?[0-9])?".gen_value(&mut rng);
            saw_dot |= s.contains('.');
            saw_exp |= s.contains('e');
            // Must always be a valid JSON-ish number token.
            let t = s.strip_prefix('-').unwrap_or(&s);
            assert!(t.starts_with(|c: char| c.is_ascii_digit()), "{s:?}");
        }
        assert!(saw_dot && saw_exp, "optional groups never taken");
        for _ in 0..50 {
            let s = "(ab|cd){2}".gen_value(&mut rng);
            assert_eq!(s.len(), 4);
            assert!(["ab", "cd"].contains(&&s[0..2]));
            assert!(["ab", "cd"].contains(&&s[2..4]));
        }
    }
}

//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`). The build environment has no registry access, so the
//! real crate cannot be fetched; this keeps the public surface source-
//! compatible while remaining fully deterministic.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for the seeded synthetic workload generation it backs. Streams are
//! stable across platforms and releases of this stub, which is exactly the
//! reproducibility property the benchmark datasets need.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core random-number source: 64 fresh bits per call.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is offered).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (the stand-in for `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly (the stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw one value uniformly from `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = f64::standard_sample(rng) as $t;
                let v = lo + u * (hi - lo);
                // lo + u*(hi-lo) can round up to exactly hi for u near 1;
                // keep the half-open contract.
                if v < hi {
                    v
                } else {
                    hi.next_down().max(lo)
                }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges a value can be drawn from (the stand-in for
/// `rand::distributions::uniform::SampleRange`). The single blanket impl
/// (matching real rand) is what lets untyped integer literals in
/// `gen_range(0..7)` unify with the use site's type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draw a value from the type's standard distribution
    /// (floats uniform in `[0, 1)`, integers over their full range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw a value uniformly from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

//! # rfjson — raw filtering of JSON data on FPGAs
//!
//! Top-level facade over the seven workspace crates. The integration
//! tests in `tests/` and the demos in `examples/` depend on this
//! package; library users normally depend on the individual crates.
//!
//! * [`core`] ([`rfjson_core`]) — filter primitives, expression
//!   composition, elaboration, design-space exploration.
//! * [`rtl`] ([`rfjson_rtl`]) — gate/register netlists and the
//!   cycle-accurate simulator.
//! * [`redfa`] ([`rfjson_redfa`]) — regex → NFA → minimised DFA and the
//!   numeric-range automata of Fig. 2.
//! * [`jsonstream`] ([`rfjson_jsonstream`]) — string mask, nesting
//!   tracker, reference parser, writer and framing.
//! * [`techmap`] ([`rfjson_techmap`]) — AIG extraction and K-LUT
//!   mapping for resource reports.
//! * [`riotbench`] ([`rfjson_riotbench`]) — seeded synthetic SmartCity,
//!   Taxi and Twitter workloads.
//! * [`runtime`] ([`rfjson_runtime`]) — sharded parallel streaming
//!   runtime over any filter backend.
//! * [`verify`] ([`rfjson_verify`]) — static analysis of compiled
//!   artifacts: DFA, flat-program and netlist verification passes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfjson_core as core;
pub use rfjson_jsonstream as jsonstream;
pub use rfjson_redfa as redfa;
pub use rfjson_riotbench as riotbench;
pub use rfjson_rtl as rtl;
pub use rfjson_runtime as runtime;
pub use rfjson_techmap as techmap;
pub use rfjson_verify as verify;

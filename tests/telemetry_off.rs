//! The `telemetry-off` contract: the same API compiles in both modes,
//! and the no-op build observably records nothing.
//!
//! CI runs this test binary twice — once default, once with
//! `--no-default-features --features telemetry-off` — and the branches
//! below pin the behaviour of whichever mode is compiled in.

use rfjson_core::query::query_to_exprs;
use rfjson_core::{Engine, FilterBackend};
use rfjson_riotbench::{smartcity_corpus, Query};

#[test]
fn enabled_flag_matches_compiled_mode() {
    assert_eq!(
        rfjson_telemetry::ENABLED,
        cfg!(not(feature = "telemetry-off"))
    );
}

#[test]
fn noop_mode_records_nothing_and_active_mode_records_everything() {
    let c = rfjson_telemetry::counter("telemetry_off.test.counter");
    let g = rfjson_telemetry::gauge("telemetry_off.test.gauge");
    let h = rfjson_telemetry::histogram("telemetry_off.test.histogram");
    c.add(41);
    c.incr();
    g.set(2.5);
    h.record(1024);

    if rfjson_telemetry::ENABLED {
        assert_eq!(c.get(), 42);
        assert!((g.get() - 2.5).abs() < f64::EPSILON);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1024);
        let snap = rfjson_telemetry::registry().snapshot();
        assert_eq!(snap.counter("telemetry_off.test.counter"), 42);
    } else {
        // The no-op build accepts every call and observably drops it.
        assert_eq!(c.get(), 0);
        assert!(g.get().abs() < f64::EPSILON);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        let snap = rfjson_telemetry::registry().snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}

#[test]
fn pipeline_flushes_nothing_when_off() {
    // Filtering behaviour is identical in both modes; only the counters
    // differ. (The dedicated differential/e2e suites pin the decisions
    // themselves — here we pin that the off build stays silent.)
    let corpus = smartcity_corpus(40);
    let stream = corpus.stream();
    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");
    let before = rfjson_telemetry::registry().snapshot();
    let mut engine = Engine::compile(&expr);
    let decisions = engine.filter_stream(&stream);
    assert_eq!(decisions.len(), corpus.len());
    let delta = rfjson_telemetry::registry().snapshot().delta(&before);

    if rfjson_telemetry::ENABLED {
        assert_eq!(delta.counter("framing.records"), corpus.len() as u64);
    } else {
        assert!(delta.counters.is_empty());
        assert!(delta.gauges.is_empty());
        assert!(delta.histograms.is_empty());
    }
}

#[test]
fn snapshot_type_works_in_both_modes() {
    // `Snapshot` itself is always the real struct (it carries data
    // across processes, e.g. parsed bench files), even when recording
    // is compiled out.
    let mut a = rfjson_telemetry::Snapshot::default();
    a.counters.insert("x".into(), 3);
    let mut b = rfjson_telemetry::Snapshot::default();
    b.counters.insert("x".into(), 5);
    let d = b.delta(&a);
    assert_eq!(d.counter("x"), 2);
    assert!(d.to_json().contains("\"x\": 2"));
}

//! Record-boundary reset regression: a backend that has just processed
//! one record must decide the next record exactly like a freshly
//! compiled backend — no latch, DFA state, substring run counter,
//! string-mask phase, nesting depth or context flag may leak across the
//! boundary.
//!
//! The first records are chosen adversarially: a matching record (all
//! latches high), a truncated record that ends inside a string (odd
//! quote parity), unbalanced nesting, and a dangling number token. Any
//! incomplete reset shows up as a divergent second decision.

use rfjson_core::cosim::CosimBackend;
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend, StructScope};
use rfjson_runtime::{RunnerConfig, ShardedRunner};

fn exprs() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::substring(b"dust", 4).unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::window(b"light").unwrap(),
        Expr::int_range(12, 49),
        Expr::float_range("0.7", "35.1").unwrap(),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"light", 1).unwrap(),
                Expr::int_range(12, 49),
            ],
        ),
    ]
}

/// First records designed to leave residue in any incompletely reset
/// state machine.
fn dirty_records() -> Vec<&'static [u8]> {
    vec![
        // Fully matching: every latch and context flag set.
        br#"{"e":[{"v":"21.0","n":"temperature"},{"v":"30","n":"light"},{"n":"humidity"},{"n":"dust"}]}"#,
        // Ends inside a string: odd quote parity carried over would
        // string-mask the entire next record.
        br#"{"e":[{"v":"21.0","n":"temperat"#,
        // Unbalanced nesting: depth tracker left at +3.
        br#"{"a":{"b":{"c":21"#,
        // Dangling number token at end of record.
        br#"{"v":35"#,
        // Blank-ish garbage.
        b"\xff\xfe{{{{",
    ]
}

/// Second records whose decisions are the actual assertion targets
/// (a matching and a non-matching one per shape).
fn probe_records() -> Vec<&'static [u8]> {
    vec![
        br#"{"e":[{"v":"21.0","n":"temperature"},{"v":"30","n":"light"},{"n":"humidity"},{"n":"dust"}]}"#,
        br#"{"e":[{"v":"99.0","n":"nothing"}]}"#,
        br#"{"light":13,"temperature":1.0,"humidity":1,"dust":1}"#,
        br"{}",
    ]
}

fn backends(expr: &Expr) -> Vec<Box<dyn FilterBackend>> {
    vec![
        Box::new(CompiledFilter::compile(expr)),
        Box::new(Engine::compile(expr)),
        Box::new(CosimBackend::compile(expr)),
    ]
}

#[test]
fn second_record_decision_is_reset_independent() {
    for expr in exprs() {
        for probe in probe_records() {
            // Reference: a fresh backend per probe.
            let expected: Vec<bool> = backends(&expr)
                .iter_mut()
                .map(|b| b.accepts_record(probe))
                .collect();
            for dirty in dirty_records() {
                let got: Vec<bool> = backends(&expr)
                    .iter_mut()
                    .map(|b| {
                        b.accepts_record(dirty);
                        b.accepts_record(probe)
                    })
                    .collect();
                assert_eq!(
                    got,
                    expected,
                    "expr `{expr}` after dirty record {:?} on probe {:?} (model/engine/cosim)",
                    String::from_utf8_lossy(dirty),
                    String::from_utf8_lossy(probe),
                );
            }
        }
    }
}

#[test]
fn consecutive_records_in_one_stream_match_fresh_decisions() {
    // Same property through the streaming path: the framer's in-stream
    // reset must be as complete as the explicit accepts_record reset.
    for expr in exprs() {
        for dirty in dirty_records() {
            // Truncated records can't be framed mid-stream (a record
            // separator completes them) — that's fine: framing appends
            // the separator, which is exactly what we're testing.
            for probe in probe_records() {
                let mut stream = Vec::new();
                stream.extend_from_slice(dirty);
                stream.push(b'\n');
                stream.extend_from_slice(probe);
                stream.push(b'\n');
                for b in &mut backends(&expr) {
                    let decisions = b.filter_stream(&stream);
                    assert_eq!(decisions.len(), 2, "{} framing", b.name());
                    let mut fresh = backends(&expr)
                        .into_iter()
                        .find(|f| f.name() == b.name())
                        .unwrap();
                    assert_eq!(
                        decisions[1],
                        fresh.accepts_record(probe),
                        "{} leaks state from {:?} into {:?} (expr `{expr}`)",
                        b.name(),
                        String::from_utf8_lossy(dirty),
                        String::from_utf8_lossy(probe),
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_runner_lane_reuse_matches_serial() {
    // A lane that processes many consecutive records (min_shard_bytes
    // forces few shards) must agree with per-record fresh decisions.
    for expr in exprs() {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        let mut reference = Engine::compile(&expr);
        for dirty in dirty_records() {
            for probe in probe_records() {
                for rec in [dirty, probe] {
                    stream.extend_from_slice(rec);
                    stream.push(b'\n');
                    expected.push(reference.accepts_record(rec));
                }
            }
        }
        for shards in [1, 3] {
            let mut runner: ShardedRunner<Engine> = ShardedRunner::with_config(
                &expr,
                RunnerConfig {
                    shards: Some(shards),
                    min_shard_bytes: 1,
                },
            );
            assert_eq!(
                runner.filter_stream(&stream),
                expected,
                "expr `{expr}` with {shards} shard(s)"
            );
        }
    }
}

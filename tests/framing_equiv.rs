//! Cross-impl framing equivalence: the NDJSON framing rules live once in
//! `rfjson_jsonstream::frame`, and every consumer — the slice iterator,
//! the chunk assembler, the byte-serial stream driver behind
//! [`FilterBackend`], and the shard splitter — must agree on **which**
//! records a stream contains, for any input.

use proptest::prelude::*;
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend};
use rfjson_jsonstream::frame::{shard_ranges, split_records, ChunkFramer, FrameAction};
use rfjson_jsonstream::FrameAssembler;

/// Record contents via the chunked assembler, at a given chunk size.
fn assembler_records(stream: &[u8], chunk_size: usize) -> Vec<Vec<u8>> {
    let mut asm = FrameAssembler::new();
    let mut got = Vec::new();
    for chunk in stream.chunks(chunk_size.max(1)) {
        asm.push_chunk(chunk, |r| got.push(r.to_vec()));
    }
    asm.finish(|r| got.push(r.to_vec()));
    got
}

/// Record count via the raw byte-serial framer (what the stream drivers
/// inside `FilterBackend::filter_stream_into` consume).
fn framer_record_count(stream: &[u8]) -> usize {
    let mut framer = ChunkFramer::new();
    let mut n = 0;
    for &b in stream {
        if framer.on_byte(b) == FrameAction::EndRecord {
            n += 1;
        }
    }
    if framer.finish() {
        n += 1;
    }
    n
}

/// Asserts that every framing view agrees on `stream`.
fn assert_framing_agreement(stream: &[u8]) {
    let split: Vec<Vec<u8>> = split_records(stream).map(<[u8]>::to_vec).collect();

    // Chunk assembler, across chunk sizes.
    for chunk_size in [1, 2, 3, 7, 64, stream.len().max(1)] {
        assert_eq!(
            assembler_records(stream, chunk_size),
            split,
            "assembler(chunk={chunk_size}) vs split_records on {:?}",
            String::from_utf8_lossy(stream)
        );
    }

    // Byte-serial framer.
    assert_eq!(
        framer_record_count(stream),
        split.len(),
        "ChunkFramer vs split_records on {:?}",
        String::from_utf8_lossy(stream)
    );

    // Backend stream drivers: one decision per record, both backends.
    let expr = Expr::int_range(1, 5);
    for decisions in [
        CompiledFilter::compile(&expr).filter_stream(stream),
        Engine::compile(&expr).filter_stream(stream),
    ] {
        assert_eq!(
            decisions.len(),
            split.len(),
            "filter_stream decision count vs split_records on {:?}",
            String::from_utf8_lossy(stream)
        );
    }

    // Shard splitter: concatenated shard records == serial records.
    for shards in [1, 2, 3, 8] {
        let sharded: Vec<Vec<u8>> = shard_ranges(stream, shards)
            .into_iter()
            .flat_map(|r| split_records(&stream[r]).map(<[u8]>::to_vec))
            .collect();
        assert_eq!(
            sharded,
            split,
            "shard_ranges({shards}) vs split_records on {:?}",
            String::from_utf8_lossy(stream)
        );
    }
}

#[test]
fn framing_views_agree_on_edge_streams() {
    let streams: Vec<&[u8]> = vec![
        b"",
        b"\n",
        b"\r\n",
        b"\r\r\n",
        b"\r",
        b"a",
        b"a\n",
        b"a\r\n",
        b"a\r\r\n",
        b"a\rb\nc",
        b"\n\na\n\n\nb\n\n",
        b"{\"a\":3}\r\n\r\n{\"a\":9}\n\n{\"a\":2}",
        b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}",
        b"trailing-no-newline",
    ];
    for stream in &streams {
        assert_framing_agreement(stream);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random mixtures of content bytes, CR, LF — the full framing
    /// state space.
    #[test]
    fn framing_views_agree_on_random_streams(
        soup in proptest::collection::vec(
            prop_oneof![
                Just(b'\n'), Just(b'\r'), Just(b'a'), Just(b'{'),
                Just(b'}'), Just(b'"'), Just(b'1'), Just(b','),
            ],
            0..200,
        ),
    ) {
        assert_framing_agreement(&soup);
    }
}

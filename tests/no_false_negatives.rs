//! Property-based tests of the raw-filter guarantee: **no false
//! negatives, ever** — plus exactness properties of the supporting
//! machinery (range automata, string masks, matchers).

use proptest::prelude::*;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::primitive::{
    exact_end_positions, DfaStringMatcher, FireFilter, SubstringMatcher, WindowMatcher,
};
use rfjson_core::FilterBackend;
use rfjson_jsonstream::{NestingTracker, StringMask};
use rfjson_redfa::range::{NumberBounds, NumberKind};
use rfjson_redfa::Decimal;

/// A SenML-ish record with controllable sensor values.
fn senml_record(temp_tenths: i32, hum_tenths: i32, aqr: i32) -> Vec<u8> {
    format!(
        concat!(
            "{{\"e\":[",
            "{{\"v\":\"{}.{}\",\"u\":\"far\",\"n\":\"temperature\"}},",
            "{{\"v\":\"{}.{}\",\"u\":\"per\",\"n\":\"humidity\"}},",
            "{{\"v\":\"{}\",\"u\":\"per\",\"n\":\"airquality_raw\"}}",
            "],\"bt\":1422748800000}}"
        ),
        temp_tenths / 10,
        (temp_tenths % 10).abs(),
        hum_tenths / 10,
        (hum_tenths % 10).abs(),
        aqr,
    )
    .into_bytes()
}

proptest! {
    /// Any record whose temperature is genuinely within range must be
    /// accepted by the structural {s1 & v} filter, whatever the other
    /// sensors do.
    #[test]
    fn structural_filter_never_drops_matches(
        temp in 7i32..=351,
        hum in 0i32..1000,
        aqr in 0i32..2000,
    ) {
        let expr = Expr::context_scoped(StructScope::Object, [
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let mut filter = CompiledFilter::compile(&expr);
        let record = senml_record(temp, hum, aqr);
        // temp is in tenths: 7..=351 ⇒ 0.7..=35.1 inclusive.
        prop_assert!(
            filter.accepts_record(&record),
            "dropped record with temperature {}.{}",
            temp / 10, temp % 10
        );
    }

    /// Substring matchers never miss a true occurrence, for any needle,
    /// block length and haystack.
    #[test]
    fn substring_matcher_no_false_negatives(
        needle in "[a-d]{1,6}",
        haystack in "[a-e \\{\\}:,\"]{0,40}",
        b in 1usize..6,
    ) {
        let needle = needle.as_bytes();
        let b = b.min(needle.len());
        let mut m = SubstringMatcher::new(needle, b).unwrap();
        let hay = haystack.as_bytes();
        let fires = m.fire_positions(hay);
        for end in exact_end_positions(hay, needle) {
            prop_assert!(
                fires.contains(&end),
                "B={b} missed occurrence ending at {end}"
            );
        }
    }

    /// Exact matchers (DFA and window) fire exactly at true ends.
    #[test]
    fn exact_matchers_are_exact(
        needle in "[a-c]{1,5}",
        haystack in "[a-d]{0,30}",
    ) {
        let needle_b = needle.as_bytes();
        let hay = haystack.as_bytes();
        let want = exact_end_positions(hay, needle_b);
        let mut dfa = DfaStringMatcher::new(needle_b);
        let mut win = WindowMatcher::new(needle_b);
        prop_assert_eq!(dfa.fire_positions(hay), want.clone());
        prop_assert_eq!(win.fire_positions(hay), want);
    }

    /// The integer-range automaton accepts exactly the integers in range.
    #[test]
    fn int_range_dfa_exact(
        lo in 0i64..500,
        width in 0i64..500,
        probe in 0i64..1200,
    ) {
        let hi = lo + width;
        let bounds = NumberBounds::int_range(lo, hi);
        let dfa = bounds.to_dfa_exact();
        let token = probe.to_string();
        prop_assert_eq!(
            dfa.accepts(token.as_bytes()),
            probe >= lo && probe <= hi,
            "probe {} vs [{}, {}]", probe, lo, hi
        );
    }

    /// The decimal-range automaton agrees with exact decimal comparison,
    /// including negative bounds and fractional probes.
    #[test]
    fn float_range_dfa_exact(
        lo_h in -3000i64..3000,
        width_h in 0i64..4000,
        probe_h in -8000i64..8000,
    ) {
        // Work in hundredths for exact arithmetic.
        let fmt = |h: i64| {
            let sign = if h < 0 { "-" } else { "" };
            let a = h.abs();
            if a % 100 == 0 {
                format!("{sign}{}", a / 100)
            } else if a % 10 == 0 {
                format!("{sign}{}.{}", a / 100, (a / 10) % 10)
            } else {
                format!("{sign}{}.{:02}", a / 100, a % 100)
            }
        };
        let hi_h = lo_h + width_h;
        let lo: Decimal = fmt(lo_h).parse().unwrap();
        let hi: Decimal = fmt(hi_h).parse().unwrap();
        let bounds = NumberBounds::new(lo, hi, NumberKind::Float).unwrap();
        let dfa = bounds.to_dfa_exact();
        let token = fmt(probe_h);
        prop_assert_eq!(
            dfa.accepts(token.as_bytes()),
            probe_h >= lo_h && probe_h <= hi_h,
            "probe {} vs [{}, {}]", token, fmt(lo_h), fmt(hi_h)
        );
    }

    /// The streaming string mask agrees with an oracle computed from the
    /// parser's view of string literal extents on arbitrary ASCII strings
    /// embedded in JSON.
    #[test]
    fn string_mask_brackets_never_count_inside_strings(
        payload in "[a-z\\{\\}\\[\\],0-9]{0,20}",
    ) {
        // Build {"k":"<payload>","d":[1]} — payload is inside a string, so
        // whatever brackets it contains, the tracker must end at depth 0
        // and the array's depth must be 2.
        let record = format!("{{\"k\":\"{payload}\",\"d\":[1]}}");
        let mut t = NestingTracker::new();
        let depths: Vec<u32> = record.bytes().map(|b| t.on_byte(b)).collect();
        prop_assert_eq!(t.depth(), 0);
        // The '1' inside the array sits at depth 2.
        let one_pos = record.rfind('1').unwrap();
        prop_assert_eq!(depths[one_pos], 2);
    }

    /// Escape chains of any length are tracked correctly: a string
    /// containing n backslashes before a quote stays open iff n is odd.
    #[test]
    fn escape_chains(n_backslashes in 0usize..12) {
        let mut s = String::from("\"");
        for _ in 0..n_backslashes {
            s.push('\\');
        }
        s.push('"');
        let mut m = StringMask::new();
        for b in s.bytes() {
            m.on_byte(b);
        }
        prop_assert_eq!(m.in_string(), n_backslashes % 2 == 1);
    }

    /// Composed AND filters: accept implies every conjunct would accept
    /// alone (monotonicity of composition).
    #[test]
    fn and_composition_monotone(
        a_lo in 0i64..50,
        b_lo in 0i64..50,
        value in 0i64..100,
    ) {
        let ea = Expr::int_range(a_lo, a_lo + 25);
        let eb = Expr::int_range(b_lo, b_lo + 25);
        let eand = Expr::and([ea.clone(), eb.clone()]);
        let record = format!("{{\"x\":{value}}}").into_bytes();
        let and_accepts = CompiledFilter::compile(&eand).accepts_record(&record);
        let a_accepts = CompiledFilter::compile(&ea).accepts_record(&record);
        let b_accepts = CompiledFilter::compile(&eb).accepts_record(&record);
        prop_assert_eq!(and_accepts, a_accepts && b_accepts);
    }

    /// The paper's running example (Listing 2's query on Listing 1-shaped
    /// records), checked against **all four** primitive matchers: the
    /// structural `{string & number}` filter is built once per string
    /// technique — (i) DFA matcher, (ii) window matcher, (iii) substring
    /// matcher — each combined with the (iv) number-range matcher, and
    /// none of them may ever drop a genuinely matching record.
    #[test]
    fn running_example_all_four_matchers(
        temp in 7i32..=351,
        hum in 0i32..1000,
        aqr in 0i32..2000,
        b in 1usize..4,
    ) {
        let string_variants: [(&str, Expr); 3] = [
            ("dfa", Expr::dfa_string(b"temperature").unwrap()),
            ("window", Expr::window(b"temperature").unwrap()),
            ("substring", Expr::substring(b"temperature", b).unwrap()),
        ];
        let record = senml_record(temp, hum, aqr);
        for (name, string_expr) in string_variants {
            // Listing 2: { s("temperature") & v(0.7 <= f <= 35.1) } — the
            // number matcher is the fourth primitive, present in every
            // variant.
            let expr = Expr::context_scoped(StructScope::Object, [
                string_expr,
                Expr::float_range("0.7", "35.1").unwrap(),
            ]);
            let mut filter = CompiledFilter::compile(&expr);
            // temp is in tenths: 7..=351 ⇒ 0.7..=35.1 inclusive, so the
            // record genuinely matches and must never be filtered out.
            prop_assert!(
                filter.accepts_record(&record),
                "{name} matcher dropped record with temperature {}.{}",
                temp / 10, temp % 10
            );
        }
    }

    /// OR filters accept iff some branch accepts (no pruning possible).
    #[test]
    fn or_composition_exact(
        value in 0i64..100,
    ) {
        let ea = Expr::int_range(0, 20);
        let eb = Expr::int_range(60, 80);
        let eor = Expr::or([ea.clone(), eb.clone()]);
        let record = format!("{{\"x\":{value}}}").into_bytes();
        let or_accepts = CompiledFilter::compile(&eor).accepts_record(&record);
        let a = CompiledFilter::compile(&ea).accepts_record(&record);
        let b = CompiledFilter::compile(&eb).accepts_record(&record);
        prop_assert_eq!(or_accepts, a || b);
    }
}

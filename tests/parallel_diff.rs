//! Differential tests for the sharded parallel runtime: for any
//! expression, stream, and shard count, `ShardedRunner` decisions must
//! be **identical** to the serial `Engine::filter_stream` and
//! `CompiledFilter::filter_stream` — sharding is allowed to be faster,
//! never different.

use proptest::prelude::*;
use rfjson_core::query::query_to_exprs;
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend, StructScope};
use rfjson_riotbench::{smartcity, taxi, twitter, Query};
use rfjson_runtime::{filter_stream_sharded, ShardedRunner};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Serial engine + serial model + sharded runner (both backends) must
/// all produce the same decision vector.
fn assert_parallel_equals_serial(expr: &Expr, stream: &[u8]) {
    let serial_engine = Engine::compile(expr).filter_stream(stream);
    let serial_model = CompiledFilter::compile(expr).filter_stream(stream);
    assert_eq!(
        serial_engine, serial_model,
        "serial paths disagree on expr `{expr}`"
    );
    for shards in SHARD_COUNTS {
        assert_eq!(
            filter_stream_sharded::<Engine>(expr, stream, shards),
            serial_engine,
            "engine-backed runner diverges: expr `{expr}`, shards {shards}"
        );
        assert_eq!(
            filter_stream_sharded::<CompiledFilter>(expr, stream, shards),
            serial_model,
            "model-backed runner diverges: expr `{expr}`, shards {shards}"
        );
    }
}

/// Expressions covering every primitive technique, both structural
/// scopes, and the paper's Table VIII queries.
fn expression_zoo() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::window(b"light").unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::int_range(12, 49),
        Expr::float_range("-12.5", "43.1").unwrap(),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        ),
        query_to_exprs(&Query::qs0(), 1).unwrap(),
        query_to_exprs(&Query::qt(), 2).unwrap(),
    ]
}

#[test]
fn parallel_equals_serial_on_generated_corpora() {
    let datasets = [
        smartcity::generate(310, 60),
        taxi::generate(311, 60),
        twitter::generate(312, 40),
    ];
    for expr in expression_zoo() {
        for ds in &datasets {
            assert_parallel_equals_serial(&expr, &ds.stream());
        }
    }
}

#[test]
fn parallel_equals_serial_on_adversarial_framing() {
    let streams: Vec<&[u8]> = vec![
        b"",
        b"\n\n\n",
        b"{\"a\":3}",
        b"{\"a\":3}\r\n\r\n{\"a\":9}\n\n{\"a\":2}",
        b"\r\n{\"a\":3}\r\n",
        br#"{"e":[{"v":"21.0","n":"temperature"}]}"#,
    ];
    for expr in expression_zoo() {
        for stream in &streams {
            assert_parallel_equals_serial(&expr, stream);
        }
    }
}

#[test]
fn runner_reuses_output_buffer() {
    let expr = Expr::int_range(1, 5);
    let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&expr, 3);
    let stream = b"{\"a\":3}\n{\"a\":9}\n{\"a\":4}\n";
    let mut out = Vec::new();
    runner.filter_stream_into(stream, &mut out);
    runner.filter_stream_into(stream, &mut out);
    assert_eq!(out, vec![true, false, true, true, false, true]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random corpora × random zoo expression × every shard count.
    #[test]
    fn parallel_equals_serial_on_random_corpora(
        seed in 0u64..1_000_000,
        n in 1usize..30,
        which in 0usize..3,
        expr_idx in 0usize..9,
    ) {
        let ds = match which {
            0 => smartcity::generate(seed, n),
            1 => taxi::generate(seed, n),
            _ => twitter::generate(seed, n),
        };
        let zoo = expression_zoo();
        let expr = &zoo[expr_idx % zoo.len()];
        let stream = ds.stream();
        let serial = Engine::compile(expr).filter_stream(&stream);
        for shards in SHARD_COUNTS {
            prop_assert_eq!(
                &filter_stream_sharded::<Engine>(expr, &stream, shards),
                &serial
            );
        }
    }
}

//! Golden-snapshot test: the exact JSON text a fixed QS0 run produces.
//!
//! Two contracts are pinned at once, byte for byte:
//!
//! * the snapshot **format** (`rfjson-telemetry/v1`: schema line,
//!   two-space indent, sorted names, inline histograms, no trailing
//!   newline) that `perf_trajectory --telemetry` embeds and the verify
//!   CLI prints — downstream parsers may rely on it;
//! * the engine/framing **counter values** for a deterministic corpus —
//!   any accounting drift in the scan paths shows up as a diff here.
//!
//! This test lives in its own binary on purpose: telemetry counters are
//! process-global, and no other test may run in this process.

use rfjson_core::query::query_to_exprs;
use rfjson_core::{Engine, FilterBackend};
use rfjson_riotbench::{smartcity_corpus, Query};

#[test]
fn qs0_snapshot_json_is_pinned() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let corpus = smartcity_corpus(25);
    let stream = corpus.stream();
    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");

    let before = rfjson_telemetry::registry().snapshot();
    let mut engine = Engine::compile(&expr);
    let decisions = engine.filter_stream(&stream);
    let delta = rfjson_telemetry::registry().snapshot().delta(&before);

    assert_eq!(decisions.iter().filter(|m| **m).count(), 14);

    // 25 records of the 215–220-byte smartcity distribution: 5400 bytes
    // through the SWAR word loop, 51 through the byte-serial path
    // (sub-word tails + the 25 newline separators), none prefilter-
    // skipped (QS0's literals occur in every record, so the prefilter
    // never rejects and self-disables after probation — no
    // `engine.prefilter.rejected` / `.disabled` entries survive the
    // delta's drop-if-unchanged rule).
    let golden = concat!(
        "{\n",
        "  \"schema\": \"rfjson-telemetry/v1\",\n",
        "  \"counters\": {\n",
        "    \"engine.bytes.block\": 5400,\n",
        "    \"engine.bytes.byte_serial\": 51,\n",
        "    \"engine.prefilter.checked\": 25,\n",
        "    \"engine.records\": 25,\n",
        "    \"framing.records\": 25\n",
        "  },\n",
        "  \"gauges\": {},\n",
        "  \"histograms\": {}\n",
        "}"
    );
    assert_eq!(delta.filtered(&["engine.", "framing."]).to_json(), golden);

    // Byte conservation, restated on the pinned numbers.
    assert_eq!(5400 + 51, stream.len());
}

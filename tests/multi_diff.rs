//! Differential tests for the fused multi-query engine: for any query
//! batch, [`MultiEngine`] must be **byte-identical** to running N
//! independent [`Engine`]s — on the per-byte latched accept signal, at
//! arbitrary byte/block split seams, at every shard count, and under
//! quarantine limits. Fusing is allowed to be faster, never different.

use proptest::prelude::*;
use rfjson_core::multi::{MultiBackend, MultiEngine, MultiLanes};
use rfjson_core::query::query_to_exprs;
use rfjson_core::{Engine, Expr, FilterBackend, IngestLimits, StructScope};
use rfjson_riotbench::{smartcity, taxi, twitter, Query};
use rfjson_runtime::fault::{
    silence_injected_panics, FaultKind, FaultPlan, FaultyBackend, Trigger,
};
use rfjson_runtime::MultiShardedRunner;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Query batches covering every primitive technique, shared units across
/// lanes, both structural scopes, and the paper's Table VIII queries.
///
/// The first batch is SWAR-eligible (single-word lanes, no wide units);
/// the second carries a wide-block substring so the fused byte-serial
/// fallback is exercised too.
fn batch_zoo() -> Vec<Vec<Expr>> {
    vec![
        vec![
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::window(b"light").unwrap(),
            Expr::dfa_string(b"humidity").unwrap(),
            Expr::int_range(12, 49),
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::context_scoped(
                StructScope::Member,
                [
                    Expr::substring(b"tolls_amount", 2).unwrap(),
                    Expr::float_range("2.50", "18.00").unwrap(),
                ],
            ),
            query_to_exprs(&Query::qs0(), 1).unwrap(),
            query_to_exprs(&Query::qt(), 2).unwrap(),
        ],
        vec![
            Expr::substring(b"airquality_raw", 9).unwrap(),
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("-12.5", "43.1").unwrap(),
        ],
        // Duplicate lanes: dedup must not entangle their verdicts.
        vec![
            query_to_exprs(&Query::qs0(), 1).unwrap(),
            query_to_exprs(&Query::qs0(), 1).unwrap(),
            query_to_exprs(&Query::qs1(), 1).unwrap(),
        ],
    ]
}

fn bit(out: &[u64], q: usize) -> bool {
    out[q / 64] >> (q % 64) & 1 == 1
}

/// Steps the fused engine and N independent engines over `record + '\n'`
/// and asserts every lane's latched accept matches on **every byte**.
fn assert_bytewise(exprs: &[Expr], record: &[u8]) {
    let mut fused = MultiEngine::compile_batch(exprs);
    let mut engines: Vec<Engine> = exprs.iter().map(Engine::compile).collect();
    let mut out = vec![0u64; exprs.len().div_ceil(64)];
    for (i, &b) in record.iter().chain(b"\n").enumerate() {
        fused.on_byte(b);
        out.fill(0);
        fused.write_accepts(&mut out);
        for (q, engine) in engines.iter_mut().enumerate() {
            let want = engine.on_byte(b);
            assert_eq!(
                bit(&out, q),
                want,
                "lane {q} (`{}`) diverges at byte {i} ({:?}) of record {:?}",
                exprs[q],
                b as char,
                String::from_utf8_lossy(record)
            );
        }
    }
}

/// Feeds the record through both sides split at several points into a
/// byte-serial prefix plus **one** block remainder (the packed-state
/// sync-in/sync-out seams of the fused SWAR loop), asserting the record
/// decision of every lane matches the lane's own engine under the same
/// split.
fn assert_blockwise(exprs: &[Expr], record: &[u8]) {
    let mut fused = MultiEngine::compile_batch(exprs);
    let mut engines: Vec<Engine> = exprs.iter().map(Engine::compile).collect();
    let words = exprs.len().div_ceil(64);
    let mut splits = vec![0, record.len()];
    for s in [1, 7, 8, 9, 15, 16, record.len() / 2] {
        if s <= record.len() {
            splits.push(s);
        }
    }
    for split in splits {
        fused.reset();
        for &b in &record[..split] {
            fused.on_byte(b);
        }
        if split < record.len() {
            fused.on_block(&record[split..]);
        }
        let mut out = vec![0u64; words];
        fused.write_accepts(&mut out);
        fused.on_byte(b'\n');
        let mut post = vec![0u64; words];
        fused.write_accepts(&mut post);
        for (q, engine) in engines.iter_mut().enumerate() {
            engine.reset();
            let mut last = false;
            for &b in &record[..split] {
                last = engine.on_byte(b);
            }
            if split < record.len() {
                last = engine.on_block(&record[split..]);
            }
            let want = engine.on_byte(b'\n') || last;
            assert_eq!(
                bit(&out, q) || bit(&post, q),
                want,
                "lane {q} (`{}`) diverges at split {split} of record {:?}",
                exprs[q],
                String::from_utf8_lossy(record)
            );
        }
    }
}

/// Stream-level agreement: the fused serial driver, the [`MultiLanes`]
/// reference, every independent engine's verdict vector, and the sharded
/// runner at every shard count must all agree — skips included.
fn assert_streamwise(exprs: &[Expr], stream: &[u8], limits: IngestLimits) {
    let fused = MultiEngine::compile_batch(exprs).filter_stream_verdicts(stream, limits);
    let lanes = MultiLanes::<Engine>::compile_batch(exprs).filter_stream_verdicts(stream, limits);
    for (q, expr) in exprs.iter().enumerate() {
        assert_eq!(
            fused.query_verdicts(q),
            lanes.query_verdicts(q),
            "fused vs multi-lanes diverge on lane {q} (`{expr}`)"
        );
        let single = Engine::compile(expr).filter_stream_verdicts(stream, limits);
        assert_eq!(
            fused.query_verdicts(q),
            single,
            "fused vs independent engine diverge on lane {q} (`{expr}`)"
        );
    }
    for shards in SHARD_COUNTS {
        let mut runner: MultiShardedRunner<MultiEngine> =
            MultiShardedRunner::with_shards(exprs, shards);
        let sharded = runner
            .filter_stream_verdicts(stream, limits)
            .expect("healthy lanes never double fault");
        assert_eq!(sharded.num_records(), fused.num_records());
        for (q, expr) in exprs.iter().enumerate() {
            assert_eq!(
                sharded.query_verdicts(q),
                fused.query_verdicts(q),
                "sharded fused diverges on lane {q} (`{expr}`), shards {shards}"
            );
        }
    }
}

#[test]
fn fused_bytewise_equals_independent_engines() {
    let datasets = [
        smartcity::generate(41, 6),
        taxi::generate(42, 6),
        twitter::generate(43, 4),
    ];
    for exprs in batch_zoo() {
        for ds in &datasets {
            for record in ds.records() {
                assert_bytewise(&exprs, record);
            }
        }
    }
}

#[test]
fn fused_blockwise_equals_independent_engines_at_split_seams() {
    let datasets = [smartcity::generate(44, 6), taxi::generate(45, 6)];
    for exprs in batch_zoo() {
        for ds in &datasets {
            for record in ds.records() {
                assert_blockwise(&exprs, record);
            }
        }
    }
}

#[test]
fn fused_stream_equals_independent_engines_at_every_shard_count() {
    let streams = [
        smartcity::generate(46, 40).stream(),
        taxi::generate(47, 40).stream(),
        b"\r\n{\"a\":3}\r\n\n{\"temperature\":21.5}".to_vec(),
    ];
    for exprs in batch_zoo() {
        for stream in &streams {
            assert_streamwise(&exprs, stream, IngestLimits::UNLIMITED);
        }
    }
}

#[test]
fn quarantine_agrees_across_all_paths() {
    let limits = IngestLimits {
        max_record_bytes: Some(90),
        max_records: Some(25),
    };
    let streams = [
        smartcity::generate(48, 40).stream(),
        taxi::generate(49, 40).stream(),
    ];
    for exprs in batch_zoo() {
        for stream in &streams {
            assert_streamwise(&exprs, stream, limits);
        }
    }
}

/// A healed multi-runner lane must stay byte-identical when **reused**:
/// the first call faults a lane mid-stream, the heal recompiles it, and
/// the second call over the same runner must run the healed lane clean
/// — the batch twin of `reset_regression.rs`'s reuse contract (this was
/// previously untested: every other multi test used a fresh runner per
/// call).
#[test]
fn healed_multi_lane_is_reused_cleanly_on_second_call() {
    silence_injected_panics();
    // Poison one mid-stream record with a byte no RiotBench corpus
    // emits, so the fault lands in the same record at every shard count.
    let ds = smartcity::generate(50, 30);
    let mut stream = Vec::new();
    for (i, record) in ds.records().iter().enumerate() {
        if i == 13 {
            stream.extend_from_slice(b"{\"poison\":\"\x07\"}\n");
        }
        stream.extend_from_slice(record);
        stream.push(b'\n');
    }

    for exprs in batch_zoo() {
        let fused = MultiEngine::compile_batch(&exprs)
            .filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
        for shards in SHARD_COUNTS {
            // Primary lanes are faulty batches; the retry lane is the
            // clean `MultiLanes<CompiledFilter>` default. Fuel 1: the
            // fault fires once on the first call, then the healed lane
            // must carry the second call without the retry path.
            let armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::Panic)
                .with_fuel(1)
                .arm();
            let mut runner: MultiShardedRunner<MultiLanes<FaultyBackend<Engine>>> =
                MultiShardedRunner::try_with_shards(&exprs, shards).unwrap();
            let first = runner
                .filter_stream_verdicts(&stream, IngestLimits::UNLIMITED)
                .expect("single fault must be absorbed by the retry lane");
            let second = runner
                .filter_stream_verdicts(&stream, IngestLimits::UNLIMITED)
                .expect("healed lane must run clean");
            drop(armed);
            assert_eq!(first.num_records(), fused.num_records());
            for (q, expr) in exprs.iter().enumerate() {
                assert_eq!(
                    first.query_verdicts(q),
                    fused.query_verdicts(q),
                    "faulted+retried call diverges on lane {q} (`{expr}`), shards {shards}"
                );
                assert_eq!(
                    second.query_verdicts(q),
                    fused.query_verdicts(q),
                    "healed reused lane diverges on lane {q} (`{expr}`), shards {shards}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora × random zoo batch × every shard count, with and
    /// without quarantine limits.
    #[test]
    fn fused_equals_independent_on_random_corpora(
        seed in 0u64..1_000_000,
        n in 1usize..24,
        which in 0usize..3,
        batch_idx in 0usize..3,
        limited in any::<bool>(),
    ) {
        let ds = match which {
            0 => smartcity::generate(seed, n),
            1 => taxi::generate(seed, n),
            _ => twitter::generate(seed, n),
        };
        let zoo = batch_zoo();
        let exprs = &zoo[batch_idx % zoo.len()];
        let limits = if limited {
            IngestLimits {
                max_record_bytes: Some(100),
                max_records: Some(n / 2 + 1),
            }
        } else {
            IngestLimits::UNLIMITED
        };
        let stream = ds.stream();
        let fused = MultiEngine::compile_batch(exprs).filter_stream_verdicts(&stream, limits);
        for (q, expr) in exprs.iter().enumerate() {
            let single = Engine::compile(expr).filter_stream_verdicts(&stream, limits);
            prop_assert_eq!(&fused.query_verdicts(q), &single);
        }
        for shards in SHARD_COUNTS {
            let mut runner: MultiShardedRunner<MultiEngine> =
                MultiShardedRunner::with_shards(exprs, shards);
            let sharded = runner
                .filter_stream_verdicts(&stream, limits)
                .expect("healthy lanes never double fault");
            for q in 0..exprs.len() {
                prop_assert_eq!(sharded.query_verdicts(q), fused.query_verdicts(q));
            }
        }
    }
}

//! Conservation laws of the telemetry counters across the whole
//! pipeline.
//!
//! The metrics are only trustworthy if they balance: every record the
//! framing layer reports must be reported exactly once as a runtime
//! verdict (matched, unmatched, or skipped), every stream byte must be
//! attributed to exactly one engine scan path, and every injected lane
//! fault must show up as exactly one heal. These tests pin those laws
//! at shard counts {1, 2, 3, 8}, with and without fault injection.
//!
//! Telemetry counters are process-global, so every test serialises on
//! one lock and measures deltas between registry snapshots.

use rfjson_core::query::query_to_exprs;
use rfjson_core::{Engine, FilterBackend, IngestLimits, MultiEngine};
use rfjson_riotbench::{smartcity_corpus, Query};
use rfjson_runtime::fault::{
    silence_injected_panics, FaultKind, FaultPlan, FaultyBackend, Trigger,
};
use rfjson_runtime::{MultiShardedRunner, ShardedRunner};
use rfjson_telemetry::Snapshot;
use std::sync::{Mutex, MutexGuard, PoisonError};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` and returns its result plus the telemetry delta it caused.
fn window<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    let before = rfjson_telemetry::registry().snapshot();
    let out = f();
    (out, rfjson_telemetry::registry().snapshot().delta(&before))
}

/// Total records the runtime reported, summed over every outcome.
fn runtime_reported(d: &Snapshot) -> u64 {
    d.counter("runtime.matched")
        + d.counter("runtime.unmatched")
        + d.counter("runtime.skipped.too_long")
        + d.counter("runtime.skipped.record_limit")
}

#[test]
fn records_are_conserved_across_shard_counts() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let _guard = serialize();
    let corpus = smartcity_corpus(120);
    let stream = corpus.stream();
    let records = corpus.len() as u64;
    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");
    // Limits that actually trigger both quarantine reasons: the record
    // budget cuts the stream in half, and a length cap inside the
    // 215–220-byte record distribution quarantines the longer records.
    let limits = IngestLimits {
        max_record_bytes: Some(217),
        max_records: Some(60),
    };

    for shards in SHARD_COUNTS {
        let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&expr, shards);
        let (verdicts, d) = window(|| {
            runner
                .filter_stream_verdicts(&stream, limits)
                .expect("no faults injected")
        });
        assert_eq!(verdicts.len() as u64, records);
        // Law 1: the framing layer saw every record exactly once.
        assert_eq!(
            d.counter("framing.records"),
            records,
            "framing.records at {shards} shards"
        );
        // Law 2: every framed record became exactly one runtime verdict.
        assert_eq!(
            runtime_reported(&d),
            records,
            "verdict outcomes at {shards} shards"
        );
        assert_eq!(d.counter("runtime.records"), records);
        assert_eq!(d.counter("runtime.streams"), 1);
        // The limits were actually exercised: the budget overwrites
        // every verdict from index 60 on, and at least one of the first
        // 60 records exceeds the length cap.
        assert_eq!(d.counter("runtime.skipped.record_limit"), records - 60);
        assert!(d.counter("runtime.skipped.too_long") >= 1);
        assert_eq!(d.counter("runtime.lane_heals"), 0);
        // Law 3: per-shard record histogram sums back to the total
        // (prefix shards see all records; the budget is applied later).
        let shard_records = d
            .histogram("runtime.shard_records")
            .expect("recorded per shard");
        assert_eq!(shard_records.sum, records);
    }
}

#[test]
fn multi_records_are_conserved_across_shard_counts() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let _guard = serialize();
    let corpus = smartcity_corpus(90);
    let stream = corpus.stream();
    let records = corpus.len() as u64;
    let batch = vec![
        query_to_exprs(&Query::qs0(), 1).expect("query converts"),
        query_to_exprs(&Query::qs1(), 1).expect("query converts"),
    ];
    let limits = IngestLimits {
        max_record_bytes: None,
        max_records: Some(70),
    };

    for shards in SHARD_COUNTS {
        let mut runner: MultiShardedRunner<MultiEngine> =
            MultiShardedRunner::with_shards(&batch, shards);
        let (verdicts, d) = window(|| {
            runner
                .filter_stream_verdicts(&stream, limits)
                .expect("no faults injected")
        });
        assert_eq!(verdicts.num_records() as u64, records);
        assert_eq!(d.counter("framing.records"), records);
        assert_eq!(runtime_reported(&d), records);
        assert_eq!(d.counter("runtime.records"), records);
        assert_eq!(d.counter("runtime.skipped.record_limit"), records - 70);
        // The fused engines scored every record on some lane.
        assert_eq!(d.counter("multi.records"), records);
    }
}

#[test]
fn bytes_are_conserved_on_serial_engine_streams() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let _guard = serialize();
    // RiotBench streams are pure `record\n` sequences (no CRs, no blank
    // lines), so every stream byte lands in exactly one scan-path
    // bucket: the SWAR word loop, the byte-serial path (sub-word tails
    // and separators), or a prefilter-rejected record.
    let corpus = smartcity_corpus(150);
    let stream = corpus.stream();
    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");

    let mut engine = Engine::compile(&expr);
    let (decisions, d) = window(|| engine.filter_stream(&stream));
    assert_eq!(decisions.len(), corpus.len());
    let scanned = d.counter("engine.bytes.block")
        + d.counter("engine.bytes.byte_serial")
        + d.counter("engine.bytes.prefilter_skipped");
    assert_eq!(scanned, stream.len() as u64, "single-query byte paths");

    let batch = vec![
        expr,
        query_to_exprs(&Query::qs1(), 1).expect("query converts"),
    ];
    let mut fused = MultiEngine::compile_batch(&batch);
    let (verdicts, d) = window(|| {
        rfjson_core::MultiBackend::filter_stream_verdicts(
            &mut fused,
            &stream,
            IngestLimits::UNLIMITED,
        )
    });
    assert_eq!(verdicts.num_records(), corpus.len());
    let scanned = d.counter("multi.bytes.block") + d.counter("multi.bytes.byte_serial");
    assert_eq!(scanned, stream.len() as u64, "fused byte paths");
}

#[test]
fn bytes_and_records_are_conserved_under_panic_faults() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let _guard = serialize();
    silence_injected_panics();
    // One poison record: \x07 never occurs in the RiotBench corpora, so
    // the fault lands in the same record at every shard count. Panic
    // faults unwind before any driver flush, so the failed pass
    // contributes nothing and the model retry counts the shard once.
    let corpus = smartcity_corpus(80);
    let mut stream = corpus.stream();
    let insert_at = stream
        .iter()
        .position(|&b| b == b'\n')
        .expect("NDJSON stream")
        + 1;
    let mut poison = b"{\"bad\":\"\x07\"}\n".to_vec();
    let mut tail = stream.split_off(insert_at);
    stream.append(&mut poison);
    stream.append(&mut tail);
    let records = (corpus.len() + 1) as u64;

    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");
    let mut reference = Engine::compile(&expr);
    let expected = reference.filter_stream(&stream);
    assert_eq!(expected.len() as u64, records);

    for shards in SHARD_COUNTS {
        let mut runner: ShardedRunner<FaultyBackend<Engine>> =
            ShardedRunner::with_shards(&expr, shards);
        let armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::Panic)
            .with_fuel(1)
            .arm();
        let (decisions, d) = window(|| runner.filter_stream(&stream));
        drop(armed);

        assert_eq!(decisions, expected, "verdicts survive the fault");
        // Exactly one injected fault: one heal, one retry, no double
        // fault — and the record/byte books still balance because only
        // the passes that completed flushed their tallies.
        assert_eq!(d.counter("runtime.lane_heals"), 1, "at {shards} shards");
        assert_eq!(d.counter("runtime.retries"), 1);
        assert_eq!(d.counter("runtime.double_faults"), 0);
        assert_eq!(d.counter("framing.records"), records);
        assert_eq!(runtime_reported(&d), records);
        assert_eq!(d.counter("runtime.bytes"), stream.len() as u64);
    }
}

#[test]
fn heal_count_equals_injected_fault_count() {
    if !rfjson_telemetry::ENABLED {
        return;
    }
    let _guard = serialize();
    silence_injected_panics();
    let corpus = smartcity_corpus(60);
    let stream = corpus.stream();
    let expr = query_to_exprs(&Query::qs0(), 1).expect("query converts");

    // `{` opens every record, so an unlimited-fuel plan would fire on
    // every shard; fuel k bounds the process-wide injection count and
    // the heal counter must land on exactly k.
    for k in [1u64, 2, 3] {
        let mut runner: ShardedRunner<FaultyBackend<Engine>> = ShardedRunner::with_shards(&expr, 3);
        let armed = FaultPlan::new(Trigger::OnByteValue(b'{'), FaultKind::Panic)
            .with_fuel(k as usize)
            .arm();
        let (decisions, d) = window(|| runner.filter_stream(&stream));
        drop(armed);
        assert_eq!(decisions.len(), corpus.len());
        assert_eq!(d.counter("runtime.lane_heals"), k, "fuel {k}");
        assert_eq!(d.counter("runtime.retries"), k);
        assert_eq!(d.counter("runtime.double_faults"), 0);
        assert_eq!(d.counter("framing.records"), corpus.len() as u64);
        assert_eq!(runtime_reported(&d), corpus.len() as u64);
    }
}

//! Cross-crate integration tests: the full pipeline from workload
//! generation through filtering, resource estimation and design-space
//! exploration.

use rfjson_core::arch::RawFilterSystem;
use rfjson_core::cost::{exact_cost, option_cost};
use rfjson_core::design::{explore, pareto, ExploreOptions};
use rfjson_core::eval::{measure, positional_fpr};
use rfjson_core::expr::{Expr, StringTechnique};
use rfjson_core::primitive::SubstringMatcher;
use rfjson_core::query::query_to_exprs;
use rfjson_core::{CompiledFilter, FilterBackend};
use rfjson_jsonstream::parse;
use rfjson_riotbench::{smartcity, taxi, twitter, Query};

#[test]
fn end_to_end_smartcity_qs0() {
    // Generate → filter → compare against parsed ground truth.
    let ds = smartcity::generate(100, 600);
    let q = Query::qs0();
    let expr = query_to_exprs(&q, 1).expect("query converts");
    let m = measure(&expr, &ds, &q);
    assert_eq!(m.false_negatives, 0, "raw-filter invariant");
    assert!(m.fpr() < 0.10, "full structural filter FPR {}", m.fpr());
    // The filter keeps roughly the query selectivity worth of records.
    let sel = q.selectivity(&ds);
    assert!(m.pass_rate() >= sel);
    assert!(m.pass_rate() <= sel + 0.12);
}

#[test]
fn end_to_end_taxi_qt() {
    let ds = taxi::generate(101, 600);
    let q = Query::qt();
    let expr = query_to_exprs(&q, 2).expect("query converts");
    let m = measure(&expr, &ds, &q);
    assert_eq!(m.false_negatives, 0);
    assert!(m.fpr() < 0.10, "FPR {}", m.fpr());
    // Headline claim regime: the vast majority of the raw stream is
    // dropped before parsing (paper: up to 94.3 %).
    assert!(
        m.filtered_fraction() > 0.80,
        "filtered {}",
        m.filtered_fraction()
    );
}

#[test]
fn filter_agrees_with_parse_then_evaluate() {
    // For every record: if the parser+query says "match", the raw filter
    // must agree; disagreements may only be filter-accepts (false
    // positives).
    let ds = twitter::generate(102, 200);
    let needle = b"favourites_count";
    let mut filter = CompiledFilter::compile(&Expr::substring(needle, 2).expect("valid spec"));
    for rec in ds.records() {
        let parsed = parse(rec).expect("generated records parse");
        let truly_contains = parsed.get("user").is_some()
            && String::from_utf8_lossy(rec).contains("favourites_count");
        let accepted = filter.accepts_record(rec);
        if truly_contains {
            assert!(accepted, "no false negatives on {rec:?}");
        }
    }
}

#[test]
fn design_space_contains_paper_configurations() {
    // The explored space must include the shapes of the Table VI Pareto
    // rows: bare v(...), { s1 & v }, and their conjunctions.
    let ds = smartcity::generate(103, 300);
    let q = Query::qs1();
    let opts = ExploreOptions {
        techniques: vec![StringTechnique::Substring(1)],
        include_string_only: true,
        include_plain_pairs: true,
        max_records: 300,
        threads: 4,
    };
    let points = explore(&q, &ds, &opts);
    // 5 attributes × {None, v, s1, {s1&v}, s1&v} = 5^5 − 1.
    assert_eq!(points.len(), 5usize.pow(5) - 1);
    let front = pareto(&points);
    let notations: Vec<String> = front.iter().map(|p| p.notation(&q)).collect();
    assert!(
        notations.iter().any(|s| s.starts_with("v(")),
        "front should contain a bare value filter: {notations:?}"
    );
    assert!(
        notations.iter().any(|s| s.contains("{ s1(")),
        "front should contain structural pairs: {notations:?}"
    );
    // FPR at the accurate end must be near zero, like Table VI's last row.
    assert!(front.last().expect("non-empty front").fpr < 0.05);
}

#[test]
fn resource_reports_are_consistent() {
    // exact (full filter) ≥ option (structure signals free) for a
    // structural expression; both positive.
    let expr = Expr::context([
        Expr::substring(b"light", 1).expect("valid"),
        Expr::int_range(1345, 26282),
    ]);
    let exact = exact_cost(&expr);
    let option = option_cost(&expr);
    assert!(exact.luts > option.luts);
    assert!(option.luts > 0);
    assert!(exact.ffs > option.ffs, "mask/depth registers included");
}

#[test]
fn seven_lane_system_filters_a_stream() {
    let ds = smartcity::generate(104, 300);
    let q = Query::qs1();
    let expr = query_to_exprs(&q, 1).expect("query converts");
    let stream = ds.stream();
    let mut sys = RawFilterSystem::new(&expr, 7);
    let (matches, report) = sys.process(&stream);
    assert_eq!(matches.len(), ds.len());
    assert_eq!(report.accepted, matches.iter().filter(|m| **m).count());
    // Cross-check against the single-filter decisions.
    let mut single = CompiledFilter::compile(&expr);
    for (rec, &m) in ds.records().iter().zip(&matches) {
        assert_eq!(single.accepts_record(rec), m);
    }
    assert!(report.sustains_10gbe(), "{report}");
}

#[test]
// Exact 0.0 is the point: B=2 must produce literally zero false
// positives, not a small ratio.
#[allow(clippy::float_cmp)]
fn positional_fpr_tables_shape() {
    // Spot-check the three headline phenomena of Tables I–III.
    let taxi_ds = taxi::generate(105, 300);
    let twitter_ds = twitter::generate(106, 300);

    let mut tolls1 = SubstringMatcher::new(b"tolls_amount", 1).expect("valid");
    assert!(positional_fpr(&mut tolls1, b"tolls_amount", &taxi_ds) > 0.99);

    let mut tolls2 = SubstringMatcher::new(b"tolls_amount", 2).expect("valid");
    assert_eq!(positional_fpr(&mut tolls2, b"tolls_amount", &taxi_ds), 0.0);

    let mut user1 = SubstringMatcher::new(b"user", 1).expect("valid");
    assert!(positional_fpr(&mut user1, b"user", &twitter_ds) > 0.99);

    let mut lang1 = SubstringMatcher::new(b"lang", 1).expect("valid");
    let lang_fpr = positional_fpr(&mut lang1, b"lang", &twitter_ds);
    assert!(
        lang_fpr > 0.0 && lang_fpr < 0.9,
        "lang B=1 is non-zero but moderate: {lang_fpr}"
    );
}

#[test]
fn selectivities_in_paper_regime() {
    let sc = smartcity::generate(107, 3000);
    let tx = taxi::generate(108, 3000);
    let s0 = Query::qs0().selectivity(&sc);
    let s1 = Query::qs1().selectivity(&sc);
    let st = Query::qt().selectivity(&tx);
    assert!((0.5..0.8).contains(&s0), "QS0 {s0} (paper 0.639)");
    assert!((0.01..0.15).contains(&s1), "QS1 {s1} (paper 0.054)");
    assert!((0.02..0.12).contains(&st), "QT {st} (paper 0.057)");
}

//! Workspace policy: no `unsafe` anywhere. Every crate root — the
//! top-level facade, all `crates/*` members, and the vendored
//! stand-ins — must carry `#![forbid(unsafe_code)]`, which makes the
//! compiler reject any future `unsafe` block in that crate at build
//! time. This test makes removing the attribute itself a test failure.

use std::fs;
use std::path::{Path, PathBuf};

const ATTRIBUTE: &str = "#![forbid(unsafe_code)]";

/// All crate roots of the workspace: `src/lib.rs` of the root package
/// and of every member under `crates/` and `vendor/`.
fn crate_roots() -> Vec<PathBuf> {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut roots = vec![ws.join("src/lib.rs")];
    for dir in ["crates", "vendor"] {
        let entries =
            fs::read_dir(ws.join(dir)).unwrap_or_else(|e| panic!("cannot list {dir}: {e}"));
        for entry in entries {
            let lib = entry.unwrap().path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots
}

#[test]
fn every_crate_root_forbids_unsafe() {
    let roots = crate_roots();
    // Guard against the scan silently going blind: the workspace has
    // the root package plus at least 9 member crates and 3 vendored
    // stand-ins.
    assert!(
        roots.len() >= 13,
        "expected ≥ 13 crate roots, found {}: {roots:?}",
        roots.len()
    );
    let mut missing = Vec::new();
    for root in &roots {
        let source = fs::read_to_string(root)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", root.display()));
        if !source.contains(ATTRIBUTE) {
            missing.push(root.display().to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "crate roots missing `{ATTRIBUTE}`: {missing:?}"
    );
}

#[test]
fn no_unsafe_token_in_workspace_sources() {
    // Belt and braces: even with the attribute present, scan all
    // first-party sources for the token. (`forbid` already guarantees
    // this for code *in* those crates; the scan also covers bins,
    // examples and integration tests, which are separate crate roots.)
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offending = Vec::new();
    let mut stack: Vec<PathBuf> = ["src", "crates", "tests", "examples"]
        .iter()
        .map(|d| ws.join(d))
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries {
            let path = entry.unwrap().path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.file_name().is_some_and(|n| n != "no_unsafe.rs")
            {
                let source = fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
                // Match the keyword, not this test's own strings.
                if source.contains("unsafe fn")
                    || source.contains("unsafe {")
                    || source.contains("unsafe impl")
                {
                    offending.push(path.display().to_string());
                }
            }
        }
    }
    assert!(offending.is_empty(), "unsafe code found in: {offending:?}");
}

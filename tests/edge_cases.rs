//! Edge-case integration tests: adversarial records, deep nesting,
//! malformed input, and state isolation — the situations a raw filter in
//! front of a 10 GbE feed will inevitably see.

use rfjson_core::arch::RawFilterSystem;
use rfjson_core::elaborate::elaborate_filter;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::FilterBackend;
use rfjson_rtl::{BitVec, Simulator};

fn ctx_filter() -> Expr {
    Expr::context([
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::float_range("0.7", "35.1").unwrap(),
    ])
}

#[test]
fn empty_and_whitespace_records() {
    let mut f = CompiledFilter::compile(&ctx_filter());
    assert!(!f.accepts_record(b""));
    assert!(!f.accepts_record(b"   "));
    assert!(!f.accepts_record(b"{}"));
    assert!(!f.accepts_record(b"null"));
}

#[test]
fn malformed_json_never_panics_and_never_matches_vacuously() {
    let mut f = CompiledFilter::compile(&ctx_filter());
    for record in [
        &br#"{"e":[{"v":"21.0","n":"temperature""#[..], // truncated
        br"}}}}]]]]",                                   // unbalanced closers
        br"{{{{",                                       // unbalanced openers
        br#""temperature" 21.0"#,                       // bare tokens
        b"\xff\xfe\x00\x01",                            // binary garbage
    ] {
        // Raw filters are structure-agnostic scanners: they must tolerate
        // any byte soup without panicking. ("temperature" 21.0 legitimately
        // fires — both primitives co-occur — and that is fine: the parser
        // rejects it downstream.)
        let _ = f.accepts_record(record);
    }
}

#[test]
fn brackets_inside_strings_do_not_confuse_contexts() {
    // A hostile value full of braces must not terminate the measurement
    // instance early.
    let mut f = CompiledFilter::compile(&ctx_filter());
    let rec = br#"{"e":[{"u":"}{][","v":"21.0","n":"temperature"}],"bt":1}"#;
    assert!(f.accepts_record(rec));
    // And escaped quotes inside values don't end the string region.
    let rec2 = br#"{"e":[{"u":"a\"}b","v":"21.0","n":"temperature"}],"bt":1}"#;
    assert!(f.accepts_record(rec2));
}

#[test]
fn deeply_nested_contexts() {
    // Measurement objects buried under extra array/object layers.
    let mut f = CompiledFilter::compile(&ctx_filter());
    let rec = br#"{"data":{"batch":[[{"readings":[{"v":"20.0","n":"temperature"}]}]]}}"#;
    assert!(f.accepts_record(rec));
    let rec_out = br#"{"data":{"batch":[[{"readings":[{"v":"99.0","n":"temperature"}]}]]}}"#;
    assert!(!f.accepts_record(rec_out));
}

#[test]
fn values_split_across_sibling_objects_do_not_combine() {
    let mut f = CompiledFilter::compile(&ctx_filter());
    // "temperature" in object 1, in-range number in object 2.
    let rec = br#"{"e":[{"n":"temperature","v":"99"},{"n":"other","v":"20.0"}],"bt":5}"#;
    assert!(!f.accepts_record(rec));
}

#[test]
fn member_scope_same_key_later_value() {
    let e = Expr::context_scoped(
        StructScope::Member,
        [Expr::substring(b"x", 1).unwrap(), Expr::int_range(5, 9)],
    );
    let mut f = CompiledFilter::compile(&e);
    // Key and value in the same member: accept.
    assert!(f.accepts_record(br#"{"x":7}"#));
    // Key in one member, qualifying value only in a later member: reject.
    assert!(!f.accepts_record(br#"{"x":1,"y":7}"#));
    // ...unless the key also appears in the later member's key ("xy"
    // contains 'x' — single-letter needles are approximate by nature).
    assert!(f.accepts_record(br#"{"a":1,"x_late":7}"#));
}

#[test]
fn number_tokens_at_all_boundaries() {
    let v = Expr::int_range(10, 20);
    let mut f = CompiledFilter::compile(&v);
    assert!(f.accepts_record(b"[15]"), "closing bracket boundary");
    assert!(f.accepts_record(b"{\"a\":15}"), "closing brace boundary");
    assert!(f.accepts_record(b"[15,99]"), "comma boundary");
    assert!(f.accepts_record(b"15"), "record-end boundary via newline");
    assert!(f.accepts_record(b"[99,15]"), "second token");
    assert!(!f.accepts_record(b"[151]"), "no partial-token match");
    assert!(
        f.accepts_record(b"[1.5e1]"),
        "15 as exponent accepted approximately"
    );
}

#[test]
fn stream_with_blank_lines_and_crlf() {
    let mut f = CompiledFilter::compile(&Expr::int_range(1, 5));
    let stream = b"{\"a\":3}\r\n\r\n{\"a\":9}\n\n{\"a\":2}";
    // filter_stream treats \n as separator; \r is part of the record text
    // but harmless (it is not a number byte, so it ends tokens just like
    // \n would).
    let out = f.filter_stream(stream);
    assert_eq!(out, vec![true, false, true]);
}

#[test]
fn hardware_tolerates_malformed_records_too() {
    let netlist = elaborate_filter(&ctx_filter(), "dut");
    let mut sim = Simulator::new(&netlist).unwrap();
    let mut sw = CompiledFilter::compile(&ctx_filter());
    for record in [
        &b"}}}{{{"[..],
        br#"{"e":[{"v":"21.0","n":"temperature"}],"bt":1}"#,
        b"\x00\x01\x02\xff",
        br#"{"unclosed":"string"#,
    ] {
        let mut hw = false;
        for &b in record.iter().chain(b"\n") {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.settle();
            hw = sim.output("match").unwrap();
            sim.clock();
        }
        assert_eq!(hw, sw.accepts_record(record), "record {record:?}");
    }
}

#[test]
fn single_lane_vs_many_lanes_same_decisions() {
    let expr = Expr::or([
        Expr::substring(b"cat", 2).unwrap(),
        Expr::int_range(100, 200),
    ]);
    let stream: Vec<u8> = (0..50)
        .flat_map(|i| format!("{{\"pet\":\"cat{i}\",\"n\":{}}}\n", i * 7).into_bytes())
        .collect();
    let mut one = RawFilterSystem::new(&expr, 1);
    let mut many = RawFilterSystem::new(&expr, 5);
    let (m1, _) = one.process(&stream);
    let (m5, _) = many.process(&stream);
    assert_eq!(m1, m5, "lane count must not change decisions");
}

#[test]
fn or_children_cannot_be_pruned_but_and_can() {
    // §III-D rule (b): dropping an AND conjunct only adds false positives;
    // dropping an OR branch would create false negatives. Demonstrate on
    // concrete records.
    let a = Expr::substring(b"cat", 2).unwrap();
    let b = Expr::substring(b"dog", 2).unwrap();
    let anded = Expr::and([a.clone(), b.clone()]);
    let ored = Expr::or([a.clone(), b]);
    let rec_dog = br#"{"pet":"dog"}"#;
    // AND pruned to `a` alone: anything AND accepted is still accepted.
    let mut f_and = CompiledFilter::compile(&anded);
    let mut f_a = CompiledFilter::compile(&a);
    assert!(!f_and.accepts_record(rec_dog));
    assert!(!f_a.accepts_record(rec_dog) || f_and.accepts_record(rec_dog));
    // OR pruned to `a` alone WOULD drop the dog record — the false
    // negative §III-D forbids:
    let mut f_or = CompiledFilter::compile(&ored);
    assert!(f_or.accepts_record(rec_dog));
    assert!(
        !f_a.accepts_record(rec_dog),
        "pruned OR would lose this record"
    );
}

//! Fault-injection suite for the resilient sharded runtime.
//!
//! Proves the degradation ladder end to end with deterministic injected
//! faults ([`rfjson_runtime::fault`]):
//!
//! 1. an injected shard panic completes the stream with decisions
//!    byte-identical to the serial path (model-backend retry);
//! 2. a wrong-length shard output is detected and retried the same way;
//! 3. a **double fault** (primary lane and retry lane both faulty)
//!    returns [`RuntimeError::ShardFailed`] with the shard index and
//!    global record range — the process never aborts;
//! 4. oversized records are quarantined with [`Verdict::Skipped`]
//!    byte-identically to the serial quarantine path at shard counts
//!    {1, 2, 3, 8};
//! 5. no public rfjson-runtime constructor or stream driver panics on
//!    user-supplied expressions or input bytes (catch_unwind negative
//!    tests).

use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend};
use rfjson_runtime::fault::{
    silence_injected_panics, FaultKind, FaultPlan, FaultyBackend, Trigger,
};
use rfjson_runtime::{
    CompileError, IngestLimits, RuntimeError, ShardedRunner, SkipReason, Verdict,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The poison byte the fault plans trigger on; planted inside a JSON
/// string so the record is otherwise ordinary content.
const POISON: u8 = 0x07;

fn expr() -> Expr {
    Expr::int_range(1, 5)
}

/// A 12-record stream with the poison byte inside record `poison_idx`.
fn poisoned_stream(poison_idx: usize) -> Vec<u8> {
    let mut stream = Vec::new();
    for i in 0..12 {
        let tag = if i == poison_idx {
            format!("\"p{}\"", POISON as char)
        } else {
            format!("\"r{i}\"")
        };
        stream.extend_from_slice(format!("{{\"a\":{},\"tag\":{tag}}}\n", i % 7).as_bytes());
    }
    stream
}

#[test]
fn injected_shard_panic_is_healed_by_model_retry() {
    silence_injected_panics();
    let stream = poisoned_stream(5);
    let serial = Engine::compile(&expr()).filter_stream(&stream);
    let _armed = FaultPlan::new(Trigger::OnByteValue(POISON), FaultKind::Panic).arm();
    for shards in [1, 2, 3, 8] {
        // Primary lanes are faulty engines; the retry lane is the
        // (clean) reference model — the default `R`.
        let mut runner: ShardedRunner<FaultyBackend<Engine>> =
            ShardedRunner::try_with_shards(&expr(), shards).unwrap();
        let decisions = runner
            .try_filter_stream(&stream)
            .expect("single fault must be absorbed by the retry lane");
        assert_eq!(decisions, serial, "shards={shards}");
        // The runner stays serviceable: a second pass over the same
        // stream faults and heals again.
        assert_eq!(runner.try_filter_stream(&stream).unwrap(), serial);
    }
}

#[test]
fn wrong_length_output_is_detected_and_healed() {
    let stream = poisoned_stream(2);
    let serial = Engine::compile(&expr()).filter_stream(&stream);
    for kind in [FaultKind::TruncateOutput, FaultKind::DuplicateOutput] {
        let _armed = FaultPlan::new(Trigger::OnByteValue(POISON), kind).arm();
        for shards in [1, 2, 3, 8] {
            let mut runner: ShardedRunner<FaultyBackend<Engine>> =
                ShardedRunner::try_with_shards(&expr(), shards).unwrap();
            assert_eq!(
                runner.try_filter_stream(&stream).unwrap(),
                serial,
                "kind={kind:?} shards={shards}"
            );
        }
    }
}

#[test]
fn double_fault_returns_shard_failed_with_shard_and_record_range() {
    silence_injected_panics();
    let poison_idx = 7;
    let stream = poisoned_stream(poison_idx);
    let _armed = FaultPlan::new(Trigger::OnByteValue(POISON), FaultKind::Panic).arm();
    for shards in [1, 2, 3, 8] {
        // Primary lanes *and* the retry lane are faulty: the ladder is
        // exhausted and the error must be structured, not a crash.
        let mut runner: ShardedRunner<FaultyBackend<Engine>, FaultyBackend<CompiledFilter>> =
            ShardedRunner::try_with_shards(&expr(), shards).unwrap();
        let err = runner
            .try_filter_stream(&stream)
            .expect_err("double fault must surface");
        let RuntimeError::ShardFailed { shard, records } = &err else {
            panic!("expected ShardFailed, got {err:?}");
        };
        // The failed shard is exactly the one whose byte range holds
        // the poison record, and its record range covers it.
        let poison_offset = stream
            .iter()
            .position(|&b| b == POISON)
            .expect("stream is poisoned");
        let plan = runner.plan(&stream);
        let expected_shard = plan
            .iter()
            .position(|r| r.contains(&poison_offset))
            .expect("poison lands in some shard");
        assert_eq!(*shard, expected_shard, "shards={shards}");
        assert!(
            records.contains(&poison_idx),
            "record range {records:?} must cover poison record {poison_idx} (shards={shards})"
        );
        assert!(records.end <= 12, "range stays within the stream");
        let msg = err.to_string();
        assert!(msg.contains(&format!("shard {expected_shard}")), "{msg}");
        // No partial output leaks through the error path.
        let mut out = vec![true];
        assert!(runner.try_filter_stream_into(&stream, &mut out).is_err());
        assert_eq!(out, vec![true], "out restored on error");
        // The process (and the runner) survive: a clean stream filters
        // fine on the very next call.
        let clean: &[u8] = b"{\"a\":3}\n{\"a\":9}\n";
        assert_eq!(runner.try_filter_stream(clean).unwrap(), vec![true, false]);
    }
}

#[test]
fn oversized_record_quarantined_identically_at_all_shard_counts() {
    let long = format!("{{\"a\":3,\"pad\":\"{}\"}}", "x".repeat(200));
    let mut stream = Vec::new();
    for i in 0..9 {
        if i == 4 {
            stream.extend_from_slice(long.as_bytes());
            stream.push(b'\n');
        } else {
            stream.extend_from_slice(format!("{{\"a\":{i}}}\n").as_bytes());
        }
    }
    let limits = IngestLimits::max_record_bytes(64);
    let serial = Engine::compile(&expr()).filter_stream_verdicts(&stream, limits);
    assert_eq!(
        serial[4],
        Verdict::Skipped(SkipReason::TooLong {
            limit: 64,
            actual: long.len()
        })
    );
    for shards in [1, 2, 3, 8] {
        let mut runner: ShardedRunner<Engine> =
            ShardedRunner::try_with_shards(&expr(), shards).unwrap();
        let verdicts = runner.filter_stream_verdicts(&stream, limits).unwrap();
        assert_eq!(verdicts, serial, "shards={shards}");
    }
}

#[test]
fn record_budget_applies_globally_across_shards() {
    let stream: Vec<u8> = (0..10)
        .flat_map(|i| format!("{{\"a\":{i}}}\n").into_bytes())
        .collect();
    let limits = IngestLimits::max_records(4);
    let serial = Engine::compile(&expr()).filter_stream_verdicts(&stream, limits);
    assert_eq!(
        serial.iter().filter(|v| v.decision().is_some()).count(),
        4,
        "only the first four records are filtered"
    );
    for shards in [1, 2, 3, 8] {
        let mut runner: ShardedRunner<Engine> =
            ShardedRunner::try_with_shards(&expr(), shards).unwrap();
        assert_eq!(
            runner.filter_stream_verdicts(&stream, limits).unwrap(),
            serial,
            "shards={shards}"
        );
    }
}

#[test]
fn quarantine_with_unterminated_trailing_record() {
    // EOF without a newline + a byte limit: the degenerate case must
    // agree serially and sharded (the trailing record is metered too).
    let stream: &[u8] = b"{\"a\":3}\n{\"a\":4,\"pad\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}";
    let limits = IngestLimits::max_record_bytes(16);
    let serial = Engine::compile(&expr()).filter_stream_verdicts(stream, limits);
    assert!(matches!(
        serial[1],
        Verdict::Skipped(SkipReason::TooLong { .. })
    ));
    for shards in [1, 2, 3, 8] {
        let mut runner: ShardedRunner<Engine> =
            ShardedRunner::try_with_shards(&expr(), shards).unwrap();
        assert_eq!(
            runner.filter_stream_verdicts(stream, limits).unwrap(),
            serial,
            "shards={shards}"
        );
    }
}

#[test]
fn transient_fault_heals_after_fuel_is_spent() {
    silence_injected_panics();
    let stream = poisoned_stream(3);
    let serial = Engine::compile(&expr()).filter_stream(&stream);
    let _armed = FaultPlan::new(Trigger::OnByteValue(POISON), FaultKind::Panic)
        .with_fuel(1)
        .arm();
    let mut runner: ShardedRunner<FaultyBackend<Engine>> =
        ShardedRunner::try_with_shards(&expr(), 3).unwrap();
    // First call burns the fuel on the primary lane, retry absorbs it;
    // the second call runs entirely clean.
    assert_eq!(runner.try_filter_stream(&stream).unwrap(), serial);
    assert_eq!(runner.try_filter_stream(&stream).unwrap(), serial);
}

#[test]
fn no_public_constructor_panics_on_ill_formed_expressions() {
    let bad_exprs = [
        Expr::And(vec![]),
        Expr::Or(vec![]),
        Expr::And(vec![Expr::Or(vec![])]),
    ];
    for bad in &bad_exprs {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let a = ShardedRunner::<Engine>::try_new(bad).err();
            let b = ShardedRunner::<Engine>::try_with_shards(bad, 4).err();
            let c = ShardedRunner::<CompiledFilter>::try_new(bad).err();
            (a, b, c)
        }));
        let (a, b, c) = outcome.expect("try_ constructors must not panic");
        for err in [a, b, c] {
            assert!(
                matches!(err, Some(CompileError::InvalidExpr(_))),
                "ill-formed expression must surface as CompileError"
            );
        }
    }
}

#[test]
fn no_stream_driver_panics_on_arbitrary_input_bytes() {
    let soups: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8; 257],
        (0u8..=255).collect(),
        b"\x00\n\x00\x00\n\xff\xfe\n".to_vec(),
        b"\xf0\x9f\x92\xa9 not json at all \n{{{{\n".to_vec(),
        b"\r\r\r\n\r\n\n".to_vec(),
        [b"{\"a\":".to_vec(), vec![b'9'; 100_000], b"}".to_vec()].concat(),
    ];
    let limits = IngestLimits {
        max_record_bytes: Some(50),
        max_records: Some(3),
    };
    for soup in &soups {
        for shards in [1, 2, 3, 8] {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut runner: ShardedRunner<Engine> =
                    ShardedRunner::try_with_shards(&expr(), shards).unwrap();
                let decisions = runner.try_filter_stream(soup).unwrap();
                let verdicts = runner.filter_stream_verdicts(soup, limits).unwrap();
                (decisions, verdicts)
            }));
            let (decisions, verdicts) = outcome.expect("drivers must not panic on byte soup");
            // Sharded must agree with the serial paths on the same soup.
            let mut serial = Engine::compile(&expr());
            assert_eq!(decisions, serial.filter_stream(soup), "shards={shards}");
            assert_eq!(
                verdicts,
                serial.filter_stream_verdicts(soup, limits),
                "shards={shards}"
            );
        }
    }
}

#[test]
fn runtime_error_taxonomy_contract() {
    // Display and source() are the stable surface structured tooling
    // matches on; pin them.
    let compile_err = RuntimeError::Compile(CompileError::InvalidExpr(
        Expr::And(vec![]).validate().unwrap_err(),
    ));
    assert!(compile_err.to_string().contains("lane compilation failed"));
    assert!(std::error::Error::source(&compile_err).is_some());
    let shard_err = RuntimeError::ShardFailed {
        shard: 2,
        records: 10..20,
    };
    assert!(shard_err.to_string().contains("shard 2"));
    assert!(shard_err.to_string().contains("10..20"));
    assert!(std::error::Error::source(&shard_err).is_none());
}

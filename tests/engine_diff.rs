//! Differential property tests: the flat batch [`Engine`] must be
//! **bit-identical, byte-for-byte** to the cosim-faithful
//! [`CompiledFilter`] — not just on final record decisions but on the
//! per-byte latched accept signal. The engine is only allowed to be
//! faster, never different.

use proptest::prelude::*;
use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_riotbench::{smartcity, taxi, twitter, Query};

/// Steps both execution paths over `record + '\n'` and asserts the accept
/// signal matches on **every byte**.
fn assert_bytewise(expr: &Expr, record: &[u8]) {
    let mut engine = Engine::compile(expr);
    let mut model = CompiledFilter::compile(expr);
    engine.reset();
    model.reset();
    for (i, &b) in record.iter().chain(b"\n").enumerate() {
        let e = engine.on_byte(b);
        let m = model.on_byte(b);
        assert_eq!(
            e,
            m,
            "expr `{expr}` diverges at byte {i} ({:?}) of record {:?}",
            b as char,
            String::from_utf8_lossy(record)
        );
    }
}

/// Feeds the record through [`Engine::on_block`] — whole, and split at
/// several points into a byte-serial prefix plus a block remainder (the
/// packed-state sync-in/sync-out seams) — and asserts the record decision
/// matches the byte-serial model.
fn assert_blockwise(expr: &Expr, record: &[u8]) {
    let mut model = CompiledFilter::compile(expr);
    let want = model.accepts_record(record);
    let mut engine = Engine::compile(expr);
    let mut splits = vec![0, record.len()];
    for s in [1, 7, 8, 9, 15, 16, record.len() / 2] {
        if s <= record.len() {
            splits.push(s);
        }
    }
    for split in splits {
        engine.reset();
        let mut last = false;
        for &b in &record[..split] {
            last = engine.on_byte(b);
        }
        if split < record.len() {
            last = engine.on_block(&record[split..]);
        }
        let got = engine.on_byte(b'\n') || last;
        assert_eq!(
            got,
            want,
            "expr `{expr}` block path (split {split}) diverges on {:?}",
            String::from_utf8_lossy(record)
        );
    }
}

/// Expressions covering every primitive technique, every combinator,
/// both structural scopes, and nesting of contexts.
fn expression_zoo() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::substring(b"tolls_amount", 2).unwrap(),
        Expr::substring(b"dust", 4).unwrap(),
        Expr::substring(b"favourites_count", 9).unwrap(), // wide blocks (B > 8)
        Expr::window(b"light").unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::int_range(12, 49),
        Expr::float_range("-12.5", "43.1").unwrap(),
        Expr::and([
            Expr::substring(b"light", 1).unwrap(),
            Expr::int_range(1345, 26282),
        ]),
        Expr::or([
            Expr::substring(b"cat", 1).unwrap(),
            Expr::substring(b"dog", 1).unwrap(),
        ]),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        ),
        query_to_exprs(&Query::qs0(), 1).unwrap(),
        query_to_exprs(&Query::qt(), 2).unwrap(),
        // Context nested under OR nested under context.
        Expr::context([
            Expr::or([
                Expr::context([Expr::substring(b"n", 1).unwrap(), Expr::int_range(0, 9)]),
                Expr::window(b"dust").unwrap(),
            ]),
            Expr::float_range("0.5", "1.5").unwrap(),
        ]),
    ]
}

#[test]
fn engine_equals_model_on_generated_corpora() {
    let datasets = [
        smartcity::generate(77, 40),
        taxi::generate(78, 40),
        twitter::generate(79, 25),
    ];
    for expr in expression_zoo() {
        for ds in &datasets {
            for record in ds.records() {
                assert_bytewise(&expr, record);
                assert_blockwise(&expr, record);
            }
        }
    }
}

#[test]
fn engine_equals_model_on_adversarial_inputs() {
    // The edge-case records of tests/edge_cases.rs: escapes, hostile
    // bracket soup, deep nesting, truncation, binary garbage.
    let records: Vec<&[u8]> = vec![
        b"",
        b"   ",
        b"{}",
        b"null",
        br#"{"e":[{"v":"21.0","n":"temperature""#,
        b"}}}}]]]]",
        b"{{{{",
        br#""temperature" 21.0"#,
        b"\xff\xfe\x00\x01",
        br#"{"e":[{"u":"}{][","v":"21.0","n":"temperature"}],"bt":1}"#,
        br#"{"e":[{"u":"a\"}b","v":"21.0","n":"temperature"}],"bt":1}"#,
        br#"{"data":{"batch":[[{"readings":[{"v":"20.0","n":"temperature"}]}]]}}"#,
        br#"{"e":[{"n":"temperature","v":"99"},{"n":"other","v":"20.0"}],"bt":5}"#,
        br#"{"x":1,"y":7}"#,
        br#"{"a":1,"x_late":7}"#,
        b"[15,99]",
        b"[1.5e1]",
        br#"{"k":"\\","j":"\\\""}"#,
    ];
    for expr in expression_zoo() {
        for record in &records {
            assert_bytewise(&expr, record);
            assert_blockwise(&expr, record);
        }
    }
}

#[test]
fn engine_equals_model_on_stream_framing() {
    // filter_stream must agree on CRLF framing, blank lines, and a
    // trailing record without separator.
    let streams: Vec<&[u8]> = vec![
        b"{\"a\":3}\r\n\r\n{\"a\":9}\n\n{\"a\":2}",
        b"\n\n\n",
        b"{\"a\":3}",
        b"{\"a\":3}\n",
        b"\r\n{\"a\":3}\r\n",
    ];
    for expr in expression_zoo() {
        let mut engine = Engine::compile(&expr);
        let mut model = CompiledFilter::compile(&expr);
        for stream in &streams {
            assert_eq!(
                engine.filter_stream(stream),
                model.filter_stream(stream),
                "expr `{expr}` stream {:?}",
                String::from_utf8_lossy(stream)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random records from all three generators, random zoo expression:
    /// per-byte equality must hold for every combination.
    #[test]
    fn engine_equals_model_on_random_records(
        seed in 0u64..1_000_000,
        n in 1usize..8,
        which in 0usize..3,
        expr_idx in 0usize..15,
    ) {
        let ds = match which {
            0 => smartcity::generate(seed, n),
            1 => taxi::generate(seed, n),
            _ => twitter::generate(seed, n),
        };
        let zoo = expression_zoo();
        let expr = &zoo[expr_idx % zoo.len()];
        for record in ds.records() {
            assert_bytewise(expr, record);
            assert_blockwise(expr, record);
        }
    }

    /// Random structural soup: brackets, quotes, escapes, digits, commas —
    /// the raw material of every latch/clear corner case.
    #[test]
    fn engine_equals_model_on_structural_soup(
        soup in proptest::collection::vec(
            prop_oneof![
                Just(b'{'), Just(b'}'), Just(b'['), Just(b']'),
                Just(b'"'), Just(b'\\'), Just(b','), Just(b':'),
                Just(b'1'), Just(b'9'), Just(b'.'), Just(b'e'),
                Just(b'n'), Just(b't'), Just(b'x'), Just(b' '),
            ],
            0..120,
        ),
    ) {
        let exprs = [
            Expr::context([
                Expr::substring(b"n", 1).unwrap(),
                Expr::int_range(0, 99),
            ]),
            Expr::context_scoped(
                StructScope::Member,
                [Expr::substring(b"t", 1).unwrap(), Expr::int_range(1, 19)],
            ),
            Expr::and([
                Expr::context([
                    Expr::substring(b"nt", 1).unwrap(),
                    Expr::float_range("0.9", "99.1").unwrap(),
                ]),
                Expr::int_range(1, 9),
            ]),
        ];
        for expr in &exprs {
            assert_bytewise(expr, &soup);
            assert_blockwise(expr, &soup);
        }
    }
}

//! Hardware/software co-simulation: every filter expression, elaborated to
//! a gate-level netlist and simulated cycle-accurately, must produce the
//! same record decisions as the software evaluator — and the LUT-mapped
//! form of every netlist must be functionally equivalent to the netlist.

use proptest::prelude::*;
use rfjson_core::elaborate::elaborate_filter;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_riotbench::{smartcity, taxi, twitter};
use rfjson_rtl::{BitVec, Netlist, Simulator};
use rfjson_techmap::aig::Aig;
use rfjson_techmap::map_aig;

/// Streams records through a filter netlist, sampling the match output at
/// each newline cycle.
fn hw_filter_stream(netlist: &Netlist, records: &[&[u8]]) -> Vec<bool> {
    let mut sim = Simulator::new(netlist).expect("netlist is well-formed");
    let mut out = Vec::new();
    for record in records {
        let mut accept = false;
        for &b in record.iter().chain(b"\n") {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .expect("byte port exists");
            sim.settle();
            accept = sim.output("match").expect("match port exists");
            sim.clock();
        }
        out.push(accept);
    }
    out
}

fn sw_filter_stream(expr: &Expr, records: &[&[u8]]) -> Vec<bool> {
    let mut f = CompiledFilter::compile(expr);
    records.iter().map(|r| f.accepts_record(r)).collect()
}

fn assert_cosim_on(expr: &Expr, records: &[&[u8]]) {
    let netlist = elaborate_filter(expr, "dut");
    let hw = hw_filter_stream(&netlist, records);
    let sw = sw_filter_stream(expr, records);
    for ((record, h), s) in records.iter().zip(&hw).zip(&sw) {
        assert_eq!(
            h,
            s,
            "expr `{expr}` diverges on {:?}",
            String::from_utf8_lossy(record)
        );
    }
}

/// Representative expressions covering every primitive and combinator.
fn expression_zoo() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::substring(b"tolls_amount", 2).unwrap(),
        Expr::substring(b"dust", 4).unwrap(),
        Expr::window(b"light").unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::int_range(12, 49),
        Expr::int_range(1345, 26282),
        Expr::float_range("0.7", "35.1").unwrap(),
        Expr::float_range("-12.5", "43.1").unwrap(),
        Expr::and([
            Expr::substring(b"light", 1).unwrap(),
            Expr::int_range(1345, 26282),
        ]),
        Expr::or([
            Expr::substring(b"cat", 1).unwrap(),
            Expr::substring(b"dog", 1).unwrap(),
        ]),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        ),
        Expr::and([
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::float_range("20.3", "69.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"airquality_raw", 1).unwrap(),
                Expr::int_range(12, 49),
            ]),
            Expr::int_range(0, 5153),
        ]),
    ]
}

#[test]
fn cosim_zoo_on_smartcity() {
    let ds = smartcity::generate(200, 25);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn cosim_zoo_on_taxi() {
    let ds = taxi::generate(201, 20);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn cosim_zoo_on_twitter() {
    let ds = twitter::generate(202, 15);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn mapped_netlists_equivalent_to_source() {
    // For each zoo expression: AIG of the elaborated netlist vs its
    // LUT-mapped network on pseudo-random input vectors.
    for expr in expression_zoo() {
        let netlist = elaborate_filter(&expr, "dut");
        let aig = Aig::from_netlist(&netlist);
        let (report, lutnet) = map_aig(&aig, 6);
        assert!(report.luts > 0, "expr `{expr}` mapped to nothing");
        let n = aig.num_inputs();
        let mut x = 0x243F6A8885A308D3u64 ^ (report.luts as u64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let inputs: Vec<bool> = (0..n).map(|i| (x >> (i % 64)) & 1 == 1).collect();
            assert_eq!(
                aig.eval(&inputs),
                lutnet.eval(&inputs),
                "expr `{expr}` mapping not equivalent"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised co-simulation: random SenML-ish records against the
    /// structural temperature filter.
    #[test]
    fn cosim_random_senml(
        temp in 0i32..500,
        hum in 0i32..1000,
        extra in "[a-z]{0,8}",
    ) {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let record = format!(
            concat!(
                "{{\"e\":[",
                "{{\"v\":\"{}.{}\",\"u\":\"far\",\"n\":\"temperature\"}},",
                "{{\"v\":\"{}.{}\",\"u\":\"per\",\"n\":\"{}\"}}",
                "],\"bt\":1}}"
            ),
            temp / 10, temp % 10, hum / 10, hum % 10, extra,
        );
        let records: Vec<&[u8]> = vec![record.as_bytes()];
        let netlist = elaborate_filter(&expr, "dut");
        let hw = hw_filter_stream(&netlist, &records);
        let sw = sw_filter_stream(&expr, &records);
        prop_assert_eq!(hw, sw);
    }

    /// Randomised co-simulation of the number filter on arbitrary numeric
    /// soup (exercises token boundaries, signs, exponents).
    #[test]
    fn cosim_random_numbers(
        tokens in prop::collection::vec("-?[0-9]{1,5}(\\.[0-9]{1,3})?(e-?[0-9])?", 1..6),
    ) {
        let expr = Expr::float_range("-12.5", "43.1").unwrap();
        let record = format!("{{\"vals\":[{}]}}", tokens.join(","));
        let records: Vec<&[u8]> = vec![record.as_bytes()];
        let netlist = elaborate_filter(&expr, "dut");
        let hw = hw_filter_stream(&netlist, &records);
        let sw = sw_filter_stream(&expr, &records);
        prop_assert_eq!(hw, sw);
    }
}

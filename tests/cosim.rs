//! Hardware/software co-simulation: every filter expression, elaborated to
//! a gate-level netlist and simulated cycle-accurately, must produce the
//! same record decisions as the software evaluator — and the LUT-mapped
//! form of every netlist must be functionally equivalent to the netlist.

use proptest::prelude::*;
use rfjson_core::cosim::CosimBackend;
use rfjson_core::elaborate::elaborate_filter;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::FilterBackend;
use rfjson_riotbench::{smartcity, taxi, twitter};
use rfjson_techmap::aig::Aig;
use rfjson_techmap::map_aig;

/// Streams records through the elaborated netlist via the cosim filter
/// backend — the same [`FilterBackend`] interface the software paths
/// use, so hardware and software are driven identically.
fn hw_filter_stream(expr: &Expr, records: &[&[u8]]) -> Vec<bool> {
    let mut hw = CosimBackend::compile(expr);
    records.iter().map(|r| hw.accepts_record(r)).collect()
}

fn sw_filter_stream(expr: &Expr, records: &[&[u8]]) -> Vec<bool> {
    let mut f = CompiledFilter::compile(expr);
    records.iter().map(|r| f.accepts_record(r)).collect()
}

fn assert_cosim_on(expr: &Expr, records: &[&[u8]]) {
    let hw = hw_filter_stream(expr, records);
    let sw = sw_filter_stream(expr, records);
    for ((record, h), s) in records.iter().zip(&hw).zip(&sw) {
        assert_eq!(
            h,
            s,
            "expr `{expr}` diverges on {:?}",
            String::from_utf8_lossy(record)
        );
    }
}

/// Representative expressions covering every primitive and combinator.
fn expression_zoo() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::substring(b"tolls_amount", 2).unwrap(),
        Expr::substring(b"dust", 4).unwrap(),
        Expr::window(b"light").unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::int_range(12, 49),
        Expr::int_range(1345, 26282),
        Expr::float_range("0.7", "35.1").unwrap(),
        Expr::float_range("-12.5", "43.1").unwrap(),
        Expr::and([
            Expr::substring(b"light", 1).unwrap(),
            Expr::int_range(1345, 26282),
        ]),
        Expr::or([
            Expr::substring(b"cat", 1).unwrap(),
            Expr::substring(b"dog", 1).unwrap(),
        ]),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        ),
        Expr::and([
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::float_range("20.3", "69.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"airquality_raw", 1).unwrap(),
                Expr::int_range(12, 49),
            ]),
            Expr::int_range(0, 5153),
        ]),
    ]
}

#[test]
fn cosim_zoo_on_smartcity() {
    let ds = smartcity::generate(200, 25);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn cosim_zoo_on_taxi() {
    let ds = taxi::generate(201, 20);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn cosim_zoo_on_twitter() {
    let ds = twitter::generate(202, 15);
    let records: Vec<&[u8]> = ds.records().iter().map(Vec::as_slice).collect();
    for expr in expression_zoo() {
        assert_cosim_on(&expr, &records);
    }
}

#[test]
fn hardware_newline_reset_isolates_records() {
    // The backend's stream driver force-resets between records, so this
    // test deliberately does NOT: one live netlist consumes a whole
    // multi-record stream byte-by-byte, and only the elaborated `\n`
    // record_reset logic separates the records — a regression in that
    // hardware reset (match latch, DFA state, or depth counter carrying
    // over) shows up here and nowhere else.
    let exprs = [
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::float_range("0.7", "35.1").unwrap(),
        Expr::context_scoped(
            StructScope::Member,
            [Expr::substring(b"x", 1).unwrap(), Expr::int_range(1, 5)],
        ),
    ];
    // State-poisoning sequence: matches, non-matches, unbalanced
    // brackets, a dangling string quote — each must be fully cleared by
    // the `\n` alone before the next record arrives.
    let records: Vec<&[u8]> = vec![
        br#"{"e":[{"v":"21.0","n":"temperature"}]}"#,
        b"}{,\"x\":2",
        br#"{"x":3,"y":99}"#,
        br#"{"open":"unterminated"#,
        br#"{"x":9,"v":"99.0","n":"temperature"}"#,
        br#"{"x":4}"#,
    ];
    for expr in &exprs {
        let mut hw = CosimBackend::compile(expr);
        let mut sw = CompiledFilter::compile(expr);
        hw.reset();
        sw.reset();
        let mut hw_decisions = Vec::new();
        let mut sw_decisions = Vec::new();
        for record in &records {
            for &b in *record {
                hw.on_byte(b);
                sw.on_byte(b);
            }
            // Decision is sampled at the separator cycle; for the
            // hardware, that same cycle performs the in-band reset. The
            // software model's reset is the driver's job, so only `sw`
            // gets an explicit one.
            hw_decisions.push(hw.on_byte(b'\n'));
            sw_decisions.push(sw.on_byte(b'\n'));
            sw.reset();
        }
        assert_eq!(hw_decisions, sw_decisions, "expr `{expr}`");
    }
}

#[test]
fn mapped_netlists_equivalent_to_source() {
    // For each zoo expression: AIG of the elaborated netlist vs its
    // LUT-mapped network on pseudo-random input vectors.
    for expr in expression_zoo() {
        let netlist = elaborate_filter(&expr, "dut");
        let aig = Aig::from_netlist(&netlist);
        let (report, lutnet) = map_aig(&aig, 6);
        assert!(report.luts > 0, "expr `{expr}` mapped to nothing");
        let n = aig.num_inputs();
        let mut x = 0x243F_6A88_85A3_08D3_u64 ^ (report.luts as u64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let inputs: Vec<bool> = (0..n).map(|i| (x >> (i % 64)) & 1 == 1).collect();
            assert_eq!(
                aig.eval(&inputs),
                lutnet.eval(&inputs),
                "expr `{expr}` mapping not equivalent"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised co-simulation: random SenML-ish records against the
    /// structural temperature filter.
    #[test]
    fn cosim_random_senml(
        temp in 0i32..500,
        hum in 0i32..1000,
        extra in "[a-z]{0,8}",
    ) {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let record = format!(
            concat!(
                "{{\"e\":[",
                "{{\"v\":\"{}.{}\",\"u\":\"far\",\"n\":\"temperature\"}},",
                "{{\"v\":\"{}.{}\",\"u\":\"per\",\"n\":\"{}\"}}",
                "],\"bt\":1}}"
            ),
            temp / 10, temp % 10, hum / 10, hum % 10, extra,
        );
        let records: Vec<&[u8]> = vec![record.as_bytes()];
        let hw = hw_filter_stream(&expr, &records);
        let sw = sw_filter_stream(&expr, &records);
        prop_assert_eq!(hw, sw);
    }

    /// Randomised co-simulation of the number filter on arbitrary numeric
    /// soup (exercises token boundaries, signs, exponents).
    #[test]
    fn cosim_random_numbers(
        tokens in prop::collection::vec("-?[0-9]{1,5}(\\.[0-9]{1,3})?(e-?[0-9])?", 1..6),
    ) {
        let expr = Expr::float_range("-12.5", "43.1").unwrap();
        let record = format!("{{\"vals\":[{}]}}", tokens.join(","));
        let records: Vec<&[u8]> = vec![record.as_bytes()];
        let hw = hw_filter_stream(&expr, &records);
        let sw = sw_filter_stream(&expr, &records);
        prop_assert_eq!(hw, sw);
    }
}

//! The evaluation queries of the paper (Table VIII) and their ground-truth
//! semantics.
//!
//! A query is a conjunction of attribute range predicates. Ground truth is
//! computed by **fully parsing** the record — exactly what the raw filter
//! is trying to avoid doing on non-matching records, and exactly what the
//! downstream CPU parser does with the survivors.

use crate::dataset::Dataset;
use rfjson_jsonstream::Value;
use std::fmt;

/// Whether an attribute carries integer or float values — selects the
/// number-filter derivation (`i` vs `f` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Integer-valued attribute.
    Int,
    /// Float-valued attribute.
    Float,
}

/// One `lo ≤ attribute ≤ hi` predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePredicate {
    /// Attribute name as it appears in the records.
    pub attribute: String,
    /// Lower bound, in the decimal spelling used by the paper
    /// (e.g. `"83.36"`). Kept textual so the filter side can derive exact
    /// digit automata from it.
    pub lo: String,
    /// Upper bound (same format).
    pub hi: String,
    /// Integer or float attribute.
    pub kind: AttrKind,
}

impl RangePredicate {
    /// Builds a predicate.
    pub fn new(attribute: &str, lo: &str, hi: &str, kind: AttrKind) -> Self {
        RangePredicate {
            attribute: attribute.to_string(),
            lo: lo.to_string(),
            hi: hi.to_string(),
            kind,
        }
    }

    /// Lower bound as `f64` (ground-truth comparisons).
    pub fn lo_f64(&self) -> f64 {
        self.lo
            .parse()
            .expect("predicate bounds are decimal literals")
    }

    /// Upper bound as `f64`.
    pub fn hi_f64(&self) -> f64 {
        self.hi
            .parse()
            .expect("predicate bounds are decimal literals")
    }

    /// Is `v` within bounds?
    pub fn contains(&self, v: f64) -> bool {
        self.lo_f64() <= v && v <= self.hi_f64()
    }
}

impl fmt::Display for RangePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ≤ \"{}\" ≤ {})", self.lo, self.attribute, self.hi)
    }
}

/// How attribute values are located inside a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordShape {
    /// SenML: the record has an `e` array of `{v,u,n}` measurement objects;
    /// the attribute name is the `n` value, the measurement the `v` value
    /// (stored as a JSON string). Listing 1 of the paper.
    SenML,
    /// Flat object: attributes are top-level members.
    Flat,
}

/// A conjunctive range query (Table VIII).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Short name, e.g. `QS0`.
    pub name: String,
    /// The conjunction of predicates.
    pub predicates: Vec<RangePredicate>,
    /// How to find attributes in records.
    pub shape: RecordShape,
    /// Selectivity reported in Table VIII (fraction, not percent).
    pub paper_selectivity: f64,
}

impl Query {
    /// Ground truth: does `record` satisfy **all** predicates?
    ///
    /// A missing attribute or non-numeric value fails its predicate
    /// (conjunctive semantics; a record that lacks the sensor cannot be in
    /// range).
    pub fn matches(&self, record: &Value) -> bool {
        self.predicates.iter().all(|p| {
            self.attribute_value(record, &p.attribute)
                .is_some_and(|v| p.contains(v))
        })
    }

    /// Extracts the numeric value of `attribute` from a record, honouring
    /// the record shape.
    pub fn attribute_value(&self, record: &Value, attribute: &str) -> Option<f64> {
        match self.shape {
            RecordShape::Flat => record.get(attribute).and_then(Value::as_numeric),
            RecordShape::SenML => {
                let events = record.get("e")?.as_array()?;
                events
                    .iter()
                    .find(|m| m.get("n").and_then(Value::as_str) == Some(attribute))
                    .and_then(|m| m.get("v"))
                    .and_then(Value::as_numeric)
            }
        }
    }

    /// Measured selectivity over a dataset: fraction of records matching.
    pub fn selectivity(&self, dataset: &Dataset) -> f64 {
        let parsed = dataset.parsed();
        if parsed.is_empty() {
            return 0.0;
        }
        let hits = parsed.iter().filter(|r| self.matches(r)).count();
        hits as f64 / parsed.len() as f64
    }

    /// SmartCity query 0 of Table VIII (paper selectivity 63.9 %).
    pub fn qs0() -> Query {
        Query {
            name: "QS0".into(),
            predicates: vec![
                RangePredicate::new("temperature", "0.7", "35.1", AttrKind::Float),
                RangePredicate::new("humidity", "20.3", "69.1", AttrKind::Float),
                RangePredicate::new("light", "0", "5153", AttrKind::Int),
                RangePredicate::new("dust", "83.36", "3322.67", AttrKind::Float),
                RangePredicate::new("airquality_raw", "12", "49", AttrKind::Int),
            ],
            shape: RecordShape::SenML,
            paper_selectivity: 0.639,
        }
    }

    /// SmartCity query 1 of Table VIII (paper selectivity 5.4 %).
    pub fn qs1() -> Query {
        Query {
            name: "QS1".into(),
            predicates: vec![
                RangePredicate::new("temperature", "-12.5", "43.1", AttrKind::Float),
                RangePredicate::new("humidity", "10.7", "95.2", AttrKind::Float),
                RangePredicate::new("light", "1345", "26282", AttrKind::Int),
                RangePredicate::new("dust", "186.61", "5188.21", AttrKind::Float),
                RangePredicate::new("airquality_raw", "17", "363", AttrKind::Int),
            ],
            shape: RecordShape::SenML,
            paper_selectivity: 0.054,
        }
    }

    /// Every built-in Table VIII query, in paper order — the query set the
    /// static verifier (`rfjson-verify`) and the benchmark harnesses
    /// enumerate.
    pub fn all() -> Vec<Query> {
        vec![Query::qs0(), Query::qs1(), Query::qt()]
    }

    /// Looks up a built-in query by its short name (case-insensitive),
    /// e.g. `"QS0"`.
    pub fn by_name(name: &str) -> Option<Query> {
        Query::all()
            .into_iter()
            .find(|q| q.name.eq_ignore_ascii_case(name))
    }

    /// Taxi query of Table VIII (paper selectivity 5.7 %).
    pub fn qt() -> Query {
        Query {
            name: "QT".into(),
            predicates: vec![
                RangePredicate::new("trip_time_in_secs", "140", "3155", AttrKind::Int),
                RangePredicate::new("tip_amount", "0.65", "38.55", AttrKind::Float),
                RangePredicate::new("fare_amount", "6.00", "201.00", AttrKind::Float),
                RangePredicate::new("tolls_amount", "2.50", "18.00", AttrKind::Float),
                RangePredicate::new("trip_distance", "1.37", "29.86", AttrKind::Float),
            ],
            shape: RecordShape::Flat,
            paper_selectivity: 0.057,
        }
    }
}

impl fmt::Display for Query {
    /// Table VIII notation: conjunction of range predicates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_jsonstream::parse;

    fn listing1() -> Value {
        parse(
            br#"{"e":[
            {"v":"35.2","u":"far","n":"temperature"},
            {"v":"12","u":"per","n":"humidity"},
            {"v":"713","u":"per","n":"light"},
            {"v":"305.01","u":"per","n":"dust"},
            {"v":"20","u":"per","n":"airquality_raw"}
            ],"bt":1422748800000}"#,
        )
        .unwrap()
    }

    #[test]
    fn listing1_fails_qs0_because_of_temperature() {
        // The paper's own running example: 35.2 exceeds 35.1, so the record
        // is NOT selected (it is the canonical false-positive example for
        // naive raw filters).
        let q = Query::qs0();
        assert!(!q.matches(&listing1()));
        // And indeed temperature is the culprit:
        assert_eq!(q.attribute_value(&listing1(), "temperature"), Some(35.2));
        let temp_pred = &q.predicates[0];
        assert!(!temp_pred.contains(35.2));
        // Humidity 12 is also out of QS0's range, per Listing 1.
        assert!(!q.predicates[1].contains(12.0));
    }

    #[test]
    fn senml_in_range_record_matches() {
        let rec = parse(
            br#"{"e":[
            {"v":"25.0","u":"far","n":"temperature"},
            {"v":"45.5","u":"per","n":"humidity"},
            {"v":"713","u":"per","n":"light"},
            {"v":"305.01","u":"per","n":"dust"},
            {"v":"20","u":"per","n":"airquality_raw"}
            ],"bt":1422748800000}"#,
        )
        .unwrap();
        assert!(Query::qs0().matches(&rec));
        assert!(!Query::qs1().matches(&rec), "light 713 < 1345");
    }

    #[test]
    fn missing_attribute_fails() {
        let rec = parse(br#"{"e":[{"v":"25.0","u":"far","n":"temperature"}],"bt":1}"#).unwrap();
        assert!(!Query::qs0().matches(&rec));
    }

    #[test]
    fn flat_taxi_matching() {
        let rec = parse(
            br#"{"trip_time_in_secs":600,"trip_distance":2.63,"fare_amount":11.50,
                "tip_amount":2.30,"tolls_amount":5.33,"total_amount":19.13}"#,
        )
        .unwrap();
        assert!(Query::qt().matches(&rec));
        let rec2 = parse(
            br#"{"trip_time_in_secs":600,"trip_distance":2.63,"fare_amount":11.50,
                "tip_amount":2.30,"tolls_amount":0.00,"total_amount":13.80}"#,
        )
        .unwrap();
        assert!(!Query::qt().matches(&rec2), "no tolls, out of range");
    }

    #[test]
    fn queries_match_table8() {
        assert_eq!(Query::qs0().predicates.len(), 5);
        assert_eq!(Query::qs1().predicates.len(), 5);
        assert_eq!(Query::qt().predicates.len(), 5);
        assert!((Query::qs0().paper_selectivity - 0.639).abs() < 1e-9);
        let d = Query::qt().to_string();
        assert!(d.contains("tolls_amount") && d.contains("2.50"));
    }

    #[test]
    fn enumeration_and_lookup() {
        let names: Vec<String> = Query::all().into_iter().map(|q| q.name).collect();
        assert_eq!(names, vec!["QS0", "QS1", "QT"]);
        assert_eq!(Query::by_name("qs1").unwrap().name, "QS1");
        assert_eq!(Query::by_name("QT").unwrap().shape, RecordShape::Flat);
        assert!(Query::by_name("nope").is_none());
    }

    #[test]
    fn selectivity_measurement() {
        let ds = Dataset::new(
            "t",
            vec![
                br#"{"trip_time_in_secs":600,"trip_distance":2.63,"fare_amount":11.50,"tip_amount":2.30,"tolls_amount":5.33}"#.to_vec(),
                br#"{"trip_time_in_secs":600,"trip_distance":2.63,"fare_amount":11.50,"tip_amount":2.30,"tolls_amount":0.00}"#.to_vec(),
            ],
        );
        assert!((Query::qt().selectivity(&ds) - 0.5).abs() < 1e-9);
    }
}

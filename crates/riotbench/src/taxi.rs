//! Taxi trip generator.
//!
//! Flat JSON records modelled on the NYC taxi trips RiotBench streams.
//! Two structural properties matter to the paper's results and are
//! reproduced faithfully:
//!
//! * **Correlated attributes** (§IV-A): `trip_time_in_secs` and
//!   `fare_amount` are functions of `trip_distance` plus noise, which is
//!   why filtering a single attribute of the trio suffices;
//! * the **`total_amount` key**, whose letters are a subset of
//!   `tolls_amount`'s — with block length B = 1 the substring matcher
//!   fires on it in *every* record (Table II, FPR 1.000).
//!
//! Most trips have `tolls_amount` 0.00; the toll range predicate is the
//! dominant selector of QT.

use crate::dataset::Dataset;
use crate::dist::{chance, choice, fixed, log_normal, normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TaxiParams {
    /// Median / sigma of trip distance (miles, log-normal).
    pub distance: (f64, f64),
    /// Probability a trip pays a toll.
    pub toll_probability: f64,
    /// Probability a trip is paid by card (and therefore tips).
    pub card_probability: f64,
}

impl Default for TaxiParams {
    fn default() -> Self {
        TaxiParams {
            distance: (2.2, 0.8),
            toll_probability: 0.12,
            card_probability: 0.60,
        }
    }
}

const TOLLS: [f64; 5] = [2.80, 4.80, 5.33, 6.50, 12.50];
const VENDORS: [&str; 2] = ["CMT", "VTS"];

/// Generates `n` taxi trip records with default parameters.
pub fn generate(seed: u64, n: usize) -> Dataset {
    generate_with(seed, n, &TaxiParams::default())
}

/// Generates `n` taxi trip records.
pub fn generate_with(seed: u64, n: usize, p: &TaxiParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let distance = log_normal(&mut rng, p.distance.0, p.distance.1).min(120.0);
        // ~15 mph average with speed noise.
        let secs_per_mile = rng.gen_range(170.0..330.0);
        let trip_time = (distance * secs_per_mile).round().max(30.0) as i64;
        let fare = (2.5 + 2.5 * distance + normal(&mut rng, 0.0, 1.0).abs()).max(2.5);
        let card = chance(&mut rng, p.card_probability);
        let tip = if card {
            fare * rng.gen_range(0.10..0.30)
        } else {
            0.0
        };
        let tolls = if chance(&mut rng, p.toll_probability) {
            *choice(&mut rng, &TOLLS)
        } else {
            0.0
        };
        let surcharge = if chance(&mut rng, 0.3) { 0.5 } else { 0.0 };
        let mta_tax = 0.5;
        let total = fare + tip + tolls + surcharge + mta_tax;
        let medallion = pseudo_hash(&mut rng);
        let hack = pseudo_hash(&mut rng);
        let minute = (i / 60) % 60;
        let second = i % 60;
        let record = format!(
            concat!(
                "{{\"medallion\":\"{med}\",",
                "\"hack_license\":\"{hack}\",",
                "\"vendor_id\":\"{vendor}\",",
                "\"pickup_datetime\":\"2013-01-07 09:{min:02}:{sec:02}\",",
                "\"payment_type\":\"{pay}\",",
                "\"trip_time_in_secs\":{time},",
                "\"trip_distance\":{dist},",
                "\"fare_amount\":{fare},",
                "\"surcharge\":{sur},",
                "\"mta_tax\":{tax},",
                "\"tip_amount\":{tip},",
                "\"tolls_amount\":{tolls},",
                "\"total_amount\":{total}}}"
            ),
            med = medallion,
            hack = hack,
            vendor = choice(&mut rng, &VENDORS),
            min = minute,
            sec = second,
            pay = if card { "CRD" } else { "CSH" },
            time = trip_time,
            dist = fixed(distance, 2),
            fare = fixed(fare, 2),
            sur = fixed(surcharge, 2),
            tax = fixed(mta_tax, 2),
            tip = fixed(tip, 2),
            tolls = fixed(tolls, 2),
            total = fixed(total, 2),
        );
        records.push(record.into_bytes());
    }
    Dataset::new("taxi", records)
}

/// 32-hex-character pseudo id, like the FOIL medallion hashes.
fn pseudo_hash(rng: &mut StdRng) -> String {
    const HEX: &[u8] = b"0123456789ABCDEF";
    (0..32).map(|_| HEX[rng.gen_range(0..16)] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::Query;
    #[test]
    fn records_have_all_keys() {
        let ds = generate(1, 30);
        for v in ds.parsed() {
            for key in [
                "medallion",
                "hack_license",
                "pickup_datetime",
                "trip_time_in_secs",
                "trip_distance",
                "fare_amount",
                "tip_amount",
                "tolls_amount",
                "total_amount",
            ] {
                assert!(v.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn correlation_time_follows_distance() {
        let ds = generate(5, 500);
        let q = Query::qt();
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for v in ds.parsed() {
            let d = q.attribute_value(&v, "trip_distance").unwrap();
            let t = q.attribute_value(&v, "trip_time_in_secs").unwrap();
            pairs.push((d, t));
        }
        // Pearson correlation must be strongly positive (§IV-A:
        // "trip_time_in_secs and fare_amount are highly dependent on
        // trip_distance").
        let n = pairs.len() as f64;
        let (mx, my) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        let r = cov / (sx * sy);
        assert!(r > 0.8, "correlation {r}");
    }

    #[test]
    fn tolls_mostly_zero() {
        let ds = generate(2, 1000);
        let q = Query::qt();
        let with_tolls = ds
            .parsed()
            .iter()
            .filter(|v| q.attribute_value(v, "tolls_amount").unwrap() > 0.0)
            .count();
        let frac = with_tolls as f64 / 1000.0;
        assert!((0.06..0.20).contains(&frac), "toll fraction {frac}");
    }

    #[test]
    fn qt_selectivity_near_table8() {
        let ds = generate(42, 4000);
        let s = Query::qt().selectivity(&ds);
        assert!(
            (0.02..0.12).contains(&s),
            "QT selectivity {s} (paper: 5.7 %)"
        );
    }

    #[test]
    fn money_fields_have_two_decimals() {
        let ds = generate(3, 5);
        for r in ds.records() {
            let text = String::from_utf8_lossy(r);
            // tolls always printed with 2 dp (most trips: literally 0.00):
            let idx = text.find("\"tolls_amount\":").unwrap();
            let rest = &text[idx + 15..];
            let num: String = rest.chars().take_while(|c| *c != ',').collect();
            assert!(
                num.contains('.') && num.split('.').nth(1).unwrap().len() == 2,
                "{num}"
            );
            // fare always printed with 2 dp:
            let idx = text.find("\"fare_amount\":").unwrap();
            let rest = &text[idx + 14..];
            let num: String = rest.chars().take_while(|c| *c != ',').collect();
            assert!(
                num.contains('.') && num.split('.').nth(1).unwrap().len() == 2,
                "{num}"
            );
        }
    }

    #[test]
    fn total_amount_key_present_for_anagram_effect() {
        let ds = generate(4, 3);
        for r in ds.records() {
            assert!(
                String::from_utf8_lossy(r).contains("total_amount"),
                "Table II depends on this key"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(9, 20).records(), generate(9, 20).records());
    }
}

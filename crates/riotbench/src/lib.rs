//! # rfjson-riotbench — synthetic RiotBench-style workloads
//!
//! The paper evaluates on three datasets it does not ship: the RiotBench
//! **SmartCity** SenML stream and **Taxi** trip stream (Shukla et al.,
//! arXiv:1701.08530) and a **Twitter** corpus (Go, Sentiment140). This
//! crate generates seeded synthetic equivalents that preserve the
//! *structural properties* every result in the paper depends on:
//!
//! * SmartCity records follow Listing 1 exactly — a SenML array of
//!   `{v,u,n}` measurement objects (values stored as JSON **strings**) for
//!   temperature / humidity / light / dust / airquality_raw plus a `bt`
//!   timestamp. Value distributions are tuned so the QS0/QS1 selectivities
//!   land near Table VIII (63.9 % / 5.4 %).
//! * Taxi records are flat JSON trip objects whose fields are correlated
//!   (`trip_time_in_secs` and `fare_amount` follow `trip_distance`, the
//!   §IV-A observation) and **include the `total_amount` key** — the
//!   anagram of `tolls_amount` that drives `s1("tolls_amount")` to
//!   FPR 1.000 in Table II. Most trips have `tolls_amount` 0.00, making
//!   the tolls range predicate the dominant selector of QT.
//! * Twitter records carry the real API keys (`created_at`, `user`,
//!   `location`, `lang`, `favourites_count`, `statuses_count`, …) over
//!   English-like tweet text; `statuses_count` contains the byte run
//!   `uses` that forces `s1("user")` to FPR 1.000 in Table III.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dataset;
pub mod dist;
pub mod queries;
pub mod smartcity;
pub mod stats;
pub mod taxi;
pub mod text;
pub mod twitter;

pub use corpus::{smartcity_corpus, taxi_corpus, twitter_corpus, CORPUS_SEED};
pub use dataset::Dataset;
pub use queries::{AttrKind, Query, RangePredicate, RecordShape};

//! Twitter-style records for the string-matcher stress test (Table III).
//!
//! The schema follows the classic Twitter REST API: a `user` object with
//! profile fields (including `statuses_count`, whose `uses` byte run makes
//! `s1("user")` fire spuriously in every record) embedded in a status
//! object with `created_at`, `text` and `lang`.

use crate::dataset::Dataset;
use crate::text::{screen_name, sentence, LANGS, LOCATIONS, NAMES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Generates `n` Twitter-like status records.
pub fn generate(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let day = DAYS[rng.gen_range(0..7)];
        let month = MONTHS[rng.gen_range(0..12)];
        let dom = rng.gen_range(1u32..29);
        let (h, m, s) = (
            rng.gen_range(0u32..24),
            rng.gen_range(0u32..60),
            rng.gen_range(0u32..60),
        );
        let n_words = rng.gen_range(6..24);
        let text = sentence(&mut rng, n_words);
        let name = NAMES[rng.gen_range(0..NAMES.len())];
        let screen = screen_name(&mut rng);
        let location = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
        let lang = LANGS[rng.gen_range(0..LANGS.len())];
        let record = format!(
            concat!(
                "{{\"created_at\":\"{day} {month} {dom:02} {h:02}:{m:02}:{s:02} +0000 2009\",",
                "\"id\":{id},",
                "\"text\":\"{text}\",",
                "\"user\":{{",
                "\"id\":{uid},",
                "\"name\":\"{name}\",",
                "\"screen_name\":\"{screen}\",",
                "\"location\":\"{location}\",",
                "\"followers_count\":{followers},",
                "\"friends_count\":{friends},",
                "\"favourites_count\":{favs},",
                "\"statuses_count\":{statuses},",
                "\"lang\":\"{lang}\"",
                "}},",
                "\"retweet_count\":{rts},",
                "\"lang\":\"{lang}\"}}"
            ),
            day = day,
            month = month,
            dom = dom,
            h = h,
            m = m,
            s = s,
            id = 1_000_000_000u64 + i as u64,
            text = text,
            uid = rng.gen_range(10_000u64..99_999_999),
            name = name,
            screen = screen,
            location = location,
            followers = rng.gen_range(0u32..50_000),
            friends = rng.gen_range(0u32..5_000),
            favs = rng.gen_range(0u32..20_000),
            statuses = rng.gen_range(1u32..100_000),
            lang = lang,
            rts = rng.gen_range(0u32..1000),
        );
        records.push(record.into_bytes());
    }
    Dataset::new("twitter", records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_jsonstream::Value;

    #[test]
    fn records_parse_and_carry_needle_keys() {
        let ds = generate(1, 40);
        for v in ds.parsed() {
            assert!(v.get("created_at").is_some());
            let user = v.get("user").expect("user object");
            for key in [
                "location",
                "favourites_count",
                "statuses_count",
                "lang",
                "screen_name",
            ] {
                assert!(user.get(key).is_some(), "missing user.{key}");
            }
            assert!(v.get("lang").and_then(Value::as_str).is_some());
        }
    }

    #[test]
    fn statuses_count_key_present_for_user_fpr() {
        // `statuses_count` contains the byte run "uses" — 4 consecutive
        // members of {u,s,e,r} — which is what drives s1("user") to
        // FPR 1.000 in Table III.
        let ds = generate(2, 10);
        for r in ds.records() {
            assert!(String::from_utf8_lossy(r).contains("statuses_count"));
        }
    }

    #[test]
    fn text_diversity() {
        let ds = generate(3, 200);
        // Twitter text must be diverse enough that some records contain
        // English words with 4-letter runs from {l,a,n,g} (drives the
        // s1("lang") FPR of Table III) while most do not.
        let with_anna_like = ds
            .records()
            .iter()
            .filter(|r| {
                let t = String::from_utf8_lossy(r);
                t.contains("anna") || t.contains("alan") || t.contains("gala")
            })
            .count();
        assert!(with_anna_like > 0, "some letter-run collisions must exist");
        assert!(with_anna_like < 200, "but not in every record");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(11, 25).records(), generate(11, 25).records());
    }
}

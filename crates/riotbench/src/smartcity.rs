//! SmartCity SenML generator (Listing 1 of the paper).
//!
//! Each record is one batch of five sensor measurements. Distribution
//! parameters were tuned so that the QS0 / QS1 selectivities approximate
//! Table VIII (63.9 % / 5.4 %); EXPERIMENTS.md records the measured values.

use crate::dataset::Dataset;
use crate::dist::{fixed, log_normal, normal};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sensor value distributions (documented so ablations can perturb them).
///
/// * temperature ~ N(20, 9) °C-ish, one decimal;
/// * humidity ~ N(45, 13) %, one decimal;
/// * light ~ LogNormal(median 500, σ 1.1), integer lux;
/// * dust ~ LogNormal(median 220, σ 1.0), two decimals;
/// * airquality_raw ~ LogNormal(median 26, σ 0.45), integer.
#[derive(Debug, Clone, Copy)]
pub struct SmartCityParams {
    /// Mean / sd of temperature.
    pub temperature: (f64, f64),
    /// Mean / sd of humidity.
    pub humidity: (f64, f64),
    /// Median / sigma of light.
    pub light: (f64, f64),
    /// Median / sigma of dust.
    pub dust: (f64, f64),
    /// Median / sigma of airquality_raw.
    pub airquality: (f64, f64),
}

impl Default for SmartCityParams {
    fn default() -> Self {
        SmartCityParams {
            temperature: (20.0, 9.0),
            humidity: (45.0, 13.0),
            light: (500.0, 1.1),
            dust: (220.0, 1.0),
            airquality: (26.0, 0.45),
        }
    }
}

/// Generates `n` SmartCity records with the default parameters.
pub fn generate(seed: u64, n: usize) -> Dataset {
    generate_with(seed, n, &SmartCityParams::default())
}

/// Generates `n` SmartCity records with explicit parameters.
pub fn generate_with(seed: u64, n: usize, p: &SmartCityParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(n);
    let mut bt = 1_422_748_800_000i64;
    for _ in 0..n {
        let temperature = normal(&mut rng, p.temperature.0, p.temperature.1);
        let humidity = normal(&mut rng, p.humidity.0, p.humidity.1).clamp(0.0, 100.0);
        let light = log_normal(&mut rng, p.light.0, p.light.1).min(200_000.0) as i64;
        let dust = log_normal(&mut rng, p.dust.0, p.dust.1).min(99_999.0);
        let airquality = log_normal(&mut rng, p.airquality.0, p.airquality.1).min(2000.0) as i64;
        let record = format!(
            concat!(
                "{{\"e\":[",
                "{{\"v\":\"{temp}\",\"u\":\"far\",\"n\":\"temperature\"}},",
                "{{\"v\":\"{hum}\",\"u\":\"per\",\"n\":\"humidity\"}},",
                "{{\"v\":\"{light}\",\"u\":\"per\",\"n\":\"light\"}},",
                "{{\"v\":\"{dust}\",\"u\":\"per\",\"n\":\"dust\"}},",
                "{{\"v\":\"{aqr}\",\"u\":\"per\",\"n\":\"airquality_raw\"}}",
                "],\"bt\":{bt}}}"
            ),
            temp = fixed(temperature, 1),
            hum = fixed(humidity, 1),
            light = light,
            dust = fixed(dust, 2),
            aqr = airquality,
            bt = bt,
        );
        records.push(record.into_bytes());
        bt += 1000;
    }
    Dataset::new("smartcity", records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::Query;
    use rfjson_jsonstream::Value;

    #[test]
    fn records_follow_listing1_schema() {
        let ds = generate(1, 50);
        for v in ds.parsed() {
            let e = v.get("e").and_then(Value::as_array).expect("e array");
            assert_eq!(e.len(), 5);
            let names: Vec<&str> = e
                .iter()
                .map(|m| m.get("n").and_then(Value::as_str).expect("n"))
                .collect();
            assert_eq!(
                names,
                ["temperature", "humidity", "light", "dust", "airquality_raw"]
            );
            for m in e {
                assert!(m.get("v").and_then(Value::as_numeric).is_some(), "v parses");
                assert!(m.get("u").and_then(Value::as_str).is_some());
            }
            assert!(v.get("bt").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(7, 10).records(), generate(7, 10).records());
        assert_ne!(generate(7, 10).records(), generate(8, 10).records());
    }

    #[test]
    fn selectivities_near_table8() {
        let ds = generate(42, 4000);
        let s0 = Query::qs0().selectivity(&ds);
        let s1 = Query::qs1().selectivity(&ds);
        // Paper: 63.9 % and 5.4 %. Synthetic data must land in the same
        // regime (QS0 selective-light, QS1 highly selective).
        assert!((0.50..0.75).contains(&s0), "QS0 selectivity {s0}");
        assert!((0.01..0.15).contains(&s1), "QS1 selectivity {s1}");
    }

    #[test]
    fn values_are_strings_in_json() {
        let ds = generate(3, 5);
        for r in ds.records() {
            let text = String::from_utf8_lossy(r);
            assert!(text.contains("\"v\":\""), "SenML stores v as string");
        }
    }
}

//! Small sampling toolkit (normal / log-normal / choices) on top of any
//! [`rand::Rng`] — `rand_distr` is intentionally not a dependency.

use rand::Rng;

/// One standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log of zero).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `sd` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "standard deviation must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Log-normal sample parameterised by the **median** and the shape `sigma`
/// (standard deviation of the underlying normal in log space).
///
/// # Panics
///
/// Panics if `median` is not positive or `sigma` is negative.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Uniformly chosen element of a non-empty slice.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choice<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "choice requires a non-empty slice");
    &items[rng.gen_range(0..items.len())]
}

/// Bernoulli draw.
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Formats a float with exactly `dp` decimal places (the fixed-point money
/// and sensor formats of the datasets, e.g. `"6.00"`, `"35.2"`).
pub fn fixed(v: f64, dp: usize) -> String {
    format!("{v:.dp$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 500.0, 1.1)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!(
            (median / 500.0).ln().abs() < 0.1,
            "median {median} should be near 500"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn chance_rate() {
        let mut r = rng();
        let hits = (0..10_000).filter(|_| chance(&mut r, 0.12)).count();
        assert!((hits as f64 / 10_000.0 - 0.12).abs() < 0.02);
    }

    #[test]
    fn choice_uniformity() {
        let mut r = rng();
        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[*choice(&mut r, &items) as usize - 1] += 1;
        }
        for c in counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "counts {counts:?}");
        }
    }

    #[test]
    fn fixed_formatting() {
        assert_eq!(fixed(6.0, 2), "6.00");
        assert_eq!(fixed(35.25, 1), "35.2", "banker-ish rounding is fine");
        assert_eq!(fixed(0.651, 2), "0.65");
        assert_eq!(fixed(-3.5, 0), "-4");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| normal(&mut r, 0.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| normal(&mut r, 0.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}

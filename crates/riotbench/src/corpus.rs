//! Standard seeded corpora: the fixed workloads every benchmark, FPR
//! table and perf-trajectory measurement runs against.
//!
//! Centralising the seeds here keeps numbers comparable across crates and
//! across PRs — `BENCH_PR*.json` files are only meaningful if each one
//! measured the same byte streams.

use crate::dataset::Dataset;
use crate::{smartcity, taxi, twitter};

/// Workspace-wide corpus seed (all derived seeds offset from this).
pub const CORPUS_SEED: u64 = 0x5EED_2022;

/// The standard SmartCity corpus (SenML records, QS0/QS1 ground truth).
pub fn smartcity_corpus(records: usize) -> Dataset {
    smartcity::generate(CORPUS_SEED, records)
}

/// The standard Taxi corpus (flat records, QT ground truth).
pub fn taxi_corpus(records: usize) -> Dataset {
    taxi::generate(CORPUS_SEED + 1, records)
}

/// The standard Twitter corpus (string-heavy status records).
pub fn twitter_corpus(records: usize) -> Dataset {
    twitter::generate(CORPUS_SEED + 2, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_reproducible_and_distinct() {
        assert_eq!(
            smartcity_corpus(50).records(),
            smartcity_corpus(50).records()
        );
        assert_eq!(taxi_corpus(10).len(), 10);
        assert_ne!(smartcity_corpus(10).records(), twitter_corpus(10).records());
    }
}

//! English-like text generation for the Twitter workload.
//!
//! The paper uses the Sentiment140 corpus [Go 2009] as a "more diverse"
//! dataset to stress the string matchers. What matters for Table III is the
//! *letter statistics* of real English: words such as "sure", "anna" or
//! "national" contain runs drawn from the letter sets of the needles
//! (`user`, `lang`, `location`), which is what makes the B = 1 matcher
//! produce false positives there and not on machine-generated keys.

use rand::rngs::StdRng;
use rand::Rng;

/// Common-word vocabulary (plus a few names) used to synthesise tweets.
pub const VOCABULARY: &[&str] = &[
    "the",
    "be",
    "to",
    "of",
    "and",
    "a",
    "in",
    "that",
    "have",
    "it",
    "for",
    "not",
    "on",
    "with",
    "he",
    "as",
    "you",
    "do",
    "at",
    "this",
    "but",
    "his",
    "by",
    "from",
    "they",
    "we",
    "say",
    "her",
    "she",
    "or",
    "an",
    "will",
    "my",
    "one",
    "all",
    "would",
    "there",
    "their",
    "what",
    "so",
    "up",
    "out",
    "if",
    "about",
    "who",
    "get",
    "which",
    "go",
    "me",
    "when",
    "make",
    "can",
    "like",
    "time",
    "no",
    "just",
    "him",
    "know",
    "take",
    "people",
    "into",
    "year",
    "your",
    "good",
    "some",
    "could",
    "them",
    "see",
    "other",
    "than",
    "then",
    "now",
    "look",
    "only",
    "come",
    "its",
    "over",
    "think",
    "also",
    "back",
    "after",
    "use",
    "two",
    "how",
    "our",
    "work",
    "first",
    "well",
    "way",
    "even",
    "new",
    "want",
    "because",
    "any",
    "these",
    "give",
    "day",
    "most",
    "us",
    "great",
    "morning",
    "night",
    "today",
    "tomorrow",
    "love",
    "hate",
    "really",
    "very",
    "happy",
    "sad",
    "tired",
    "excited",
    "sure",
    "maybe",
    "never",
    "always",
    "again",
    "still",
    "home",
    "school",
    "music",
    "movie",
    "game",
    "team",
    "play",
    "watch",
    "read",
    "write",
    "listen",
    "weather",
    "rain",
    "sunny",
    "coffee",
    "lunch",
    "dinner",
    "breakfast",
    "friend",
    "family",
    "weekend",
    "monday",
    "friday",
    "sunday",
    "party",
    "birthday",
    "national",
    "station",
    "nation",
    "notation",
    "banana",
    "anna",
    "alan",
    "gala",
    "angle",
    "signal",
    "annual",
    "manual",
    "casual",
    "usual",
    "visual",
    "channel",
    "planner",
    "scanner",
    "analog",
    "catalog",
    "dialog",
    "total",
    "local",
    "vocal",
    "final",
    "canal",
    "loan",
    "alone",
    "along",
    "among",
    "strong",
    "wrong",
    "song",
    "long",
    "gone",
    "done",
    "none",
    "bone",
    "zone",
    "users",
    "reuse",
    "excuse",
    "because",
    "house",
    "mouse",
    "pause",
    "cause",
    "amuse",
    "museum",
    "serious",
    "curious",
    "furious",
    "various",
    "obvious",
    "jealous",
    "nervous",
    "famous",
];

/// Location strings (profile `location` field values).
pub const LOCATIONS: &[&str] = &[
    "London",
    "New York",
    "Atlanta",
    "California",
    "Toronto",
    "Berlin",
    "Singapore",
    "Chicago",
    "Los Angeles",
    "Dallas",
    "Seattle",
    "Boston",
    "Portland",
    "Austin",
    "Denver",
    "Miami",
    "",
    "somewhere",
    "earth",
    "internet",
];

/// First names for user handles.
pub const NAMES: &[&str] = &[
    "anna", "alan", "susan", "laura", "nathan", "megan", "logan", "dylan", "brian", "jason",
    "sarah", "kevin", "maria", "diana", "elena", "oscar", "peter", "nina", "paula", "samuel",
];

/// Language codes for the `lang` field.
pub const LANGS: &[&str] = &["en", "es", "de", "fr", "pt", "it", "nl", "tr"];

/// Generates a tweet-like sentence of `words` words.
pub fn sentence(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        match rng.gen_range(0u32..100) {
            0..=2 => {
                // @mention
                out.push('@');
                out.push_str(NAMES[rng.gen_range(0..NAMES.len())]);
                out.push_str(&rng.gen_range(0u32..999).to_string());
            }
            3..=4 => {
                // #hashtag
                out.push('#');
                out.push_str(VOCABULARY[rng.gen_range(0..VOCABULARY.len())]);
            }
            _ => {
                out.push_str(VOCABULARY[rng.gen_range(0..VOCABULARY.len())]);
            }
        }
    }
    match rng.gen_range(0u32..4) {
        0 => out.push('!'),
        1 => out.push('.'),
        2 => out.push_str("..."),
        _ => {}
    }
    out
}

/// A screen name like `anna_banana42`.
pub fn screen_name(rng: &mut StdRng) -> String {
    let a = NAMES[rng.gen_range(0..NAMES.len())];
    let b = VOCABULARY[rng.gen_range(0..VOCABULARY.len())];
    format!("{a}_{b}{}", rng.gen_range(0u32..100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sentences_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 12);
        let words = s.split_whitespace().count();
        assert_eq!(words, 12, "sentence: {s}");
    }

    #[test]
    fn text_is_json_safe_ascii() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = sentence(&mut rng, 20);
            assert!(s.is_ascii());
            assert!(!s.contains('"') && !s.contains('\\'));
        }
    }

    #[test]
    fn vocabulary_contains_fpr_drivers() {
        // Words whose letters fall inside the needles' letter sets — the
        // cause of Table III's B=1 false positives.
        for w in ["sure", "anna", "national", "users", "banana"] {
            assert!(VOCABULARY.contains(&w) || NAMES.contains(&w), "{w}");
        }
    }

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(sentence(&mut a, 10), sentence(&mut b, 10));
    }
}

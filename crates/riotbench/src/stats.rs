//! Dataset statistics — used by the benchmark tables and by the generator
//! calibration tests.

use crate::dataset::Dataset;
use crate::queries::Query;
use std::fmt;

/// Summary statistics of one attribute over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrStats {
    /// Number of records in which the attribute was present and numeric.
    pub count: usize,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl fmt::Display for AttrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.2} mean={:.2} max={:.2}",
            self.count, self.min, self.mean, self.max
        )
    }
}

/// Computes statistics for `attribute` as located by `query`'s record
/// shape. Returns `None` if the attribute never appears.
pub fn attribute_stats(dataset: &Dataset, query: &Query, attribute: &str) -> Option<AttrStats> {
    let mut count = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for record in dataset.parsed() {
        if let Some(v) = query.attribute_value(&record, attribute) {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
    }
    (count > 0).then(|| AttrStats {
        count,
        min,
        max,
        mean: sum / count as f64,
    })
}

/// Per-predicate pass rates: for each predicate of `query`, the fraction of
/// records whose attribute value satisfies it. The product of these is the
/// query selectivity when attributes are independent — comparing the two
/// reveals attribute correlation (the §IV-A taxi observation).
pub fn predicate_pass_rates(dataset: &Dataset, query: &Query) -> Vec<(String, f64)> {
    let parsed = dataset.parsed();
    query
        .predicates
        .iter()
        .map(|p| {
            let hits = parsed
                .iter()
                .filter(|r| {
                    query
                        .attribute_value(r, &p.attribute)
                        .is_some_and(|v| p.contains(v))
                })
                .count();
            (
                p.attribute.clone(),
                hits as f64 / parsed.len().max(1) as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{smartcity, taxi};

    #[test]
    fn stats_cover_all_records() {
        let ds = smartcity::generate(1, 200);
        let q = Query::qs0();
        let s = attribute_stats(&ds, &q, "temperature").unwrap();
        assert_eq!(s.count, 200);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(attribute_stats(&ds, &q, "no_such_sensor").is_none());
    }

    #[test]
    fn pass_rates_multiply_to_selectivity_when_independent() {
        let ds = smartcity::generate(7, 2000);
        let q = Query::qs0();
        let rates = predicate_pass_rates(&ds, &q);
        assert_eq!(rates.len(), 5);
        let product: f64 = rates.iter().map(|(_, r)| r).product();
        let sel = q.selectivity(&ds);
        // SmartCity sensors are generated independently, so the product
        // should approximate the joint selectivity.
        assert!(
            (product - sel).abs() < 0.05,
            "product {product} vs selectivity {sel}"
        );
    }

    #[test]
    fn taxi_correlation_breaks_independence() {
        let ds = taxi::generate(7, 2000);
        let q = Query::qt();
        let rates = predicate_pass_rates(&ds, &q);
        let product: f64 = rates.iter().map(|(_, r)| r).product();
        let sel = q.selectivity(&ds);
        // Correlated attributes: the joint selectivity is *higher* than the
        // independence product (trip_time/fare/distance pass together).
        assert!(
            sel > product * 1.2,
            "selectivity {sel} should exceed independence product {product}"
        );
    }

    #[test]
    fn display_formats() {
        let s = AttrStats {
            count: 3,
            min: 1.0,
            max: 5.0,
            mean: 2.5,
        };
        assert_eq!(s.to_string(), "n=3 min=1.00 mean=2.50 max=5.00");
    }
}

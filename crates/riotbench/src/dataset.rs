//! Dataset container: a named collection of raw JSON records.

use rfjson_jsonstream::{parse, Value};
use std::fmt;

/// A workload: one raw JSON record per entry, as the bytes the raw filters
/// scan. Parsing (for ground truth) is explicit and lazy — mirroring the
/// paper's premise that parsing is the expensive step.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    name: String,
    records: Vec<Vec<u8>>,
}

impl Dataset {
    /// Creates a dataset from raw records.
    pub fn new(name: impl Into<String>, records: Vec<Vec<u8>>) -> Self {
        Dataset {
            name: name.into(),
            records,
        }
    }

    /// Dataset name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw records.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes (records only, no framing).
    pub fn payload_bytes(&self) -> usize {
        self.records.iter().map(Vec::len).sum()
    }

    /// The newline-delimited stream form fed to the filter hardware.
    pub fn stream(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + self.len());
        self.stream_into(&mut out);
        out
    }

    /// Appends the newline-delimited stream form to `out` (buffer-reusing
    /// counterpart of [`Dataset::stream`] for repeated measurements).
    pub fn stream_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.payload_bytes() + self.len());
        for r in &self.records {
            out.extend_from_slice(r);
            out.push(b'\n');
        }
    }

    /// Parses every record (the ground-truth oracle path).
    ///
    /// # Panics
    ///
    /// Panics if a generated record is not valid JSON — generator bugs must
    /// not silently skew FPR measurements.
    pub fn parsed(&self) -> Vec<Value> {
        self.records
            .iter()
            .map(|r| {
                parse(r).unwrap_or_else(|e| {
                    panic!(
                        "dataset `{}` contains invalid JSON ({e}): {}",
                        self.name,
                        String::from_utf8_lossy(r)
                    )
                })
            })
            .collect()
    }

    /// Repeats records until the stream reaches at least `bytes` bytes —
    /// the "inflated JSON data" of the paper's §IV-B experiment.
    #[must_use]
    pub fn inflated_to(&self, bytes: usize) -> Dataset {
        assert!(!self.is_empty(), "cannot inflate an empty dataset");
        let mut records = Vec::new();
        let mut total = 0usize;
        let mut i = 0;
        while total < bytes {
            let r = &self.records[i % self.records.len()];
            total += r.len() + 1;
            records.push(r.clone());
            i += 1;
        }
        Dataset::new(format!("{}-inflated", self.name), records)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataset `{}`: {} records, {} bytes",
            self.name,
            self.len(),
            self.payload_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new("toy", vec![br#"{"a":1}"#.to_vec(), br#"{"a":2}"#.to_vec()])
    }

    #[test]
    fn stream_is_newline_delimited() {
        let d = toy();
        assert_eq!(d.stream(), b"{\"a\":1}\n{\"a\":2}\n".to_vec());
        assert_eq!(d.payload_bytes(), 14);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn parsed_round_trip() {
        let d = toy();
        let vs = d.parsed();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].get("a").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "invalid JSON")]
    fn parsed_panics_on_garbage() {
        let d = Dataset::new("bad", vec![b"{oops".to_vec()]);
        let _ = d.parsed();
    }

    #[test]
    fn inflate_reaches_target() {
        let d = toy().inflated_to(1000);
        assert!(d.stream().len() >= 1000);
        assert!(d.name().contains("inflated"));
    }
}

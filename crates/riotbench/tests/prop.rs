//! Property tests for the workload generators: every record of every
//! dataset is valid JSON with the expected schema, ground truth is
//! well-defined, and statistics are stable across seeds.

use proptest::prelude::*;
use rfjson_jsonstream::{parse, Value};
use rfjson_riotbench::{smartcity, taxi, twitter, Query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn smartcity_records_valid_for_any_seed(seed in any::<u64>()) {
        let ds = smartcity::generate(seed, 25);
        let q = Query::qs0();
        for v in ds.parsed() {
            // All five sensors present with numeric values.
            for p in &q.predicates {
                let val = q.attribute_value(&v, &p.attribute);
                prop_assert!(val.is_some(), "missing {}", p.attribute);
            }
            prop_assert!(v.get("bt").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn taxi_records_valid_for_any_seed(seed in any::<u64>()) {
        let ds = taxi::generate(seed, 25);
        let q = Query::qt();
        for (raw, v) in ds.records().iter().zip(ds.parsed()) {
            for p in &q.predicates {
                prop_assert!(q.attribute_value(&v, &p.attribute).is_some());
            }
            // Monetary consistency: total ≥ fare.
            let fare = v.get("fare_amount").and_then(Value::as_f64).unwrap();
            let total = v.get("total_amount").and_then(Value::as_f64).unwrap();
            prop_assert!(total >= fare, "total {total} < fare {fare}");
            // The anagram key must be present in the raw bytes.
            prop_assert!(String::from_utf8_lossy(raw).contains("total_amount"));
        }
    }

    #[test]
    fn twitter_records_valid_for_any_seed(seed in any::<u64>()) {
        let ds = twitter::generate(seed, 25);
        for r in ds.records() {
            let v = parse(r).expect("twitter record parses");
            prop_assert!(v.get("user").is_some());
            prop_assert!(v.get("created_at").is_some());
            prop_assert!(v.get("text").and_then(Value::as_str).is_some());
        }
    }

    #[test]
    fn selectivities_stable_across_seeds(seed in 0u64..1000) {
        // Distribution tuning must not be seed-sensitive: QS1 stays a
        // highly-selective query for any seed.
        let ds = smartcity::generate(seed, 800);
        let s1 = Query::qs1().selectivity(&ds);
        prop_assert!((0.0..0.25).contains(&s1), "QS1 selectivity {s1}");
        let s0 = Query::qs0().selectivity(&ds);
        prop_assert!((0.4..0.85).contains(&s0), "QS0 selectivity {s0}");
    }

    #[test]
    fn inflation_preserves_record_validity(seed in any::<u64>(), target in 1000usize..20_000) {
        let ds = smartcity::generate(seed, 5).inflated_to(target);
        prop_assert!(ds.stream().len() >= target);
        for v in ds.parsed() {
            prop_assert!(v.get("e").is_some());
        }
    }
}

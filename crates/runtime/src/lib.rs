//! # rfjson-runtime — sharded parallel streaming runtime
//!
//! The paper scales raw filtering by **replicating identical filter
//! lanes**: each hardware lane consumes its slice of the byte stream and
//! DMAs back one match bit per record (§IV-B). This crate is the
//! software form of that scaling step, built directly on the
//! [`FilterBackend`] seam of `rfjson-core`:
//!
//! 1. the input buffer is split at **record boundaries** into per-thread
//!    shards ([`rfjson_jsonstream::frame::shard_ranges`] — every cut
//!    lands immediately after a `\n`, so each shard is a self-contained
//!    NDJSON sub-stream);
//! 2. one backend instance per shard runs on a scoped thread
//!    (`std::thread::scope` — no `unsafe`, no extra dependencies);
//! 3. the per-shard decision vectors are reassembled in input order.
//!
//! Because the serial path resets the filter right after every `\n`,
//! a freshly compiled backend at a shard start is in **exactly** the
//! state the serial filter would be in at that offset — so the sharded
//! decisions are byte-for-byte identical to the serial ones, for any
//! backend and any shard count. The differential tests in this crate
//! and in the root crate (`tests/parallel_diff.rs`) hold that equality
//! at shard counts {1, 2, 3, 8} over generated corpora.
//!
//! ```
//! use rfjson_core::{Engine, Expr};
//! use rfjson_runtime::ShardedRunner;
//!
//! let expr = Expr::and([Expr::substring(b"humidity", 1)?, Expr::int_range(10, 90)]);
//! let stream = b"{\"n\":\"humidity\",\"v\":\"55\"}\n{\"n\":\"humidity\",\"v\":\"95\"}\n";
//!
//! let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&expr, 2);
//! assert_eq!(runner.filter_stream(stream), vec![true, false]);
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```
//!
//! This is the architectural seam future scaling work (async ingest,
//! real hardware offload) plugs into: anything that implements
//! [`FilterBackend`] is sharded for free — and since a sharded lane is
//! just "something that filters a self-contained NDJSON sub-stream",
//! the same machinery carries **fused multi-query plans**:
//! [`MultiShardedRunner`] shards a whole
//! [`MultiBackend`](rfjson_core::multi::MultiBackend) batch (one fused
//! scan answering N queries per lane) with the identical
//! panic-isolation/heal/retry ladder, reassembling per-record verdict
//! *bitsets* ([`BatchVerdicts`]) instead of single decisions.
//!
//! # Fault tolerance
//!
//! The paper's RF lanes are fixed-function hardware that cannot crash
//! mid-stream; software lanes can. This runtime therefore treats lane
//! failure and malformed input as first-class, never process-fatal:
//!
//! * **Fallible construction** — [`ShardedRunner::try_new`] /
//!   [`try_with_config`](ShardedRunner::try_with_config) return a
//!   [`CompileError`] for ill-formed expressions; the panicking
//!   constructors remain as thin wrappers for trusted expressions.
//! * **Panic isolation + graceful degradation** — every shard (and the
//!   serial fast path) runs under [`std::panic::catch_unwind`]. A
//!   failed or wrong-length shard is quarantined: its lane is
//!   recompiled, and the shard is **retried once, serially, on the
//!   reference model backend** (`R`, default [`CompiledFilter`]). Only
//!   if the retry also fails does the stream return
//!   [`RuntimeError::ShardFailed`] with the shard index and the global
//!   record range it covered — the process never aborts.
//! * **Record quarantine** — [`ShardedRunner::filter_stream_verdicts`]
//!   applies [`IngestLimits`]: oversized records and records beyond the
//!   stream's record budget are [`Verdict::Skipped`] (reported, never
//!   silently dropped), byte-identically to the serial quarantine path
//!   at every shard count.
//!
//! The degradation ladder is thus *engine lane → model retry →
//! structured error*: the same shape a future async or hardware-offload
//! lane inherits (a dead FPGA lane degrades one slice of the stream,
//! never the service).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(any(test, feature = "fault"))]
pub mod fault;

mod metrics;

use rfjson_core::backend::FilterBackend;
use rfjson_core::expr::Expr;
use rfjson_core::multi::{BatchVerdicts, MultiBackend, MultiLanes};
use rfjson_core::CompiledFilter;
use rfjson_jsonstream::frame::{shard_ranges, split_records};
use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use rfjson_core::backend::CompileError;
pub use rfjson_jsonstream::frame::{IngestLimits, SkipReason, Verdict};

/// A structured, never-process-fatal runtime failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A lane could not be compiled from the runner's expression.
    Compile(CompileError),
    /// One shard failed on its primary lane **and** on the serial
    /// model-backend retry (a *double fault*). `records` is the global,
    /// input-order record index range the shard covered; every other
    /// shard's records were filtered normally.
    ShardFailed {
        /// Index of the failed shard (stream order, 0-based).
        shard: usize,
        /// Global record indices the shard covered.
        records: Range<usize>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "lane compilation failed: {e}"),
            RuntimeError::ShardFailed { shard, records } => write!(
                f,
                "shard {shard} failed on both the primary lane and the model retry \
                 (records {}..{})",
                records.start, records.end
            ),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::ShardFailed { .. } => None,
        }
    }
}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

/// How a [`ShardedRunner`] divides work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of shards (thread lanes). `None` uses
    /// [`std::thread::available_parallelism`].
    pub shards: Option<usize>,
    /// Inputs smaller than this per shard are not worth a thread: the
    /// effective shard count is capped at `stream_len / min_shard_bytes`
    /// (at least 1), so small streams run serially with zero spawn
    /// overhead.
    pub min_shard_bytes: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            shards: None,
            min_shard_bytes: 64 * 1024,
        }
    }
}

/// A raw filter replicated across threads over record-aligned shards of
/// the input — the software analogue of the paper's parallel RF lanes.
///
/// The runner is generic over the backend: `ShardedRunner<Engine>` for
/// bulk throughput, `ShardedRunner<CompiledFilter>` for the
/// cosim-faithful model, or any future [`FilterBackend`]. Backend
/// lanes are compiled lazily on first use and **cached across calls**,
/// so a long-lived runner pays compilation once, not per stream.
///
/// The second type parameter `R` is the **retry backend**: when a shard
/// lane panics or returns a malformed decision vector, the shard is
/// re-run serially on a freshly compiled `R` (the reference
/// [`CompiledFilter`] model by default) before the stream is declared
/// failed. See the crate docs' *Fault tolerance* section.
#[derive(Debug, Clone)]
pub struct ShardedRunner<B: FilterBackend, R: FilterBackend = CompiledFilter> {
    expr: Expr,
    config: RunnerConfig,
    /// Cached per-shard backend lanes, grown on demand (lane `i` serves
    /// shard `i`; every lane is reset at the start of each stream by
    /// the backend's own stream driver). A lane that panicked is
    /// recompiled before its next use.
    lanes: Vec<B>,
    /// Lazily compiled retry lane (dropped again if it ever panics).
    retry_lane: Option<R>,
}

impl<B: FilterBackend + Send, R: FilterBackend> ShardedRunner<B, R> {
    /// Runner with the default configuration (one shard per available
    /// core, 64 KiB minimum shard size).
    ///
    /// # Panics
    ///
    /// Panics if the expression fails validation (same contract as
    /// [`FilterBackend::compile`]). For user-supplied expressions use
    /// the non-panicking [`ShardedRunner::try_new`].
    pub fn new(expr: &Expr) -> Self {
        Self::with_config(expr, RunnerConfig::default())
    }

    /// Fallible form of [`ShardedRunner::new`].
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidExpr`] if the expression fails
    /// [`Expr::validate`].
    pub fn try_new(expr: &Expr) -> Result<Self, CompileError> {
        Self::try_with_config(expr, RunnerConfig::default())
    }

    /// Runner with an explicit shard count (no minimum-size cap) —
    /// what the differential tests use to pin lane counts.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails validation. For user-supplied
    /// expressions use the non-panicking [`ShardedRunner::try_with_shards`].
    pub fn with_shards(expr: &Expr, shards: usize) -> Self {
        Self::with_config(
            expr,
            RunnerConfig {
                shards: Some(shards),
                min_shard_bytes: 1,
            },
        )
    }

    /// Fallible form of [`ShardedRunner::with_shards`].
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidExpr`] if the expression fails
    /// [`Expr::validate`].
    pub fn try_with_shards(expr: &Expr, shards: usize) -> Result<Self, CompileError> {
        Self::try_with_config(
            expr,
            RunnerConfig {
                shards: Some(shards),
                min_shard_bytes: 1,
            },
        )
    }

    /// Runner with full configuration control.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails validation. For user-supplied
    /// expressions use the non-panicking [`ShardedRunner::try_with_config`].
    pub fn with_config(expr: &Expr, config: RunnerConfig) -> Self {
        Self::try_with_config(expr, config).expect("expression must be well-formed")
    }

    /// Fallible form of [`ShardedRunner::with_config`]: no public
    /// constructor of this runner panics on user input.
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidExpr`] if the expression fails
    /// [`Expr::validate`].
    pub fn try_with_config(expr: &Expr, config: RunnerConfig) -> Result<Self, CompileError> {
        expr.validate()?;
        Ok(ShardedRunner {
            expr: expr.clone(),
            config,
            lanes: Vec::new(),
            retry_lane: None,
        })
    }

    /// The source expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The runner's configuration.
    pub fn config(&self) -> RunnerConfig {
        self.config
    }

    /// Effective shard count for a stream of `stream_len` bytes.
    pub fn shards_for(&self, stream_len: usize) -> usize {
        effective_shards(self.config, stream_len)
    }

    /// The record-aligned ranges a call over `stream` would fan out to.
    pub fn plan(&self, stream: &[u8]) -> Vec<Range<usize>> {
        shard_ranges(stream, self.shards_for(stream.len()))
    }

    /// Filters a newline-delimited stream, returning per-record accept
    /// decisions in input order — byte-for-byte identical to the serial
    /// [`FilterBackend::filter_stream`] of the same backend.
    ///
    /// # Panics
    ///
    /// Panics only on a shard **double fault** (primary lane *and* the
    /// serial model retry both failed — see the crate docs' degradation
    /// ladder), which no user-supplied expression or input bytes can
    /// cause. Use [`ShardedRunner::try_filter_stream`] to handle even
    /// that case as a value.
    pub fn filter_stream(&mut self, stream: &[u8]) -> Vec<bool> {
        self.try_filter_stream(stream)
            .expect("shard double fault: primary lane and model retry both failed")
    }

    /// Allocation-reusing form of [`ShardedRunner::filter_stream`]:
    /// appends one decision per record to `out`.
    ///
    /// # Panics
    ///
    /// Same double-fault-only contract as
    /// [`ShardedRunner::filter_stream`].
    pub fn filter_stream_into(&mut self, stream: &[u8], out: &mut Vec<bool>) {
        self.try_filter_stream_into(stream, out)
            .expect("shard double fault: primary lane and model retry both failed");
    }

    /// Fallible form of [`ShardedRunner::filter_stream`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShardFailed`] on a shard double fault;
    /// [`RuntimeError::Compile`] if a lane cannot be compiled.
    pub fn try_filter_stream(&mut self, stream: &[u8]) -> Result<Vec<bool>, RuntimeError> {
        let mut out = Vec::new();
        self.try_filter_stream_into(stream, &mut out)?;
        Ok(out)
    }

    /// Fallible, allocation-reusing form of
    /// [`ShardedRunner::filter_stream`]: appends one decision per record
    /// to `out` (which is left with this call's decisions removed again
    /// on error).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedRunner::try_filter_stream`].
    pub fn try_filter_stream_into(
        &mut self,
        stream: &[u8],
        out: &mut Vec<bool>,
    ) -> Result<(), RuntimeError> {
        let mut verdicts = Vec::new();
        self.filter_stream_verdicts_into(stream, IngestLimits::UNLIMITED, &mut verdicts)?;
        out.extend(verdicts.iter().map(Verdict::matched));
        Ok(())
    }

    /// Quarantine-aware parallel stream filtering: one [`Verdict`] per
    /// record, in input order, with [`IngestLimits`] applied exactly as
    /// the serial [`FilterBackend::filter_stream_verdicts`] path applies
    /// them (the record-length limit per record, the record budget
    /// globally across all shards).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedRunner::try_filter_stream`].
    pub fn filter_stream_verdicts(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
    ) -> Result<Vec<Verdict>, RuntimeError> {
        let mut out = Vec::new();
        self.filter_stream_verdicts_into(stream, limits, &mut out)?;
        Ok(out)
    }

    /// Allocation-reusing form of
    /// [`ShardedRunner::filter_stream_verdicts`]. On error, `out` is
    /// restored to its length at entry (no partial output).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedRunner::try_filter_stream`].
    pub fn filter_stream_verdicts_into(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
        out: &mut Vec<Verdict>,
    ) -> Result<(), RuntimeError> {
        let base = out.len();
        let result = self.run_resilient(stream, limits, out);
        if result.is_err() {
            out.truncate(base);
        }
        result
    }

    /// The resilient driver behind every stream API: fan out, catch
    /// faults, retry failed shards on the reference backend, reassemble.
    fn run_resilient(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
        out: &mut Vec<Verdict>,
    ) -> Result<(), RuntimeError> {
        let ranges = self.plan(stream);
        self.ensure_lanes(ranges.len().max(1))?;
        // Record length is a per-record property the lanes apply
        // locally; the record budget is a *stream* property applied
        // globally after reassembly (a lane cannot know how many
        // records precede its shard).
        let lane_limits = IngestLimits {
            max_record_bytes: limits.max_record_bytes,
            max_records: None,
        };
        let base = out.len();
        if ranges.len() <= 1 {
            // Serial fast path: no threads for one (or zero) shards —
            // but the same fault ladder.
            if let Some(r) = ranges.first() {
                let shard = &stream[r.clone()];
                let v = match run_lane(&mut self.lanes[0], shard, lane_limits) {
                    Ok(v) => v,
                    Err(Fault) => {
                        self.heal_lane(0);
                        let expected = split_records(shard).count();
                        self.retry_shard(0, 0, shard, lane_limits, expected)?
                    }
                };
                metrics::metrics().shard_records.record(v.len() as u64);
                out.extend_from_slice(&v);
            }
        } else {
            let results = fan_out(&mut self.lanes, stream, &ranges, |lane, shard| {
                run_lane(lane, shard, lane_limits)
            });
            // Shards are spawned (and joined) in stream order, so plain
            // concatenation reassembles the verdicts in input order;
            // failed shards are retried serially on the reference lane.
            let mut record_base = 0;
            for (shard_idx, (result, range)) in results.into_iter().zip(&ranges).enumerate() {
                let shard = &stream[range.clone()];
                let expected = split_records(shard).count();
                let v = match result {
                    Ok(v) => v,
                    Err(Fault) => {
                        self.heal_lane(shard_idx);
                        self.retry_shard(shard_idx, record_base, shard, lane_limits, expected)?
                    }
                };
                metrics::metrics().shard_records.record(v.len() as u64);
                out.extend_from_slice(&v);
                record_base += expected;
            }
        }
        // Apply the global record budget: every verdict past the limit
        // is overwritten, exactly as the serial quarantine path reports
        // it (record-count quarantine wins over length quarantine).
        if let Some(m) = limits.max_records {
            for v in out[base..].iter_mut().skip(m) {
                *v = Verdict::Skipped(SkipReason::RecordLimit { limit: m });
            }
        }
        let m = metrics::metrics();
        m.streams.incr();
        m.bytes.add(stream.len() as u64);
        metrics::record_shard_plan(&ranges);
        let (mut matched, mut unmatched, mut too_long, mut over_budget) = (0u64, 0u64, 0u64, 0u64);
        for v in &out[base..] {
            match v {
                Verdict::Match => matched += 1,
                Verdict::NoMatch => unmatched += 1,
                Verdict::Skipped(SkipReason::TooLong { .. }) => too_long += 1,
                // Catch-all keeps records == matched + unmatched +
                // skipped.* exact even if SkipReason grows a variant.
                Verdict::Skipped(_) => over_budget += 1,
            }
        }
        m.records.add(matched + unmatched + too_long + over_budget);
        m.matched.add(matched);
        m.unmatched.add(unmatched);
        m.skipped_too_long.add(too_long);
        m.skipped_record_limit.add(over_budget);
        Ok(())
    }

    /// Compiles missing lanes. A panic during lane compilation is
    /// reported as a [`CompileError::Backend`], never propagated.
    fn ensure_lanes(&mut self, n: usize) -> Result<(), RuntimeError> {
        while self.lanes.len() < n {
            let expr = &self.expr;
            let lane =
                catch_unwind(AssertUnwindSafe(|| B::try_compile(expr))).unwrap_or_else(|_| {
                    Err(CompileError::Backend {
                        backend: "shard lane",
                        reason: "panicked during compilation".into(),
                    })
                })?;
            self.lanes.push(lane);
        }
        Ok(())
    }

    /// Replaces a lane whose state is suspect after a caught fault. If
    /// recompilation itself fails, the old lane is kept: every stream
    /// driver resets its lanes at stream start, and a still-broken lane
    /// simply fails (and is retried) again on its next use.
    fn heal_lane(&mut self, i: usize) {
        metrics::metrics().lane_heals.incr();
        let expr = &self.expr;
        if let Ok(Ok(fresh)) = catch_unwind(AssertUnwindSafe(|| B::try_compile(expr))) {
            self.lanes[i] = fresh;
        }
    }

    /// Second rung of the degradation ladder: re-runs one failed shard
    /// serially on the reference backend `R`. A failure here is the
    /// **double fault** that ends the ladder with a structured error.
    fn retry_shard(
        &mut self,
        shard_idx: usize,
        record_base: usize,
        shard: &[u8],
        limits: IngestLimits,
        expected: usize,
    ) -> Result<Vec<Verdict>, RuntimeError> {
        metrics::metrics().retries.incr();
        let failed = || {
            metrics::metrics().double_faults.incr();
            RuntimeError::ShardFailed {
                shard: shard_idx,
                records: record_base..record_base + expected,
            }
        };
        if self.retry_lane.is_none() {
            let expr = &self.expr;
            match catch_unwind(AssertUnwindSafe(|| R::try_compile(expr))) {
                Ok(Ok(lane)) => self.retry_lane = Some(lane),
                _ => return Err(failed()),
            }
        }
        let lane = self.retry_lane.as_mut().expect("compiled above");
        match run_lane(lane, shard, limits) {
            Ok(v) => Ok(v),
            Err(Fault) => {
                // The retry lane's state is suspect too: drop it so the
                // next failure starts from a fresh compile.
                self.retry_lane = None;
                Err(failed())
            }
        }
    }
}

/// Marker for a caught lane fault (panic or wrong-length output).
struct Fault;

/// The shared fan-out step: one scoped thread per (lane, shard) pair,
/// results collected in stream order. A join error would mean a panic
/// escaped the lane's own `catch_unwind`, so it degrades to the same
/// lane [`Fault`] rather than propagating.
fn fan_out<L, V, F>(
    lanes: &mut [L],
    stream: &[u8],
    ranges: &[Range<usize>],
    run: F,
) -> Vec<Result<V, Fault>>
where
    L: Send,
    V: Send,
    F: Fn(&mut L, &[u8]) -> Result<V, Fault> + Sync,
{
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = lanes
            .iter_mut()
            .zip(ranges.iter().cloned())
            .map(|(lane, range)| {
                let shard = &stream[range];
                scope.spawn(move || run(lane, shard))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(Fault)))
            .collect()
    })
}

/// Effective shard count for a stream of `stream_len` bytes under
/// `config` (requested lanes capped by the minimum worthwhile shard
/// size).
fn effective_shards(config: RunnerConfig, stream_len: usize) -> usize {
    let requested = config
        .shards
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1);
    let cap = (stream_len / config.min_shard_bytes.max(1)).max(1);
    requested.min(cap)
}

/// A **fused multi-query plan** replicated across threads over
/// record-aligned shards — the multi-query form of [`ShardedRunner`],
/// where every sharded lane carries one whole
/// [`MultiBackend`](rfjson_core::multi::MultiBackend) batch (one shared
/// scan answering all N queries for its slice of the stream) instead of
/// a single filter.
///
/// The fault-tolerance ladder is identical: every lane runs under
/// `catch_unwind`, a failed or wrong-length shard heals its lane and
/// retries serially on the reference batch backend `R` (independent
/// [`MultiLanes`] over the [`CompiledFilter`] model by default), and
/// only a double fault surfaces as [`RuntimeError::ShardFailed`]. The
/// global record budget is applied after reassembly via
/// [`BatchVerdicts::quarantine_from`], byte-identically to the serial
/// batch driver's precedence rules.
#[derive(Debug, Clone)]
pub struct MultiShardedRunner<M: MultiBackend + Send, R: MultiBackend = MultiLanes<CompiledFilter>>
{
    exprs: Vec<Expr>,
    config: RunnerConfig,
    /// Cached per-shard fused lanes, grown on demand and healed
    /// (recompiled) after a caught fault, exactly as in
    /// [`ShardedRunner`].
    lanes: Vec<M>,
    /// Lazily compiled serial retry batch (dropped again if it faults).
    retry_lane: Option<R>,
}

impl<M: MultiBackend + Send, R: MultiBackend> MultiShardedRunner<M, R> {
    /// Runner with the default configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or an invalid expression — use
    /// [`MultiShardedRunner::try_new`] for user-supplied batches.
    pub fn new(exprs: &[Expr]) -> Self {
        Self::with_config(exprs, RunnerConfig::default())
    }

    /// Fallible form of [`MultiShardedRunner::new`].
    ///
    /// # Errors
    ///
    /// [`CompileError::Backend`] for an empty batch;
    /// [`CompileError::InvalidExpr`] for an ill-formed expression.
    pub fn try_new(exprs: &[Expr]) -> Result<Self, CompileError> {
        Self::try_with_config(exprs, RunnerConfig::default())
    }

    /// Runner with an explicit shard count (no minimum-size cap).
    ///
    /// # Panics
    ///
    /// Same contract as [`MultiShardedRunner::new`].
    pub fn with_shards(exprs: &[Expr], shards: usize) -> Self {
        Self::with_config(
            exprs,
            RunnerConfig {
                shards: Some(shards),
                min_shard_bytes: 1,
            },
        )
    }

    /// Fallible form of [`MultiShardedRunner::with_shards`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiShardedRunner::try_new`].
    pub fn try_with_shards(exprs: &[Expr], shards: usize) -> Result<Self, CompileError> {
        Self::try_with_config(
            exprs,
            RunnerConfig {
                shards: Some(shards),
                min_shard_bytes: 1,
            },
        )
    }

    /// Runner with full configuration control.
    ///
    /// # Panics
    ///
    /// Same contract as [`MultiShardedRunner::new`].
    pub fn with_config(exprs: &[Expr], config: RunnerConfig) -> Self {
        Self::try_with_config(exprs, config).expect("batch must be non-empty and well-formed")
    }

    /// Fallible form of [`MultiShardedRunner::with_config`]: no public
    /// constructor of this runner panics on user input.
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiShardedRunner::try_new`].
    pub fn try_with_config(exprs: &[Expr], config: RunnerConfig) -> Result<Self, CompileError> {
        if exprs.is_empty() {
            return Err(CompileError::Backend {
                backend: "multi shard lane",
                reason: "a batch needs at least one query".into(),
            });
        }
        for expr in exprs {
            expr.validate()?;
        }
        Ok(MultiShardedRunner {
            exprs: exprs.to_vec(),
            config,
            lanes: Vec::new(),
            retry_lane: None,
        })
    }

    /// The batch's source expressions, in query order.
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.exprs.len()
    }

    /// The runner's configuration.
    pub fn config(&self) -> RunnerConfig {
        self.config
    }

    /// Effective shard count for a stream of `stream_len` bytes.
    pub fn shards_for(&self, stream_len: usize) -> usize {
        effective_shards(self.config, stream_len)
    }

    /// The record-aligned ranges a call over `stream` would fan out to.
    pub fn plan(&self, stream: &[u8]) -> Vec<Range<usize>> {
        shard_ranges(stream, self.shards_for(stream.len()))
    }

    /// Filters a newline-delimited stream against the whole batch,
    /// returning per-record verdict bitsets in input order —
    /// byte-identical to the serial
    /// [`MultiBackend::filter_stream_verdicts`] of the same backend.
    ///
    /// # Panics
    ///
    /// Panics only on a shard double fault; use
    /// [`MultiShardedRunner::filter_stream_verdicts`] to handle that as
    /// a value.
    pub fn filter_stream(&mut self, stream: &[u8]) -> BatchVerdicts {
        self.filter_stream_verdicts(stream, IngestLimits::UNLIMITED)
            .expect("shard double fault: primary lane and batch retry both failed")
    }

    /// Quarantine-aware parallel batch filtering: per-record verdict
    /// bitsets with [`IngestLimits`] applied exactly as the serial batch
    /// driver applies them (record-length per record on each lane, the
    /// record budget globally after reassembly).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShardFailed`] on a shard double fault;
    /// [`RuntimeError::Compile`] if a lane cannot be compiled.
    pub fn filter_stream_verdicts(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
    ) -> Result<BatchVerdicts, RuntimeError> {
        let ranges = self.plan(stream);
        self.ensure_lanes(ranges.len().max(1))?;
        let lane_limits = IngestLimits {
            max_record_bytes: limits.max_record_bytes,
            max_records: None,
        };
        let mut out = BatchVerdicts::new(self.exprs.len());
        if ranges.len() <= 1 {
            if let Some(r) = ranges.first() {
                let shard = &stream[r.clone()];
                let v = match run_multi_lane(&mut self.lanes[0], shard, lane_limits) {
                    Ok(v) => v,
                    Err(Fault) => {
                        self.heal_lane(0);
                        let expected = split_records(shard).count();
                        self.retry_shard(0, 0, shard, lane_limits, expected)?
                    }
                };
                metrics::metrics()
                    .shard_records
                    .record(v.num_records() as u64);
                out.append(&v);
            }
        } else {
            let results = fan_out(&mut self.lanes, stream, &ranges, |lane, shard| {
                run_multi_lane(lane, shard, lane_limits)
            });
            let mut record_base = 0;
            for (shard_idx, (result, range)) in results.into_iter().zip(&ranges).enumerate() {
                let shard = &stream[range.clone()];
                let expected = split_records(shard).count();
                let v = match result {
                    Ok(v) => v,
                    Err(Fault) => {
                        self.heal_lane(shard_idx);
                        self.retry_shard(shard_idx, record_base, shard, lane_limits, expected)?
                    }
                };
                metrics::metrics()
                    .shard_records
                    .record(v.num_records() as u64);
                out.append(&v);
                record_base += expected;
            }
        }
        // Global record budget after reassembly: the overwrite gives the
        // record-count quarantine precedence over per-lane length
        // quarantine, exactly as the serial driver orders its checks.
        if let Some(m) = limits.max_records {
            out.quarantine_from(m, SkipReason::RecordLimit { limit: m });
        }
        let m = metrics::metrics();
        m.streams.incr();
        m.bytes.add(stream.len() as u64);
        metrics::record_shard_plan(&ranges);
        let (mut matched, mut unmatched, mut too_long, mut over_budget) = (0u64, 0u64, 0u64, 0u64);
        for r in 0..out.num_records() {
            match out.skip(r) {
                Some(SkipReason::TooLong { .. }) => too_long += 1,
                // Catch-all keeps records == matched + unmatched +
                // skipped.* exact even if SkipReason grows a variant.
                Some(_) => over_budget += 1,
                // A record "matches" the batch when any query accepts it.
                None if (0..self.exprs.len()).any(|q| out.matched(r, q)) => matched += 1,
                None => unmatched += 1,
            }
        }
        m.records.add(matched + unmatched + too_long + over_budget);
        m.matched.add(matched);
        m.unmatched.add(unmatched);
        m.skipped_too_long.add(too_long);
        m.skipped_record_limit.add(over_budget);
        Ok(out)
    }

    /// Compiles missing fused lanes; a panic during batch compilation is
    /// reported as a [`CompileError::Backend`], never propagated.
    fn ensure_lanes(&mut self, n: usize) -> Result<(), RuntimeError> {
        while self.lanes.len() < n {
            let exprs = &self.exprs;
            let lane = catch_unwind(AssertUnwindSafe(|| M::try_compile_batch(exprs)))
                .unwrap_or_else(|_| {
                    Err(CompileError::Backend {
                        backend: "multi shard lane",
                        reason: "panicked during compilation".into(),
                    })
                })?;
            self.lanes.push(lane);
        }
        Ok(())
    }

    /// Replaces a fused lane whose state is suspect after a caught
    /// fault (same keep-on-recompile-failure policy as
    /// [`ShardedRunner`]).
    fn heal_lane(&mut self, i: usize) {
        metrics::metrics().lane_heals.incr();
        let exprs = &self.exprs;
        if let Ok(Ok(fresh)) = catch_unwind(AssertUnwindSafe(|| M::try_compile_batch(exprs))) {
            self.lanes[i] = fresh;
        }
    }

    /// Serial retry of one failed shard on the reference batch backend
    /// `R`; a failure here is the double fault.
    fn retry_shard(
        &mut self,
        shard_idx: usize,
        record_base: usize,
        shard: &[u8],
        limits: IngestLimits,
        expected: usize,
    ) -> Result<BatchVerdicts, RuntimeError> {
        metrics::metrics().retries.incr();
        let failed = || {
            metrics::metrics().double_faults.incr();
            RuntimeError::ShardFailed {
                shard: shard_idx,
                records: record_base..record_base + expected,
            }
        };
        if self.retry_lane.is_none() {
            let exprs = &self.exprs;
            match catch_unwind(AssertUnwindSafe(|| R::try_compile_batch(exprs))) {
                Ok(Ok(lane)) => self.retry_lane = Some(lane),
                _ => return Err(failed()),
            }
        }
        let lane = self.retry_lane.as_mut().expect("compiled above");
        match run_multi_lane(lane, shard, limits) {
            Ok(v) => Ok(v),
            Err(Fault) => {
                self.retry_lane = None;
                Err(failed())
            }
        }
    }
}

/// Runs one fused lane over one shard under [`catch_unwind`],
/// validating the record count against the shard's framing — the batch
/// form of [`run_lane`].
fn run_multi_lane<M: MultiBackend>(
    lane: &mut M,
    shard: &[u8],
    limits: IngestLimits,
) -> Result<BatchVerdicts, Fault> {
    let verdicts = catch_unwind(AssertUnwindSafe(|| {
        lane.filter_stream_verdicts(shard, limits)
    }))
    .map_err(|_| Fault)?;
    if verdicts.num_records() == split_records(shard).count() {
        Ok(verdicts)
    } else {
        Err(Fault)
    }
}

/// Runs one lane over one shard under [`catch_unwind`], validating the
/// verdict count against the shard's record count — a panicking lane and
/// a lane that returns the wrong number of verdicts are the same fault.
fn run_lane<B: FilterBackend>(
    lane: &mut B,
    shard: &[u8],
    limits: IngestLimits,
) -> Result<Vec<Verdict>, Fault> {
    let verdicts = catch_unwind(AssertUnwindSafe(|| {
        lane.filter_stream_verdicts(shard, limits)
    }))
    .map_err(|_| Fault)?;
    if verdicts.len() == split_records(shard).count() {
        Ok(verdicts)
    } else {
        Err(Fault)
    }
}

/// One-shot convenience: filter `stream` with backend `B` across
/// `shards` lanes.
///
/// ```
/// use rfjson_core::{Engine, Expr};
/// use rfjson_runtime::filter_stream_sharded;
///
/// let expr = Expr::int_range(1, 5);
/// let decisions = filter_stream_sharded::<Engine>(&expr, b"{\"a\":3}\n{\"a\":9}", 8);
/// assert_eq!(decisions, vec![true, false]);
/// ```
pub fn filter_stream_sharded<B: FilterBackend + Send>(
    expr: &Expr,
    stream: &[u8],
    shards: usize,
) -> Vec<bool> {
    ShardedRunner::<B>::with_shards(expr, shards).filter_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_core::{CompiledFilter, Engine, FilterBackend};

    fn ctx_expr() -> Expr {
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ])
    }

    fn serial_engine(expr: &Expr, stream: &[u8]) -> Vec<bool> {
        Engine::compile(expr).filter_stream(stream)
    }

    /// Sharded output must equal the serial engine AND the serial model
    /// for every shard count under test.
    fn assert_sharded_equals_serial(expr: &Expr, stream: &[u8]) {
        let engine = serial_engine(expr, stream);
        let model = CompiledFilter::compile(expr).filter_stream(stream);
        assert_eq!(engine, model, "serial paths disagree before sharding");
        for shards in [1, 2, 3, 8] {
            let parallel = filter_stream_sharded::<Engine>(expr, stream, shards);
            assert_eq!(parallel, engine, "shards={shards}");
        }
    }

    #[test]
    fn record_spanning_a_shard_split_point() {
        // One long record dominates the stream: the ideal cut for 2
        // shards lands mid-record, and the splitter must push the cut to
        // the record's end instead of splitting it.
        let long = format!(
            "{{\"n\":\"temperature\",\"pad\":\"{}\",\"v\":\"21.0\"}}",
            "x".repeat(400)
        );
        let stream = format!("{long}\n{{\"n\":\"temperature\",\"v\":\"21.0\"}}\n");
        let runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&ctx_expr(), 2);
        let plan = runner.plan(stream.as_bytes());
        assert!(
            plan.iter().all(|r| stream.as_bytes()[r.end - 1] == b'\n'),
            "cuts must land after newlines: {plan:?}"
        );
        assert_sharded_equals_serial(&ctx_expr(), stream.as_bytes());
    }

    #[test]
    fn crlf_at_split_point() {
        // CRLF-terminated records sized so cuts land around the \r\n.
        let stream = b"{\"a\":3}\r\n{\"a\":9}\r\n{\"a\":4}\r\n{\"a\":2}\r\n".repeat(5);
        assert_sharded_equals_serial(&Expr::int_range(1, 5), &stream);
    }

    #[test]
    fn blank_lines_and_cr_debris() {
        let stream: &[u8] = b"\n\n{\"a\":3}\r\n\r\n\r\r\n{\"a\":9}\n\n\n{\"a\":4}\n";
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
    }

    #[test]
    fn trailing_record_without_newline() {
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":9}\n{\"a\":4}";
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
        // The trailing record must land in the last shard untouched.
        let runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&Expr::int_range(1, 5), 3);
        let plan = runner.plan(stream);
        assert_eq!(plan.last().unwrap().end, stream.len());
    }

    #[test]
    fn empty_input() {
        for shards in [1, 2, 8] {
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), b"", shards).is_empty()
            );
        }
    }

    #[test]
    fn shard_count_exceeds_record_count() {
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":9}\n";
        let parallel = filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), stream, 64);
        assert_eq!(parallel, vec![true, false]);
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
    }

    #[test]
    fn model_backend_shards_identically() {
        let stream = b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\n".repeat(9);
        let serial = CompiledFilter::compile(&ctx_expr()).filter_stream(&stream);
        for shards in [1, 2, 3, 8] {
            assert_eq!(
                filter_stream_sharded::<CompiledFilter>(&ctx_expr(), &stream, shards),
                serial
            );
        }
    }

    #[test]
    fn blank_lines_only_buffer() {
        // Nothing but separators: zero records, so zero decisions — and
        // the shard planner must not produce empty or overlapping cuts.
        let stream: &[u8] = b"\n\n\r\n\n\r\n\n\n\n\r\n\n";
        for shards in [1, 2, 3, 16] {
            let ranges = shard_ranges(stream, shards);
            assert!(!ranges.is_empty(), "non-empty buffer always has a range");
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, stream.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous: {ranges:?}");
                assert!(!pair[0].is_empty(), "no empty shard: {ranges:?}");
            }
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), stream, shards).is_empty(),
                "blank lines produce no decisions"
            );
        }
    }

    #[test]
    fn single_record_larger_than_min_shard_bytes() {
        // One separator-free record far bigger than min_shard_bytes:
        // the planner is allowed multiple shards by the size cap, but
        // there is no cut point — the record must stay whole in one
        // shard and produce exactly one decision.
        let record = format!("{{\"a\":3,\"pad\":\"{}\"}}", "x".repeat(4096));
        let stream = record.as_bytes();
        let ranges = shard_ranges(stream, 8);
        assert_eq!(ranges, vec![0..stream.len()], "no separator, no cut");
        let mut runner: ShardedRunner<Engine> = ShardedRunner::with_config(
            &Expr::int_range(1, 5),
            RunnerConfig {
                shards: Some(8),
                min_shard_bytes: 64,
            },
        );
        assert!(
            runner.shards_for(stream.len()) > 1,
            "cap alone allows fanout"
        );
        assert_eq!(runner.plan(stream).len(), 1, "but the plan cannot cut");
        assert_eq!(runner.filter_stream(stream), vec![true]);
    }

    #[test]
    fn crlf_only_buffer() {
        // Pure "\r\n" repetitions: every line is blank, the CRs are
        // debris. No decisions, and cuts (if any) land after the LFs.
        let stream = b"\r\n".repeat(7);
        for shards in [1, 2, 5] {
            let ranges = shard_ranges(&stream, shards);
            assert_eq!(ranges.last().unwrap().end, stream.len());
            for r in &ranges {
                assert!(r.is_empty() || stream[r.end - 1] == b'\n', "{ranges:?}");
            }
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), &stream, shards).is_empty()
            );
        }
        assert_sharded_equals_serial(&Expr::int_range(1, 5), &stream);
    }

    #[test]
    fn min_shard_bytes_caps_fanout() {
        let runner: ShardedRunner<Engine> = ShardedRunner::with_config(
            &Expr::int_range(1, 5),
            RunnerConfig {
                shards: Some(8),
                min_shard_bytes: 1024,
            },
        );
        assert_eq!(runner.shards_for(100), 1, "tiny stream stays serial");
        assert_eq!(
            runner.shards_for(4096),
            4,
            "mid-size stream caps at len/min"
        );
        assert_eq!(runner.shards_for(1 << 20), 8, "big stream uses all shards");
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let runner: ShardedRunner<Engine> = ShardedRunner::new(&Expr::int_range(1, 5));
        let n = runner.shards_for(usize::MAX);
        assert!(n >= 1);
        assert_eq!(runner.config(), RunnerConfig::default());
    }

    mod multi {
        use super::*;
        use rfjson_core::multi::{MultiBackend, MultiEngine};

        fn batch() -> Vec<Expr> {
            vec![
                ctx_expr(),
                Expr::and([
                    Expr::substring(b"humidity", 1).unwrap(),
                    Expr::int_range(10, 90),
                ]),
                Expr::int_range(1, 5),
            ]
        }

        fn corpus() -> Vec<u8> {
            let mut s = Vec::new();
            for _ in 0..6 {
                s.extend_from_slice(b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\n");
                s.extend_from_slice(b"{\"n\":\"humidity\",\"v\":\"55\"}\r\n");
                s.extend_from_slice(b"\n{\"a\":3}\n{\"a\":9}\n");
            }
            s.extend_from_slice(b"{\"n\":\"humidity\",\"v\":\"42\"}");
            s
        }

        #[test]
        fn sharded_fused_equals_serial_fused_and_single_engines() {
            let exprs = batch();
            let stream = corpus();
            let serial = MultiEngine::compile_batch(&exprs)
                .filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
            for shards in [1, 2, 3, 8] {
                let mut runner: MultiShardedRunner<MultiEngine> =
                    MultiShardedRunner::with_shards(&exprs, shards);
                assert_eq!(runner.filter_stream(&stream), serial, "shards={shards}");
            }
            for (q, expr) in exprs.iter().enumerate() {
                let single =
                    Engine::compile(expr).filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
                assert_eq!(serial.query_verdicts(q), single, "query {q}");
            }
        }

        #[test]
        fn quarantine_agrees_at_every_shard_count() {
            let exprs = batch();
            let stream = corpus();
            let limits = IngestLimits {
                max_record_bytes: Some(30),
                max_records: Some(10),
            };
            let serial = MultiEngine::compile_batch(&exprs).filter_stream_verdicts(&stream, limits);
            for shards in [1, 2, 3, 8] {
                let mut runner: MultiShardedRunner<MultiEngine> =
                    MultiShardedRunner::with_shards(&exprs, shards);
                let got = runner.filter_stream_verdicts(&stream, limits).unwrap();
                assert_eq!(got, serial, "shards={shards}");
            }
        }

        #[test]
        fn empty_batch_is_a_compile_error() {
            assert!(matches!(
                MultiShardedRunner::<MultiEngine>::try_with_shards(&[], 2),
                Err(CompileError::Backend { .. })
            ));
        }
    }
}

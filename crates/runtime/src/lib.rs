//! # rfjson-runtime — sharded parallel streaming runtime
//!
//! The paper scales raw filtering by **replicating identical filter
//! lanes**: each hardware lane consumes its slice of the byte stream and
//! DMAs back one match bit per record (§IV-B). This crate is the
//! software form of that scaling step, built directly on the
//! [`FilterBackend`] seam of `rfjson-core`:
//!
//! 1. the input buffer is split at **record boundaries** into per-thread
//!    shards ([`rfjson_jsonstream::frame::shard_ranges`] — every cut
//!    lands immediately after a `\n`, so each shard is a self-contained
//!    NDJSON sub-stream);
//! 2. one backend instance per shard runs on a scoped thread
//!    (`std::thread::scope` — no `unsafe`, no extra dependencies);
//! 3. the per-shard decision vectors are reassembled in input order.
//!
//! Because the serial path resets the filter right after every `\n`,
//! a freshly compiled backend at a shard start is in **exactly** the
//! state the serial filter would be in at that offset — so the sharded
//! decisions are byte-for-byte identical to the serial ones, for any
//! backend and any shard count. The differential tests in this crate
//! and in the root crate (`tests/parallel_diff.rs`) hold that equality
//! at shard counts {1, 2, 3, 8} over generated corpora.
//!
//! ```
//! use rfjson_core::{Engine, Expr};
//! use rfjson_runtime::ShardedRunner;
//!
//! let expr = Expr::and([Expr::substring(b"humidity", 1)?, Expr::int_range(10, 90)]);
//! let stream = b"{\"n\":\"humidity\",\"v\":\"55\"}\n{\"n\":\"humidity\",\"v\":\"95\"}\n";
//!
//! let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&expr, 2);
//! assert_eq!(runner.filter_stream(stream), vec![true, false]);
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```
//!
//! This is the architectural seam future scaling work (async ingest,
//! multi-query sharing, real hardware offload) plugs into: anything that
//! implements [`FilterBackend`] is sharded for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rfjson_core::backend::FilterBackend;
use rfjson_core::expr::Expr;
use rfjson_jsonstream::frame::shard_ranges;
use std::ops::Range;

/// How a [`ShardedRunner`] divides work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of shards (thread lanes). `None` uses
    /// [`std::thread::available_parallelism`].
    pub shards: Option<usize>,
    /// Inputs smaller than this per shard are not worth a thread: the
    /// effective shard count is capped at `stream_len / min_shard_bytes`
    /// (at least 1), so small streams run serially with zero spawn
    /// overhead.
    pub min_shard_bytes: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            shards: None,
            min_shard_bytes: 64 * 1024,
        }
    }
}

/// A raw filter replicated across threads over record-aligned shards of
/// the input — the software analogue of the paper's parallel RF lanes.
///
/// The runner is generic over the backend: `ShardedRunner<Engine>` for
/// bulk throughput, `ShardedRunner<CompiledFilter>` for the
/// cosim-faithful model, or any future [`FilterBackend`]. Backend
/// lanes are compiled lazily on first use and **cached across calls**,
/// so a long-lived runner pays compilation once, not per stream.
#[derive(Debug, Clone)]
pub struct ShardedRunner<B: FilterBackend> {
    expr: Expr,
    config: RunnerConfig,
    /// Cached per-shard backend lanes, grown on demand (lane `i` serves
    /// shard `i`; every lane is reset at the start of each stream by
    /// the backend's own stream driver).
    lanes: Vec<B>,
}

impl<B: FilterBackend + Send> ShardedRunner<B> {
    /// Runner with the default configuration (one shard per available
    /// core, 64 KiB minimum shard size).
    ///
    /// # Panics
    ///
    /// Panics if the expression fails validation (same contract as
    /// [`FilterBackend::compile`]).
    pub fn new(expr: &Expr) -> Self {
        Self::with_config(expr, RunnerConfig::default())
    }

    /// Runner with an explicit shard count (no minimum-size cap) —
    /// what the differential tests use to pin lane counts.
    pub fn with_shards(expr: &Expr, shards: usize) -> Self {
        Self::with_config(
            expr,
            RunnerConfig {
                shards: Some(shards),
                min_shard_bytes: 1,
            },
        )
    }

    /// Runner with full configuration control.
    pub fn with_config(expr: &Expr, config: RunnerConfig) -> Self {
        expr.validate().expect("expression must be well-formed");
        ShardedRunner {
            expr: expr.clone(),
            config,
            lanes: Vec::new(),
        }
    }

    /// The source expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The runner's configuration.
    pub fn config(&self) -> RunnerConfig {
        self.config
    }

    /// Effective shard count for a stream of `stream_len` bytes.
    pub fn shards_for(&self, stream_len: usize) -> usize {
        let requested = self
            .config
            .shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .max(1);
        let cap = (stream_len / self.config.min_shard_bytes.max(1)).max(1);
        requested.min(cap)
    }

    /// The record-aligned ranges a call over `stream` would fan out to.
    pub fn plan(&self, stream: &[u8]) -> Vec<Range<usize>> {
        shard_ranges(stream, self.shards_for(stream.len()))
    }

    /// Filters a newline-delimited stream, returning per-record accept
    /// decisions in input order — byte-for-byte identical to the serial
    /// [`FilterBackend::filter_stream`] of the same backend.
    pub fn filter_stream(&mut self, stream: &[u8]) -> Vec<bool> {
        let mut out = Vec::new();
        self.filter_stream_into(stream, &mut out);
        out
    }

    /// Allocation-reusing form of [`ShardedRunner::filter_stream`]:
    /// appends one decision per record to `out`.
    pub fn filter_stream_into(&mut self, stream: &[u8], out: &mut Vec<bool>) {
        let ranges = self.plan(stream);
        while self.lanes.len() < ranges.len().max(1) {
            self.lanes.push(B::compile(&self.expr));
        }
        if ranges.len() <= 1 {
            // Serial fast path: no threads for one (or zero) shards.
            if let Some(r) = ranges.first() {
                self.lanes[0].filter_stream_into(&stream[r.clone()], out);
            }
            return;
        }
        let results: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .lanes
                .iter_mut()
                .zip(ranges.iter().cloned())
                .map(|(lane, range)| scope.spawn(move || lane.filter_stream(&stream[range])))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        // Shards are spawned (and joined) in stream order, so plain
        // concatenation reassembles the decision vector in input order.
        for shard_decisions in &results {
            out.extend_from_slice(shard_decisions);
        }
    }
}

/// One-shot convenience: filter `stream` with backend `B` across
/// `shards` lanes.
///
/// ```
/// use rfjson_core::{Engine, Expr};
/// use rfjson_runtime::filter_stream_sharded;
///
/// let expr = Expr::int_range(1, 5);
/// let decisions = filter_stream_sharded::<Engine>(&expr, b"{\"a\":3}\n{\"a\":9}", 8);
/// assert_eq!(decisions, vec![true, false]);
/// ```
pub fn filter_stream_sharded<B: FilterBackend + Send>(
    expr: &Expr,
    stream: &[u8],
    shards: usize,
) -> Vec<bool> {
    ShardedRunner::<B>::with_shards(expr, shards).filter_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_core::{CompiledFilter, Engine, FilterBackend};

    fn ctx_expr() -> Expr {
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ])
    }

    fn serial_engine(expr: &Expr, stream: &[u8]) -> Vec<bool> {
        Engine::compile(expr).filter_stream(stream)
    }

    /// Sharded output must equal the serial engine AND the serial model
    /// for every shard count under test.
    fn assert_sharded_equals_serial(expr: &Expr, stream: &[u8]) {
        let engine = serial_engine(expr, stream);
        let model = CompiledFilter::compile(expr).filter_stream(stream);
        assert_eq!(engine, model, "serial paths disagree before sharding");
        for shards in [1, 2, 3, 8] {
            let parallel = filter_stream_sharded::<Engine>(expr, stream, shards);
            assert_eq!(parallel, engine, "shards={shards}");
        }
    }

    #[test]
    fn record_spanning_a_shard_split_point() {
        // One long record dominates the stream: the ideal cut for 2
        // shards lands mid-record, and the splitter must push the cut to
        // the record's end instead of splitting it.
        let long = format!(
            "{{\"n\":\"temperature\",\"pad\":\"{}\",\"v\":\"21.0\"}}",
            "x".repeat(400)
        );
        let stream = format!("{long}\n{{\"n\":\"temperature\",\"v\":\"21.0\"}}\n");
        let runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&ctx_expr(), 2);
        let plan = runner.plan(stream.as_bytes());
        assert!(
            plan.iter().all(|r| stream.as_bytes()[r.end - 1] == b'\n'),
            "cuts must land after newlines: {plan:?}"
        );
        assert_sharded_equals_serial(&ctx_expr(), stream.as_bytes());
    }

    #[test]
    fn crlf_at_split_point() {
        // CRLF-terminated records sized so cuts land around the \r\n.
        let stream = b"{\"a\":3}\r\n{\"a\":9}\r\n{\"a\":4}\r\n{\"a\":2}\r\n".repeat(5);
        assert_sharded_equals_serial(&Expr::int_range(1, 5), &stream);
    }

    #[test]
    fn blank_lines_and_cr_debris() {
        let stream: &[u8] = b"\n\n{\"a\":3}\r\n\r\n\r\r\n{\"a\":9}\n\n\n{\"a\":4}\n";
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
    }

    #[test]
    fn trailing_record_without_newline() {
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":9}\n{\"a\":4}";
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
        // The trailing record must land in the last shard untouched.
        let runner: ShardedRunner<Engine> = ShardedRunner::with_shards(&Expr::int_range(1, 5), 3);
        let plan = runner.plan(stream);
        assert_eq!(plan.last().unwrap().end, stream.len());
    }

    #[test]
    fn empty_input() {
        for shards in [1, 2, 8] {
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), b"", shards).is_empty()
            );
        }
    }

    #[test]
    fn shard_count_exceeds_record_count() {
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":9}\n";
        let parallel = filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), stream, 64);
        assert_eq!(parallel, vec![true, false]);
        assert_sharded_equals_serial(&Expr::int_range(1, 5), stream);
    }

    #[test]
    fn model_backend_shards_identically() {
        let stream = b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\n".repeat(9);
        let serial = CompiledFilter::compile(&ctx_expr()).filter_stream(&stream);
        for shards in [1, 2, 3, 8] {
            assert_eq!(
                filter_stream_sharded::<CompiledFilter>(&ctx_expr(), &stream, shards),
                serial
            );
        }
    }

    #[test]
    fn blank_lines_only_buffer() {
        // Nothing but separators: zero records, so zero decisions — and
        // the shard planner must not produce empty or overlapping cuts.
        let stream: &[u8] = b"\n\n\r\n\n\r\n\n\n\n\r\n\n";
        for shards in [1, 2, 3, 16] {
            let ranges = shard_ranges(stream, shards);
            assert!(!ranges.is_empty(), "non-empty buffer always has a range");
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, stream.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous: {ranges:?}");
                assert!(!pair[0].is_empty(), "no empty shard: {ranges:?}");
            }
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), stream, shards).is_empty(),
                "blank lines produce no decisions"
            );
        }
    }

    #[test]
    fn single_record_larger_than_min_shard_bytes() {
        // One separator-free record far bigger than min_shard_bytes:
        // the planner is allowed multiple shards by the size cap, but
        // there is no cut point — the record must stay whole in one
        // shard and produce exactly one decision.
        let record = format!("{{\"a\":3,\"pad\":\"{}\"}}", "x".repeat(4096));
        let stream = record.as_bytes();
        let ranges = shard_ranges(stream, 8);
        assert_eq!(ranges, vec![0..stream.len()], "no separator, no cut");
        let mut runner: ShardedRunner<Engine> = ShardedRunner::with_config(
            &Expr::int_range(1, 5),
            RunnerConfig {
                shards: Some(8),
                min_shard_bytes: 64,
            },
        );
        assert!(
            runner.shards_for(stream.len()) > 1,
            "cap alone allows fanout"
        );
        assert_eq!(runner.plan(stream).len(), 1, "but the plan cannot cut");
        assert_eq!(runner.filter_stream(stream), vec![true]);
    }

    #[test]
    fn crlf_only_buffer() {
        // Pure "\r\n" repetitions: every line is blank, the CRs are
        // debris. No decisions, and cuts (if any) land after the LFs.
        let stream = b"\r\n".repeat(7);
        for shards in [1, 2, 5] {
            let ranges = shard_ranges(&stream, shards);
            assert_eq!(ranges.last().unwrap().end, stream.len());
            for r in &ranges {
                assert!(r.is_empty() || stream[r.end - 1] == b'\n', "{ranges:?}");
            }
            assert!(
                filter_stream_sharded::<Engine>(&Expr::int_range(1, 5), &stream, shards).is_empty()
            );
        }
        assert_sharded_equals_serial(&Expr::int_range(1, 5), &stream);
    }

    #[test]
    fn min_shard_bytes_caps_fanout() {
        let runner: ShardedRunner<Engine> = ShardedRunner::with_config(
            &Expr::int_range(1, 5),
            RunnerConfig {
                shards: Some(8),
                min_shard_bytes: 1024,
            },
        );
        assert_eq!(runner.shards_for(100), 1, "tiny stream stays serial");
        assert_eq!(
            runner.shards_for(4096),
            4,
            "mid-size stream caps at len/min"
        );
        assert_eq!(runner.shards_for(1 << 20), 8, "big stream uses all shards");
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let runner: ShardedRunner<Engine> = ShardedRunner::new(&Expr::int_range(1, 5));
        let n = runner.shards_for(usize::MAX);
        assert!(n >= 1);
        assert_eq!(runner.config(), RunnerConfig::default());
    }
}

//! Cached handles to the global `runtime.*` metrics.
//!
//! The sharded runners tally per-stream facts (verdict counts by
//! outcome, per-shard sizes, heal/retry events) and flush them here —
//! once per stream or per fault event, never per record byte. Handles
//! resolve once per process; under `telemetry-off` every call site
//! compiles to nothing.

use rfjson_telemetry::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct RuntimeMetrics {
    /// `runtime.streams`: stream-filter calls completed (either runner).
    pub streams: &'static Counter,
    /// `runtime.records`: records reported (matched + unmatched +
    /// skipped), after the global budget.
    pub records: &'static Counter,
    /// `runtime.bytes`: stream bytes presented to the runners.
    pub bytes: &'static Counter,
    /// `runtime.matched`: records matching (any query, for batches).
    pub matched: &'static Counter,
    /// `runtime.unmatched`: scored records matching nothing.
    pub unmatched: &'static Counter,
    /// `runtime.skipped.too_long`: quarantined for record length.
    pub skipped_too_long: &'static Counter,
    /// `runtime.skipped.record_limit`: quarantined past the budget.
    pub skipped_record_limit: &'static Counter,
    /// `runtime.lane_heals`: lane recompiles after a caught fault.
    pub lane_heals: &'static Counter,
    /// `runtime.retries`: serial reference-backend retries of a shard.
    pub retries: &'static Counter,
    /// `runtime.double_faults`: retries that failed too (stream error).
    pub double_faults: &'static Counter,
    /// `runtime.shard_bytes`: per-shard byte-length distribution.
    pub shard_bytes: &'static Histogram,
    /// `runtime.shard_records`: per-shard record-count distribution.
    pub shard_records: &'static Histogram,
    /// `runtime.shard_imbalance`: `(max - min) / max` shard bytes of the
    /// most recent fanned-out stream (0 = perfectly even).
    pub shard_imbalance: &'static Gauge,
}

pub(crate) fn metrics() -> &'static RuntimeMetrics {
    static METRICS: OnceLock<RuntimeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RuntimeMetrics {
        streams: rfjson_telemetry::counter("runtime.streams"),
        records: rfjson_telemetry::counter("runtime.records"),
        bytes: rfjson_telemetry::counter("runtime.bytes"),
        matched: rfjson_telemetry::counter("runtime.matched"),
        unmatched: rfjson_telemetry::counter("runtime.unmatched"),
        skipped_too_long: rfjson_telemetry::counter("runtime.skipped.too_long"),
        skipped_record_limit: rfjson_telemetry::counter("runtime.skipped.record_limit"),
        lane_heals: rfjson_telemetry::counter("runtime.lane_heals"),
        retries: rfjson_telemetry::counter("runtime.retries"),
        double_faults: rfjson_telemetry::counter("runtime.double_faults"),
        shard_bytes: rfjson_telemetry::histogram("runtime.shard_bytes"),
        shard_records: rfjson_telemetry::histogram("runtime.shard_records"),
        shard_imbalance: rfjson_telemetry::gauge("runtime.shard_imbalance"),
    })
}

/// Records the shard-size distribution and imbalance gauge for one
/// stream's plan.
pub(crate) fn record_shard_plan(ranges: &[std::ops::Range<usize>]) {
    let m = metrics();
    let mut min = u64::MAX;
    let mut max = 0u64;
    for r in ranges {
        let len = r.len() as u64;
        m.shard_bytes.record(len);
        min = min.min(len);
        max = max.max(len);
    }
    if !ranges.is_empty() {
        let imbalance = if ranges.len() > 1 && max > 0 {
            (max - min) as f64 / max as f64
        } else {
            0.0
        };
        m.shard_imbalance.set(imbalance);
    }
}

//! Deterministic fault injection for the sharded runtime.
//!
//! The paper's RF lanes are hardware and fail like hardware: a lane dies
//! or returns garbage, and the farm must degrade one slice of the
//! stream, never the service. This module provides the software test rig
//! for that contract: [`FaultyBackend`] wraps any [`FilterBackend`] and
//! injects **deterministic, seed-driven faults** — panics or
//! wrong-length decision vectors — at configurable byte offsets or on
//! configurable byte values, so the runtime's panic-isolation and
//! retry ladder can be exercised repeatably.
//!
//! The module is compiled only under `cfg(test)` or the `fault` feature:
//! it exists to break lanes on purpose and has no place in a production
//! build.
//!
//! # Arming
//!
//! The sharded runner compiles its lanes internally, so the fault plan
//! cannot be passed through a constructor; instead a process-global plan
//! is **armed** and snapshotted by every [`FaultyBackend`] compiled
//! while it is active:
//!
//! ```
//! use rfjson_core::{Engine, Expr, FilterBackend};
//! use rfjson_runtime::fault::{FaultKind, FaultPlan, FaultyBackend, Trigger};
//!
//! // Poison byte 0x07 inside a record triggers a lane panic.
//! let _armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::Panic).arm();
//! let mut lane = FaultyBackend::<Engine>::compile(&Expr::int_range(1, 5));
//! let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
//!     lane.filter_stream(b"{\"a\":3,\"x\":\"\x07\"}\n")
//! }));
//! assert!(caught.is_err(), "the injected fault fired");
//! ```
//!
//! Arming serialises on a global lock (held by the returned [`ArmedFault`]
//! guard), so concurrent `#[test]`s using the harness do not cross-talk.

use rfjson_core::backend::{
    run_verdict_driver, CompileError, FilterBackend, IngestLimits, Verdict,
};
use rfjson_core::expr::Expr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};

/// When an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire when the lane consumes a byte with this value — the test
    /// plants a poison byte in a chosen record, which makes the fault
    /// land in the same record at every shard count.
    OnByteValue(u8),
    /// Fire when the lane consumes the byte at this 0-based offset of a
    /// single stream-driver call (each `filter_stream*` call restarts
    /// the count).
    AtOffset(u64),
}

/// What happens when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The lane panics mid-stream (`panic!` with an
    /// `"injected fault"`-marked payload).
    Panic,
    /// The lane completes but silently drops its last verdict — the
    /// wrong-length output a DMA underrun or truncated result buffer
    /// would produce.
    TruncateOutput,
    /// The lane completes but appends one spurious non-match verdict —
    /// the wrong-length output of a duplicated DMA burst.
    DuplicateOutput,
}

/// A deterministic fault to inject: trigger, kind, and an optional
/// shared fuel budget bounding how many times it may fire process-wide.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// When the fault fires.
    pub trigger: Trigger,
    /// What the fault does.
    pub kind: FaultKind,
    /// Remaining firings, shared across every lane compiled from this
    /// plan (`None` = unlimited). A transient fault (`Some(1)`) fires
    /// once and heals.
    fuel: Option<Arc<AtomicUsize>>,
}

impl FaultPlan {
    /// A plan with unlimited fuel.
    pub fn new(trigger: Trigger, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            trigger,
            kind,
            fuel: None,
        }
    }

    /// Seed-driven plan: trigger offset and fault kind are derived from
    /// `seed` by a splitmix64 step, so property tests can sweep seeds
    /// and still reproduce any failure exactly. The offset lands in
    /// `0..max_offset`.
    pub fn seeded(seed: u64, max_offset: u64) -> FaultPlan {
        let x = splitmix64(seed);
        let kind = match x % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::TruncateOutput,
            _ => FaultKind::DuplicateOutput,
        };
        FaultPlan::new(Trigger::AtOffset((x >> 2) % max_offset.max(1)), kind)
    }

    /// Bounds the plan to `n` firings process-wide (the fault then
    /// "heals" — later calls run clean).
    pub fn with_fuel(mut self, n: usize) -> FaultPlan {
        self.fuel = Some(Arc::new(AtomicUsize::new(n)));
        self
    }

    /// Arms this plan globally and returns the guard that keeps it
    /// armed. Every [`FaultyBackend`] compiled while the guard lives
    /// snapshots the plan; dropping the guard disarms it.
    pub fn arm(self) -> ArmedFault {
        let serial = ARM_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        *armed_slot() = Some(self);
        ArmedFault { _serial: serial }
    }

    /// Consumes one unit of fuel; `false` once the budget is spent.
    fn take_fuel(&self) -> bool {
        match &self.fuel {
            None => true,
            Some(fuel) => fuel
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok(),
        }
    }
}

/// One splitmix64 scrambling step (the classic finalizer constants).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static ARM_SERIAL: Mutex<()> = Mutex::new(());
static ARMED: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn armed_slot() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    ARMED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Guard returned by [`FaultPlan::arm`]: the plan stays armed (and other
/// armers are blocked) until this is dropped.
#[must_use = "the fault disarms as soon as the guard is dropped"]
pub struct ArmedFault {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        *armed_slot() = None;
    }
}

/// Installs (once) a panic hook that swallows the `"injected fault"`
/// panics this harness raises on shard threads, while forwarding every
/// other panic to the previous hook — so fault-injection test runs stay
/// readable without hiding real failures.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A [`FilterBackend`] wrapper that injects the globally armed
/// [`FaultPlan`] into an otherwise-correct inner backend.
///
/// Compiled with no plan armed, it is a transparent pass-through; with a
/// plan armed, it fires the planned fault when the trigger condition is
/// met (and fuel remains). Decisions on non-faulting paths are exactly
/// the inner backend's.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: Option<FaultPlan>,
    /// Bytes consumed since the current stream-driver call began.
    consumed: u64,
    /// A wrong-length fault fired during the current stream call.
    tripped: bool,
}

impl<B> FaultyBackend<B> {
    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The fault plan this lane snapshotted at compile time.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    fn maybe_fire(&mut self, byte: u8) {
        let Some(plan) = &self.plan else { return };
        let hit = match plan.trigger {
            Trigger::OnByteValue(v) => byte == v,
            Trigger::AtOffset(off) => self.consumed == off,
        };
        if hit && plan.take_fuel() {
            match plan.kind {
                FaultKind::Panic => panic!(
                    "injected fault: lane panic at byte offset {} (trigger {:?})",
                    self.consumed, plan.trigger
                ),
                FaultKind::TruncateOutput | FaultKind::DuplicateOutput => self.tripped = true,
            }
        }
    }
}

impl<B: FilterBackend> FilterBackend for FaultyBackend<B> {
    fn compile(expr: &Expr) -> Self {
        FaultyBackend {
            inner: B::compile(expr),
            plan: armed_slot().clone(),
            consumed: 0,
            tripped: false,
        }
    }

    fn try_compile(expr: &Expr) -> Result<Self, CompileError> {
        Ok(FaultyBackend {
            inner: B::try_compile(expr)?,
            plan: armed_slot().clone(),
            consumed: 0,
            tripped: false,
        })
    }

    fn name(&self) -> &'static str {
        "faulty"
    }

    fn expr(&self) -> &Expr {
        self.inner.expr()
    }

    fn on_byte(&mut self, byte: u8) -> bool {
        self.maybe_fire(byte);
        self.consumed += 1;
        self.inner.on_byte(byte)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn flush_telemetry(&mut self) {
        self.inner.flush_telemetry();
    }

    fn filter_stream_verdicts_into(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
        out: &mut Vec<Verdict>,
    ) {
        // Restart the per-call byte count, run the canonical driver,
        // then apply any pending wrong-length fault to the verdicts
        // appended by *this* call.
        self.consumed = 0;
        self.tripped = false;
        run_verdict_driver(self, stream, limits, out);
        if self.tripped {
            match self.plan.as_ref().map(|p| p.kind) {
                Some(FaultKind::TruncateOutput) => {
                    out.pop();
                }
                Some(FaultKind::DuplicateOutput) => out.push(Verdict::NoMatch),
                _ => {}
            }
            self.tripped = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_core::Engine;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn expr() -> Expr {
        Expr::int_range(1, 5)
    }

    #[test]
    fn transparent_when_disarmed() {
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":9}\n";
        let mut faulty = FaultyBackend::<Engine>::compile(&expr());
        let mut clean = Engine::compile(&expr());
        assert_eq!(faulty.filter_stream(stream), clean.filter_stream(stream));
        assert!(faulty.plan().is_none());
        assert_eq!(faulty.name(), "faulty");
    }

    #[test]
    fn panic_fault_fires_at_offset_and_respects_fuel() {
        silence_injected_panics();
        let _armed = FaultPlan::new(Trigger::AtOffset(3), FaultKind::Panic)
            .with_fuel(1)
            .arm();
        let mut lane = FaultyBackend::<Engine>::compile(&expr());
        let stream: &[u8] = b"{\"a\":3}\n";
        assert!(
            catch_unwind(AssertUnwindSafe(|| lane.filter_stream(stream))).is_err(),
            "first call panics"
        );
        let decisions = catch_unwind(AssertUnwindSafe(|| lane.filter_stream(stream)))
            .expect("fuel spent: the fault healed");
        assert_eq!(decisions, vec![true]);
    }

    #[test]
    fn truncate_fault_drops_one_verdict() {
        let armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::TruncateOutput).arm();
        let mut lane = FaultyBackend::<Engine>::compile(&expr());
        let stream: &[u8] = b"{\"a\":3}\n{\"a\":\x07}\n{\"a\":4}\n";
        let verdicts = lane.filter_stream_verdicts(stream, IngestLimits::UNLIMITED);
        assert_eq!(verdicts.len(), 2, "three records, one verdict dropped");
        // Disarmed after the guard drops: recompile runs clean.
        drop(armed);
        let mut clean_lane = FaultyBackend::<Engine>::compile(&expr());
        assert_eq!(clean_lane.filter_stream(stream).len(), 3);
    }

    #[test]
    fn duplicate_fault_appends_one_verdict() {
        let _armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::DuplicateOutput).arm();
        let mut lane = FaultyBackend::<Engine>::compile(&expr());
        let verdicts = lane.filter_stream_verdicts(b"{\"a\":\x07}\n", IngestLimits::UNLIMITED);
        assert_eq!(verdicts.len(), 2);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..32 {
            let a = FaultPlan::seeded(seed, 100);
            let b = FaultPlan::seeded(seed, 100);
            assert_eq!(a.trigger, b.trigger);
            assert_eq!(a.kind, b.kind);
            let Trigger::AtOffset(off) = a.trigger else {
                panic!("seeded plans trigger at offsets");
            };
            assert!(off < 100);
        }
        // The sweep hits every fault kind.
        let kinds: std::collections::HashSet<_> = (0..32)
            .map(|s| format!("{:?}", FaultPlan::seeded(s, 100).kind))
            .collect();
        assert_eq!(kinds.len(), 3);
    }
}

//! Arbitrary-byte-soup robustness properties for the sharded runtime:
//! invalid UTF-8, NUL bytes, empty and huge records — no panic may
//! escape any public driver, and sharded decisions/verdicts must match
//! the serial path of the same backend at shard counts {1, 2, 3, 8}.

use proptest::prelude::*;
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend};
use rfjson_runtime::{IngestLimits, ShardedRunner};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn expr() -> Expr {
    Expr::and([Expr::substring(b"temp", 1).unwrap(), Expr::int_range(0, 99)])
}

/// Sharded output must equal the serial reference, for decisions and
/// for verdicts under limits, without any panic escaping.
fn assert_resilient(stream: &[u8], limits: IngestLimits) {
    let serial_decisions = Engine::compile(&expr()).filter_stream(stream);
    let serial_verdicts = Engine::compile(&expr()).filter_stream_verdicts(stream, limits);
    let model_verdicts = CompiledFilter::compile(&expr()).filter_stream_verdicts(stream, limits);
    assert_eq!(serial_verdicts, model_verdicts, "serial paths agree first");
    for shards in [1usize, 2, 3, 8] {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut engine: ShardedRunner<Engine> =
                ShardedRunner::try_with_shards(&expr(), shards).unwrap();
            let mut model: ShardedRunner<CompiledFilter> =
                ShardedRunner::try_with_shards(&expr(), shards).unwrap();
            (
                engine.try_filter_stream(stream).unwrap(),
                engine.filter_stream_verdicts(stream, limits).unwrap(),
                model.filter_stream_verdicts(stream, limits).unwrap(),
            )
        }));
        let (decisions, verdicts, model) = outcome.expect("no panic may escape the runtime");
        assert_eq!(decisions, serial_decisions, "decisions, shards={shards}");
        assert_eq!(verdicts, serial_verdicts, "verdicts, shards={shards}");
        assert_eq!(model, serial_verdicts, "model verdicts, shards={shards}");
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_and_match_serial(
        bytes in prop::collection::vec(any::<u8>(), 0..1500),
    ) {
        assert_resilient(&bytes, IngestLimits::UNLIMITED);
    }

    #[test]
    fn arbitrary_bytes_with_limits_match_serial(
        bytes in prop::collection::vec(any::<u8>(), 0..1500),
        max_len in 0usize..64,
        max_recs in 0usize..12,
    ) {
        assert_resilient(
            &bytes,
            IngestLimits {
                max_record_bytes: Some(max_len),
                max_records: Some(max_recs),
            },
        );
    }

    #[test]
    fn newline_heavy_soup_matches_serial(
        lines in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..40),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
    ) {
        // Force plenty of record boundaries (the interesting framing
        // surface) out of otherwise-arbitrary content bytes.
        let mut stream = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            stream.extend_from_slice(line);
            if i + 1 < lines.len() || trailing_newline {
                if crlf {
                    stream.push(b'\r');
                }
                stream.push(b'\n');
            }
        }
        assert_resilient(&stream, IngestLimits::max_record_bytes(20));
    }
}

#[test]
fn zero_byte_records_and_nul_heavy_streams() {
    // Blank lines everywhere, NUL-only records, empty stream.
    assert_resilient(b"", IngestLimits::UNLIMITED);
    assert_resilient(b"\n\n\n\r\n\n", IngestLimits::max_records(1));
    assert_resilient(
        b"\x00\n\x00\x00\x00\n\x00",
        IngestLimits::max_record_bytes(2),
    );
    let soup: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
    assert_resilient(&soup, IngestLimits::max_record_bytes(100));
}

#[test]
fn multi_mb_record_is_quarantined_not_fatal() {
    // One 3 MiB record sandwiched between normal records: the lane must
    // skip-and-report it under a byte limit, identically at every shard
    // count, and filter it normally without limits.
    let mut stream = Vec::new();
    stream.extend_from_slice(b"{\"n\":\"temp\",\"v\":3}\n");
    stream.extend_from_slice(b"{\"n\":\"temp\",\"pad\":\"");
    stream.extend(std::iter::repeat_n(b'x', 3 * 1024 * 1024));
    stream.extend_from_slice(b"\",\"v\":7}\n");
    stream.extend_from_slice(b"{\"n\":\"temp\",\"v\":200}\n");
    assert_resilient(&stream, IngestLimits::max_record_bytes(1024));
    assert_resilient(&stream, IngestLimits::UNLIMITED);
}

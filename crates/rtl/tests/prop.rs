//! Property tests for the RTL substrate: word-level components against
//! arithmetic references, simulator state-machine behaviours under random
//! stimulus, and Verilog emission sanity.

use proptest::prelude::*;
use rfjson_rtl::components::{
    byte_in_set, dec_word_saturate, eq_const, eq_word, ge_const, in_range_const, inc_word,
    le_const, le_word, match_latch, saturating_counter, ByteSet,
};
use rfjson_rtl::verilog::to_verilog;
use rfjson_rtl::{BitVec, Netlist, Simulator};

proptest! {
    #[test]
    fn const_comparators_match_arithmetic(
        width in 1usize..10,
        value in 0u64..1024,
        probe in 0u64..1024,
    ) {
        let max = (1u64 << width) - 1;
        let value = value & max;
        let probe = probe & max;
        let mut n = Netlist::new("t");
        let w = n.input_word("x", width);
        let eq = eq_const(&mut n, &w, value);
        let ge = ge_const(&mut n, &w, value);
        let le = le_const(&mut n, &w, value);
        n.output("eq", eq);
        n.output("ge", ge);
        n.output("le", le);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("x", &BitVec::from_u64(probe, width)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output("eq").unwrap(), probe == value);
        prop_assert_eq!(sim.output("ge").unwrap(), probe >= value);
        prop_assert_eq!(sim.output("le").unwrap(), probe <= value);
    }

    #[test]
    fn range_comparator_matches_arithmetic(
        lo in 0u64..255,
        span in 0u64..255,
        probe in 0u64..256,
    ) {
        let hi = (lo + span).min(255);
        let mut n = Netlist::new("t");
        let w = n.input_word("x", 8);
        let r = in_range_const(&mut n, &w, lo, hi);
        n.output("r", r);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("x", &BitVec::from_u64(probe, 8)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output("r").unwrap(), probe >= lo && probe <= hi);
    }

    #[test]
    fn word_word_comparators(
        width in 1usize..8,
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let max = (1u64 << width) - 1;
        let (a, b) = (a & max, b & max);
        let mut n = Netlist::new("t");
        let wa = n.input_word("a", width);
        let wb = n.input_word("b", width);
        let eq = eq_word(&mut n, &wa, &wb);
        let le = le_word(&mut n, &wa, &wb);
        n.output("eq", eq);
        n.output("le", le);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("a", &BitVec::from_u64(a, width)).unwrap();
        sim.set_input_word("b", &BitVec::from_u64(b, width)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output("eq").unwrap(), a == b);
        prop_assert_eq!(sim.output("le").unwrap(), a <= b);
    }

    #[test]
    fn inc_dec_words_match_arithmetic(width in 1usize..8, v in 0u64..256) {
        let max = (1u64 << width) - 1;
        let v = v & max;
        let mut n = Netlist::new("t");
        let w = n.input_word("x", width);
        let inc = inc_word(&mut n, &w);
        let dec = dec_word_saturate(&mut n, &w);
        for (i, &bit) in inc.iter().enumerate() {
            n.output(format!("inc[{i}]"), bit);
        }
        for (i, &bit) in dec.iter().enumerate() {
            n.output(format!("dec[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("x", &BitVec::from_u64(v, width)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_word("inc", width).unwrap().to_u64(), (v + 1) & max);
        prop_assert_eq!(
            sim.output_word("dec", width).unwrap().to_u64(),
            v.saturating_sub(1)
        );
    }

    #[test]
    fn byte_in_set_equals_membership(bytes in prop::collection::vec(any::<u8>(), 0..40)) {
        let set = ByteSet::from_bytes(&bytes);
        let mut n = Netlist::new("t");
        let w = n.input_word("x", 8);
        let hit = byte_in_set(&mut n, &w, &set);
        n.output("hit", hit);
        let mut sim = Simulator::new(&n).unwrap();
        for probe in 0u64..256 {
            sim.set_input_word("x", &BitVec::from_u64(probe, 8)).unwrap();
            sim.settle();
            prop_assert_eq!(
                sim.output("hit").unwrap(),
                set.contains(probe as u8),
                "byte {:#x}", probe
            );
        }
    }

    #[test]
    fn counter_tracks_reference_model(
        stimulus in prop::collection::vec((any::<bool>(), any::<bool>()), 1..60),
        width in 2usize..5,
    ) {
        let mut n = Netlist::new("t");
        let incr = n.input("incr");
        let reset = n.input("reset");
        let count = saturating_counter(&mut n, width, incr, reset);
        for (i, &bit) in count.iter().enumerate() {
            n.output(format!("c[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        let max = (1u64 << width) - 1;
        let mut model = 0u64;
        for (inc, rst) in stimulus {
            sim.set_input("incr", inc).unwrap();
            sim.set_input("reset", rst).unwrap();
            sim.settle();
            prop_assert_eq!(sim.output_word("c", width).unwrap().to_u64(), model);
            sim.clock();
            model = if rst {
                0
            } else if inc {
                (model + 1).min(max)
            } else {
                model
            };
        }
    }

    #[test]
    fn match_latch_reference_model(
        stimulus in prop::collection::vec((any::<bool>(), any::<bool>()), 1..50),
    ) {
        let mut n = Netlist::new("t");
        let set = n.input("set");
        let clear = n.input("clear");
        let m = match_latch(&mut n, set, clear);
        n.output("m", m);
        let mut sim = Simulator::new(&n).unwrap();
        let mut stored = false;
        for (s, c) in stimulus {
            sim.set_input("set", s).unwrap();
            sim.set_input("clear", c).unwrap();
            sim.settle();
            // combinational view: stored | set
            prop_assert_eq!(sim.output("m").unwrap(), stored || s);
            sim.clock();
            stored = if c { false } else { stored || s };
        }
    }

    #[test]
    fn bitvec_round_trip(bits in prop::collection::vec(any::<bool>(), 0..150)) {
        let v: BitVec = bits.iter().copied().collect();
        prop_assert_eq!(v.width(), bits.len());
        let back: Vec<bool> = v.iter().collect();
        prop_assert_eq!(back, bits.clone());
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|b| **b).count());
    }

    #[test]
    fn verilog_emits_all_outputs(seed in any::<u64>()) {
        // Pseudo-random small netlist; every output must appear in the text.
        let mut n = Netlist::new("rand");
        let inputs: Vec<_> = (0..4).map(|i| n.input(format!("i{i}"))).collect();
        let mut pool = inputs;
        let mut x = seed | 1;
        for g in 0..12 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let a = pool[(x >> 8) as usize % pool.len()];
            let b = pool[(x >> 24) as usize % pool.len()];
            let node = match (x >> 40) % 3 {
                0 => n.and(a, b),
                1 => n.or(a, b),
                _ => n.xor(a, b),
            };
            pool.push(node);
            if g % 3 == 0 {
                n.output(format!("o{g}"), node);
            }
        }
        let v = to_verilog(&n);
        for (name, _) in n.outputs() {
            prop_assert!(v.contains(&format!("assign {name} =")), "{name} missing");
        }
    }
}

//! Cycle-accurate two-phase netlist simulation.
//!
//! [`Simulator`] executes a [`Netlist`] the way a synchronous FPGA design
//! runs: per clock cycle, primary inputs are driven, combinational logic
//! settles (evaluated once, in topological order), outputs are observable,
//! and on [`Simulator::clock`] every flip-flop latches its data input
//! simultaneously.
//!
//! The raw-filter pipelines of the paper consume **one byte per cycle**;
//! [`Simulator::stream_bytes`] drives an 8-bit input port from a byte slice
//! and samples a match output every cycle, which is how the co-simulation
//! tests check netlists against the software models bit-for-bit.

use crate::netlist::{Netlist, Node, NodeId};
use crate::{BitVec, Result, RtlError};
use std::borrow::Borrow;

/// Bit-true simulator over a levelized netlist, generic over how the
/// netlist is held ([`Simulator`] borrows it, [`OwnedSimulator`] owns
/// it — one impl, identical behaviour by construction).
///
/// # Example
///
/// A 1-bit toggle register:
///
/// ```
/// use rfjson_rtl::{Netlist, Simulator};
///
/// # fn main() -> Result<(), rfjson_rtl::RtlError> {
/// let mut n = Netlist::new("toggle");
/// let ff = n.dff_placeholder(false);
/// let next = n.not(ff);
/// n.connect_dff(ff, next);
/// n.output("q", ff);
///
/// let mut sim = Simulator::new(&n)?;
/// sim.settle();
/// assert!(!sim.output("q")?);
/// sim.clock();
/// assert!(sim.output("q")?);
/// sim.clock();
/// assert!(!sim.output("q")?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sim<N: Borrow<Netlist>> {
    netlist: N,
    core: SimCore,
}

/// Borrowing simulator: the common form for testbench-style use, where
/// the netlist outlives the simulation.
pub type Simulator<'n> = Sim<&'n Netlist>;

/// Owning simulator: netlist and simulation state in one movable value,
/// for long-lived drivers (such as the RTL co-simulation filter backend
/// in `rfjson-core`) that cannot keep a borrow of the netlist alive
/// alongside the simulator.
pub type OwnedSimulator = Sim<Netlist>;

/// The netlist-independent simulation state: node values, evaluation
/// order, flip-flop sample list. Shared verbatim between the borrowing
/// [`Simulator`] and the owning [`OwnedSimulator`] — the simulation
/// semantics exist exactly once.
#[derive(Debug, Clone)]
struct SimCore {
    /// Current value of every node.
    values: Vec<bool>,
    /// Evaluation order of combinational nodes (gate ids only).
    topo: Vec<NodeId>,
    /// Flip-flop ids with their data inputs, for the clock edge.
    dffs: Vec<(NodeId, NodeId, bool)>,
    /// Reusable D-input sample buffer (no per-cycle allocation on the
    /// streaming hot path).
    scratch: Vec<bool>,
}

impl SimCore {
    fn new(netlist: &Netlist) -> Result<Self> {
        netlist.check_connected()?;
        let topo = levelize(netlist);
        let mut values = vec![false; netlist.len()];
        let mut dffs = Vec::new();
        for (id, node) in netlist.nodes() {
            match node {
                Node::Const(v) => values[id.index()] = *v,
                Node::Dff { d: Some(d), init } => {
                    values[id.index()] = *init;
                    dffs.push((id, *d, *init));
                }
                _ => {}
            }
        }
        let mut core = SimCore {
            values,
            topo,
            dffs,
            scratch: Vec::new(),
        };
        core.settle(netlist);
        Ok(core)
    }

    fn set_input(&mut self, netlist: &Netlist, name: &str, value: bool) -> Result<()> {
        let id = netlist
            .find_input(name)
            .ok_or_else(|| RtlError::UnknownInput { name: name.into() })?;
        self.values[id.index()] = value;
        Ok(())
    }

    fn set_input_word(&mut self, netlist: &Netlist, name: &str, value: &BitVec) -> Result<()> {
        for i in 0..value.width() {
            self.set_input(netlist, &format!("{name}[{i}]"), value.get(i))?;
        }
        Ok(())
    }

    fn settle(&mut self, netlist: &Netlist) {
        for &id in &self.topo {
            let v = match netlist.node(id) {
                Node::Not(a) => !self.values[a.index()],
                Node::And(a, b) => self.values[a.index()] && self.values[b.index()],
                Node::Or(a, b) => self.values[a.index()] || self.values[b.index()],
                Node::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
                Node::Mux { sel, t, f } => {
                    if self.values[sel.index()] {
                        self.values[t.index()]
                    } else {
                        self.values[f.index()]
                    }
                }
                _ => unreachable!("topo order contains only gates"),
            };
            self.values[id.index()] = v;
        }
    }

    fn clock(&mut self, netlist: &Netlist) {
        // Phase 0: make sure D inputs reflect the latest primary inputs.
        self.settle(netlist);
        self.latch(netlist);
    }

    /// Clock edge for already-settled logic: flip-flops latch, then
    /// logic re-settles against the new state.
    fn latch(&mut self, netlist: &Netlist) {
        // Phase 1: sample all D inputs simultaneously.
        self.scratch.clear();
        self.scratch
            .extend(self.dffs.iter().map(|&(_, d, _)| self.values[d.index()]));
        // Phase 2: update all Q outputs.
        for (&(q, _, _), &v) in self.dffs.iter().zip(&self.scratch) {
            self.values[q.index()] = v;
        }
        self.settle(netlist);
    }

    fn reset(&mut self, netlist: &Netlist) {
        for &(q, _, init) in &self.dffs {
            self.values[q.index()] = init;
        }
        self.settle(netlist);
    }

    fn output(&self, netlist: &Netlist, name: &str) -> Result<bool> {
        let id = netlist
            .find_output(name)
            .ok_or_else(|| RtlError::UnknownOutput { name: name.into() })?;
        Ok(self.values[id.index()])
    }

    fn output_word(&self, netlist: &Netlist, name: &str, width: usize) -> Result<BitVec> {
        let mut v = BitVec::zeros(width);
        for i in 0..width {
            v.set(i, self.output(netlist, &format!("{name}[{i}]"))?);
        }
        Ok(v)
    }

    fn stream_bytes(
        &mut self,
        netlist: &Netlist,
        port: &str,
        bytes: &[u8],
        watch: &str,
    ) -> Result<Vec<bool>> {
        let bits = find_byte_port(netlist, port)?;
        let watch_id = netlist
            .find_output(watch)
            .ok_or_else(|| RtlError::UnknownOutput { name: watch.into() })?;
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            for (i, &bit) in bits.iter().enumerate() {
                self.values[bit.index()] = (b >> i) & 1 == 1;
            }
            self.settle(netlist);
            out.push(self.values[watch_id.index()]);
            self.latch(netlist);
        }
        Ok(out)
    }
}

/// Resolves the eight bit inputs `port[0..8]` of a byte port.
///
/// # Errors
///
/// Returns [`RtlError::UnknownInput`] if any bit of the word is missing.
pub fn find_byte_port(netlist: &Netlist, port: &str) -> Result<[NodeId; 8]> {
    let mut bits = [NodeId::default(); 8];
    for (i, bit) in bits.iter_mut().enumerate() {
        *bit =
            netlist
                .find_input(&format!("{port}[{i}]"))
                .ok_or_else(|| RtlError::UnknownInput {
                    name: format!("{port}[{i}]"),
                })?;
    }
    Ok(bits)
}

impl<N: Borrow<Netlist>> Sim<N> {
    /// Builds a simulator, levelizing the netlist. Pass `&Netlist` for
    /// the borrowing [`Simulator`], `Netlist` by value for the owning
    /// [`OwnedSimulator`].
    ///
    /// Combinational cycles cannot occur: gates only reference nodes that
    /// already exist, so creation order is a valid topological order, and
    /// sequential feedback must go through [`Netlist::dff_placeholder`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnconnectedDff`] if a placeholder flip-flop was
    /// never connected.
    pub fn new(netlist: N) -> Result<Self> {
        let core = SimCore::new(netlist.borrow())?;
        Ok(Sim { netlist, core })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist.borrow()
    }

    /// Drives a single-bit primary input by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownInput`] for an unknown name.
    pub fn set_input(&mut self, name: &str, value: bool) -> Result<()> {
        self.core.set_input(self.netlist.borrow(), name, value)
    }

    /// Drives the little-endian word input `name[i]` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownInput`] if any bit of the word is missing.
    pub fn set_input_word(&mut self, name: &str, value: &BitVec) -> Result<()> {
        self.core.set_input_word(self.netlist.borrow(), name, value)
    }

    /// Drives input bits directly by node id (fast path for streaming).
    pub fn set_input_id(&mut self, id: NodeId, value: bool) {
        self.core.values[id.index()] = value;
    }

    /// Re-evaluates all combinational logic in topological order.
    pub fn settle(&mut self) {
        self.core.settle(self.netlist.borrow());
    }

    /// Rising clock edge: combinational logic settles against the current
    /// inputs, every flip-flop latches its data input simultaneously, and
    /// logic re-settles against the new state.
    pub fn clock(&mut self) {
        self.core.clock(self.netlist.borrow());
    }

    /// Clock edge for an **already-settled** netlist: flip-flops latch
    /// their data inputs and logic re-settles. Equivalent to
    /// [`clock`](Sim::clock) when [`settle`](Sim::settle) has just run —
    /// the streaming hot paths (sample output, then advance) use this to
    /// skip the redundant pre-settle.
    pub fn latch(&mut self) {
        self.core.latch(self.netlist.borrow());
    }

    /// Synchronous reset: every flip-flop returns to its `init` value.
    pub fn reset(&mut self) {
        self.core.reset(self.netlist.borrow());
    }

    /// Reads a named output.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownOutput`] for an unknown name.
    pub fn output(&self, name: &str) -> Result<bool> {
        self.core.output(self.netlist.borrow(), name)
    }

    /// Reads an output word `name[i]`, width bits wide.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownOutput`] if any bit is missing.
    pub fn output_word(&self, name: &str, width: usize) -> Result<BitVec> {
        self.core.output_word(self.netlist.borrow(), name, width)
    }

    /// Reads the current value of an arbitrary node.
    pub fn value(&self, id: NodeId) -> bool {
        self.core.values[id.index()]
    }

    /// Streams `bytes` through an 8-bit input port (one byte per cycle) and
    /// returns the value of `watch` sampled *after settling, before the
    /// clock edge* of each cycle — matching the paper's per-cycle match
    /// signal.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownInput`]/[`RtlError::UnknownOutput`] if the
    /// named ports do not exist.
    pub fn stream_bytes(&mut self, port: &str, bytes: &[u8], watch: &str) -> Result<Vec<bool>> {
        self.core
            .stream_bytes(self.netlist.borrow(), port, bytes, watch)
    }
}

/// Gate nodes in creation order. Because a gate can only reference nodes
/// created before it, creation order is a topological order of the
/// combinational graph (sequential feedback always crosses a flip-flop).
fn levelize(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .nodes()
        .filter(|(_, n)| n.is_gate())
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comb_logic_settles() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor_gate(a, b);
        n.output("x", x);
        let mut sim = Simulator::new(&n).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.set_input("a", va).unwrap();
            sim.set_input("b", vb).unwrap();
            sim.settle();
            assert_eq!(sim.output("x").unwrap(), va ^ vb);
        }
    }

    #[test]
    fn unknown_ports_are_errors() {
        let n = Netlist::new("t");
        let mut sim = Simulator::new(&n).unwrap();
        assert!(matches!(
            sim.set_input("nope", true),
            Err(RtlError::UnknownInput { .. })
        ));
        assert!(matches!(
            sim.output("nope"),
            Err(RtlError::UnknownOutput { .. })
        ));
    }

    #[test]
    fn dff_latches_on_clock_only() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let q = n.dff(d, false);
        n.output("q", q);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("d", true).unwrap();
        sim.settle();
        assert!(!sim.output("q").unwrap(), "q must not change before edge");
        sim.clock();
        assert!(sim.output("q").unwrap());
        sim.set_input("d", false).unwrap();
        sim.clock();
        assert!(!sim.output("q").unwrap());
    }

    #[test]
    fn shift_register_delays_by_n() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let q1 = n.dff(d, false);
        let q2 = n.dff(q1, false);
        let q3 = n.dff(q2, false);
        n.output("q", q3);
        let mut sim = Simulator::new(&n).unwrap();
        let pattern = [true, false, true, true, false, false, true, false];
        let mut seen = Vec::new();
        for &p in &pattern {
            sim.set_input("d", p).unwrap();
            sim.settle();
            seen.push(sim.output("q").unwrap());
            sim.clock();
        }
        // Output is the input delayed by 3 cycles, zero-filled.
        let expect: Vec<bool> = [false, false, false]
            .iter()
            .chain(pattern.iter().take(5))
            .copied()
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn dff_feedback_is_legal() {
        let mut n = Netlist::new("t");
        let ff = n.dff_placeholder(false);
        let nf = n.not(ff);
        n.connect_dff(ff, nf);
        n.output("q", ff);
        assert!(Simulator::new(&n).is_ok(), "dff feedback is legal");
    }

    #[test]
    fn unconnected_dff_rejected() {
        let mut n = Netlist::new("t");
        let _ff = n.dff_placeholder(false);
        assert!(matches!(
            Simulator::new(&n),
            Err(RtlError::UnconnectedDff { .. })
        ));
    }

    #[test]
    fn reset_restores_init() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let q = n.dff(d, true);
        n.output("q", q);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.output("q").unwrap());
        sim.set_input("d", false).unwrap();
        sim.clock();
        assert!(!sim.output("q").unwrap());
        sim.reset();
        assert!(sim.output("q").unwrap());
    }

    #[test]
    fn toggle_via_placeholder_feedback() {
        let mut n = Netlist::new("t");
        let ff = n.dff_placeholder(false);
        let next = n.not(ff);
        n.connect_dff(ff, next);
        n.output("q", ff);
        let mut sim = Simulator::new(&n).unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            seq.push(sim.output("q").unwrap());
            sim.clock();
        }
        assert_eq!(seq, vec![false, true, false, true]);
    }

    #[test]
    fn word_io_round_trip() {
        let mut n = Netlist::new("t");
        let w = n.input_word("x", 4);
        for (i, bit) in w.iter().enumerate() {
            let inv = n.not(*bit);
            n.output(format!("y[{i}]"), inv);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("x", &BitVec::from_u64(0b0101, 4))
            .unwrap();
        sim.settle();
        assert_eq!(sim.output_word("y", 4).unwrap().to_u64(), 0b1010);
    }

    #[test]
    fn stream_bytes_matches_manual_drive() {
        // match exactly the byte 'A' (0x41)
        let mut n = Netlist::new("t");
        let byte = n.input_word("byte", 8);
        let mut acc = n.constant(true);
        for (i, b) in byte.iter().enumerate() {
            let want = (0x41u8 >> i) & 1 == 1;
            let term = if want { *b } else { n.not(*b) };
            acc = n.and_gate(acc, term);
        }
        n.output("m", acc);
        let mut sim = Simulator::new(&n).unwrap();
        let out = sim.stream_bytes("byte", b"BANANA", "m").unwrap();
        assert_eq!(out, vec![false, true, false, true, false, true]);
    }
}

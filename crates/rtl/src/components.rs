//! Word-level RTL generator library.
//!
//! These helpers emit gate networks into a [`Netlist`] for the recurring
//! structures of the paper's raw filters: constant comparators (the `==’te’`
//! blocks of Fig. 1), range comparators (for byte classes of number-filter
//! DFAs), OR-reduction trees, shift-register byte buffers, saturating match
//! counters and set/reset match latches.
//!
//! All words are little-endian `&[NodeId]` slices (bit 0 = LSB).

use crate::netlist::{Netlist, NodeId};
use std::fmt;

/// A set of byte values, used to label DFA transitions and to generate
/// byte-class match logic.
///
/// # Example
///
/// ```
/// use rfjson_rtl::components::ByteSet;
///
/// let digits = ByteSet::from_range(b'0', b'9');
/// assert!(digits.contains(b'5'));
/// assert_eq!(digits.ranges(), vec![(b'0', b'9')]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteSet {
    words: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set containing every byte value.
    pub fn full() -> Self {
        ByteSet { words: [!0u64; 4] }
    }

    /// Set containing a single byte.
    pub fn from_byte(b: u8) -> Self {
        let mut s = Self::new();
        s.insert(b);
        s
    }

    /// Set containing the inclusive range `lo..=hi`.
    pub fn from_range(lo: u8, hi: u8) -> Self {
        let mut s = Self::new();
        for b in lo..=hi {
            s.insert(b);
        }
        s
    }

    /// Set containing the given bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut s = Self::new();
        for &b in bytes {
            s.insert(b);
        }
        s
    }

    /// Inserts a byte.
    pub fn insert(&mut self, b: u8) {
        self.words[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes a byte.
    pub fn remove(&mut self, b: u8) {
        self.words[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        (self.words[(b >> 6) as usize] >> (b & 63)) & 1 == 1
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no byte is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        ByteSet { words: w }
    }

    /// Intersection of two sets.
    #[must_use]
    pub fn intersect(&self, other: &ByteSet) -> ByteSet {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        ByteSet { words: w }
    }

    /// Complement set.
    #[must_use]
    pub fn complement(&self) -> ByteSet {
        let mut w = self.words;
        for a in &mut w {
            *a = !*a;
        }
        ByteSet { words: w }
    }

    /// Iterates the member bytes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).map(|b| b as u8).filter(|&b| self.contains(b))
    }

    /// Maximal runs of consecutive member bytes as inclusive `(lo, hi)`
    /// pairs — the form the range-comparator generator consumes.
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut run: Option<(u8, u8)> = None;
        for b in 0u16..256 {
            let b = b as u8;
            if self.contains(b) {
                run = match run {
                    Some((lo, _)) => Some((lo, b)),
                    None => Some((b, b)),
                };
            } else if let Some(r) = run.take() {
                out.push(r);
            }
        }
        if let Some(r) = run {
            out.push(r);
        }
        out
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{")?;
        for (i, (lo, hi)) in self.ranges().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if lo == hi {
                write!(f, "{lo:#04x}")?;
            } else {
                write!(f, "{lo:#04x}-{hi:#04x}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Emits `word == value` (bitwise compare against a constant).
///
/// # Panics
///
/// Panics if `value` does not fit in `word.len()` bits.
pub fn eq_const(n: &mut Netlist, word: &[NodeId], value: u64) -> NodeId {
    assert!(
        word.len() >= 64 || value < (1u64 << word.len()),
        "constant {value} too wide for {} bits",
        word.len()
    );
    let mut acc = n.constant(true);
    for (i, &bit) in word.iter().enumerate() {
        let want = (value >> i) & 1 == 1;
        let term = if want { bit } else { n.not(bit) };
        acc = n.and_gate(acc, term);
    }
    acc
}

/// Emits `word >= value` (unsigned).
pub fn ge_const(n: &mut Netlist, word: &[NodeId], value: u64) -> NodeId {
    let (gt, eq) = cmp_const(n, word, value);
    n.or_gate(gt, eq)
}

/// Emits `word <= value` (unsigned).
pub fn le_const(n: &mut Netlist, word: &[NodeId], value: u64) -> NodeId {
    let (gt, _) = cmp_const(n, word, value);
    n.not(gt)
}

/// Emits `lo <= word && word <= hi` (unsigned, inclusive).
pub fn in_range_const(n: &mut Netlist, word: &[NodeId], lo: u64, hi: u64) -> NodeId {
    debug_assert!(lo <= hi);
    let ge = ge_const(n, word, lo);
    let le = le_const(n, word, hi);
    n.and_gate(ge, le)
}

/// Builds `(word > value, word == value)` with an LSB-to-MSB ripple chain.
fn cmp_const(n: &mut Netlist, word: &[NodeId], value: u64) -> (NodeId, NodeId) {
    let mut gt = n.constant(false);
    let mut eq = n.constant(true);
    for (i, &bit) in word.iter().enumerate() {
        let c = (value >> i) & 1 == 1;
        // bit vs c at this position:
        //   bit_gt = bit & !c, bit_eq = XNOR(bit,c)
        let (bit_gt, bit_eq) = if c {
            (n.constant(false), bit)
        } else {
            (bit, n.not(bit))
        };
        // Higher bit dominates: gt' = bit_gt | (bit_eq & gt)
        let keep = n.and_gate(bit_eq, gt);
        gt = n.or_gate(bit_gt, keep);
        eq = n.and_gate(eq, bit_eq);
    }
    (gt, eq)
}

/// Balanced OR-reduction tree over `bits` (constant `false` when empty).
pub fn or_reduce(n: &mut Netlist, bits: &[NodeId]) -> NodeId {
    reduce(n, bits, false, Netlist::or_gate)
}

/// Balanced AND-reduction tree over `bits` (constant `true` when empty).
pub fn and_reduce(n: &mut Netlist, bits: &[NodeId]) -> NodeId {
    reduce(n, bits, true, Netlist::and_gate)
}

fn reduce(
    n: &mut Netlist,
    bits: &[NodeId],
    empty: bool,
    op: fn(&mut Netlist, NodeId, NodeId) -> NodeId,
) -> NodeId {
    match bits.len() {
        0 => n.constant(empty),
        1 => bits[0],
        _ => {
            let mid = bits.len() / 2;
            let l = reduce(n, &bits[..mid], empty, op);
            let r = reduce(n, &bits[mid..], empty, op);
            op(n, l, r)
        }
    }
}

/// Emits logic testing whether an 8-bit `byte` word is a member of `set`.
///
/// Sparse sets use range/equality comparators; dense irregular sets use an
/// explicit Shannon cofactor structure — four sub-functions over the low
/// six bits selected by the two high bits — so a K=6 LUT mapper covers any
/// byte-set membership with at most five LUTs, mirroring how synthesis
/// tools pack such functions into LUT6 pairs plus F7/F8 muxes.
pub fn byte_in_set(n: &mut Netlist, byte: &[NodeId], set: &ByteSet) -> NodeId {
    debug_assert_eq!(byte.len(), 8, "byte words are 8 bits");
    if set.is_empty() {
        return n.constant(false);
    }
    if set.len() == 256 {
        return n.constant(true);
    }
    let ranges = set.ranges();
    let comp = set.complement().ranges();
    let sparse = ranges.len().min(comp.len()) <= 2;
    if sparse {
        if comp.len() < ranges.len() {
            let hit = ranges_match(n, byte, &comp);
            return n.not(hit);
        }
        return ranges_match(n, byte, &ranges);
    }
    // Cofactor on the two high bits: each quadrant is a function of the
    // low six bits only (guaranteed single-LUT cones after mapping).
    let low = &byte[..6];
    let mut quads = Vec::with_capacity(4);
    for q in 0..4u8 {
        let mut quad_set = ByteSet::new();
        for b in 0..64u8 {
            if set.contains(q << 6 | b) {
                quad_set.insert(b);
            }
        }
        quads.push(word_in_set6(n, low, &quad_set));
    }
    // 4:1 select by the high bits — 6 inputs, one LUT after mapping.
    let lo_sel = n.mux(byte[6], quads[1], quads[0]);
    let hi_sel = n.mux(byte[6], quads[3], quads[2]);
    n.mux(byte[7], hi_sel, lo_sel)
}

/// Membership of a 6-bit word in a set of values 0..64 (built from the
/// cheaper of direct or complemented ranges; support stays within the six
/// given bits).
fn word_in_set6(n: &mut Netlist, word: &[NodeId], set: &ByteSet) -> NodeId {
    debug_assert_eq!(word.len(), 6);
    let count = set.iter().filter(|&b| b < 64).count();
    if count == 0 {
        return n.constant(false);
    }
    if count == 64 {
        return n.constant(true);
    }
    let ranges: Vec<(u8, u8)> = set.ranges();
    let mut comp = ByteSet::new();
    for b in 0..64u8 {
        if !set.contains(b) {
            comp.insert(b);
        }
    }
    let comp_ranges = comp.ranges();
    if comp_ranges.len() < ranges.len() {
        let hit = ranges_match(n, word, &comp_ranges);
        n.not(hit)
    } else {
        ranges_match(n, word, &ranges)
    }
}

fn ranges_match(n: &mut Netlist, byte: &[NodeId], ranges: &[(u8, u8)]) -> NodeId {
    let terms: Vec<NodeId> = ranges
        .iter()
        .map(|&(lo, hi)| {
            if lo == hi {
                eq_const(n, byte, u64::from(lo))
            } else {
                in_range_const(n, byte, u64::from(lo), u64::from(hi))
            }
        })
        .collect();
    or_reduce(n, &terms)
}

/// A chain of byte registers: returns `depth` delayed copies of `byte_in`,
/// `result[0]` delayed by one cycle, `result[depth-1]` by `depth` cycles.
/// This is the "buffer of the last B bytes" of the substring matcher.
pub fn byte_shift_buffer(n: &mut Netlist, byte_in: &[NodeId], depth: usize) -> Vec<Vec<NodeId>> {
    let mut stages = Vec::with_capacity(depth);
    let mut prev: Vec<NodeId> = byte_in.to_vec();
    for _ in 0..depth {
        let stage: Vec<NodeId> = prev.iter().map(|&b| n.dff(b, false)).collect();
        stages.push(stage.clone());
        prev = stage;
    }
    stages
}

/// A saturating up-counter with synchronous reset.
///
/// Per cycle: if `reset` is high the counter clears; otherwise if `incr` is
/// high it advances by one, saturating at `2^width - 1`. Returns the
/// registered counter word (value *before* the current cycle's update).
pub fn saturating_counter(
    n: &mut Netlist,
    width: usize,
    incr: NodeId,
    reset: NodeId,
) -> Vec<NodeId> {
    let count: Vec<NodeId> = (0..width).map(|_| n.dff_placeholder(false)).collect();
    // increment with ripple carry
    let mut carry = n.constant(true);
    let mut incd = Vec::with_capacity(width);
    for &bit in &count {
        incd.push(n.xor_gate(bit, carry));
        carry = n.and_gate(bit, carry);
    }
    // saturate: when all ones, stay
    let at_max = and_reduce(n, &count);
    let next_if_incr: Vec<NodeId> = count
        .iter()
        .zip(&incd)
        .map(|(&cur, &inc)| n.mux(at_max, cur, inc))
        .collect();
    for ((&ff, &cur), &nxt) in count.iter().zip(&count).zip(&next_if_incr) {
        let advanced = n.mux(incr, nxt, cur);
        let zero = n.constant(false);
        let next = n.mux(reset, zero, advanced);
        n.connect_dff(ff, next);
    }
    count
}

/// A set-dominant match latch: output goes high when `set` is high and stays
/// high until `clear` (record boundary) resets it. Returns the *combinational*
/// "matched so far including this cycle" signal.
pub fn match_latch(n: &mut Netlist, set: NodeId, clear: NodeId) -> NodeId {
    let ff = n.dff_placeholder(false);
    let held = n.or_gate(ff, set);
    let zero = n.constant(false);
    let next = n.mux(clear, zero, held);
    n.connect_dff(ff, next);
    held
}

/// Emits `counter >= target` for a registered counter word. `target` must
/// fit the counter width.
pub fn counter_reaches(n: &mut Netlist, counter: &[NodeId], target: u64) -> NodeId {
    ge_const(n, counter, target)
}

/// Number of bits needed to count up to `max` inclusive (at least 1).
pub fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

/// Emits `a == b` for two words of equal width.
///
/// # Panics
///
/// Panics if widths differ.
pub fn eq_word(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "word widths must match");
    let terms: Vec<NodeId> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let ne = n.xor_gate(x, y);
            n.not(ne)
        })
        .collect();
    and_reduce(n, &terms)
}

/// Emits `a <= b` (unsigned) for two words of equal width.
///
/// # Panics
///
/// Panics if widths differ.
pub fn le_word(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "word widths must match");
    // LSB-to-MSB ripple: lt' = (b_i & !a_i) | (eq_i & lt); higher bits win.
    let mut le = n.constant(true);
    for (&x, &y) in a.iter().zip(b) {
        let nx = n.not(x);
        let bit_lt = n.and_gate(nx, y);
        let ne = n.xor_gate(x, y);
        let bit_eq = n.not(ne);
        let keep = n.and_gate(bit_eq, le);
        le = n.or_gate(bit_lt, keep);
    }
    le
}

/// Word increment by one (wrapping at 2^width).
pub fn inc_word(n: &mut Netlist, a: &[NodeId]) -> Vec<NodeId> {
    let mut carry = n.constant(true);
    let mut out = Vec::with_capacity(a.len());
    for &bit in a {
        out.push(n.xor_gate(bit, carry));
        carry = n.and_gate(bit, carry);
    }
    out
}

/// Word decrement by one, clamped at zero (`0 - 1 = 0`).
pub fn dec_word_saturate(n: &mut Netlist, a: &[NodeId]) -> Vec<NodeId> {
    // borrow chain: borrow' = !a_i & borrow ; out_i = a_i ^ borrow
    let mut borrow = n.constant(true);
    let mut dec = Vec::with_capacity(a.len());
    for &bit in a {
        dec.push(n.xor_gate(bit, borrow));
        let nb = n.not(bit);
        borrow = n.and_gate(nb, borrow);
    }
    let is_zero_terms: Vec<NodeId> = a.iter().map(|&b| n.not(b)).collect();
    let is_zero = and_reduce(n, &is_zero_terms);
    a.iter()
        .zip(dec)
        .map(|(&orig, d)| n.mux(is_zero, orig, d))
        .collect()
}

/// Word-level 2:1 multiplexer: `sel ? t : f`, elementwise.
///
/// # Panics
///
/// Panics if widths differ.
pub fn mux_word(n: &mut Netlist, sel: NodeId, t: &[NodeId], f: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(t.len(), f.len(), "word widths must match");
    t.iter().zip(f).map(|(&a, &b)| n.mux(sel, a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::BitVec;

    fn eval_byte_fn(build: impl Fn(&mut Netlist, &[NodeId]) -> NodeId) -> Vec<bool> {
        let mut n = Netlist::new("t");
        let byte = n.input_word("b", 8);
        let y = build(&mut n, &byte);
        n.output("y", y);
        let mut sim = Simulator::new(&n).unwrap();
        (0u16..256)
            .map(|v| {
                sim.set_input_word("b", &BitVec::from_u64(u64::from(v), 8))
                    .unwrap();
                sim.settle();
                sim.output("y").unwrap()
            })
            .collect()
    }

    #[test]
    fn eq_const_exhaustive() {
        let out = eval_byte_fn(|n, b| eq_const(n, b, 0x41));
        for (v, got) in out.iter().enumerate() {
            assert_eq!(*got, v == 0x41, "byte {v:#x}");
        }
    }

    #[test]
    fn ge_le_range_exhaustive() {
        let ge = eval_byte_fn(|n, b| ge_const(n, b, 100));
        let le = eval_byte_fn(|n, b| le_const(n, b, 100));
        let rng = eval_byte_fn(|n, b| in_range_const(n, b, 48, 57));
        for v in 0..256usize {
            assert_eq!(ge[v], v >= 100);
            assert_eq!(le[v], v <= 100);
            assert_eq!(rng[v], (48..=57).contains(&v));
        }
    }

    #[test]
    fn byte_set_basics() {
        let mut s = ByteSet::from_bytes(b"abc");
        assert_eq!(s.len(), 3);
        assert!(s.contains(b'a') && !s.contains(b'd'));
        s.remove(b'b');
        assert_eq!(s.ranges(), vec![(b'a', b'a'), (b'c', b'c')]);
        assert_eq!(s.complement().len(), 254);
        let t = ByteSet::from_range(b'a', b'z');
        assert_eq!(s.union(&t).len(), 26);
        assert_eq!(s.intersect(&t), s);
        assert_eq!(ByteSet::full().len(), 256);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("0x61"));
    }

    #[test]
    fn byte_set_iter_sorted() {
        let s = ByteSet::from_bytes(b"zax");
        let v: Vec<u8> = s.iter().collect();
        assert_eq!(v, vec![b'a', b'x', b'z']);
    }

    #[test]
    fn byte_in_set_exhaustive() {
        let set = ByteSet::from_bytes(b"0123456789.-+eE");
        let out = eval_byte_fn(|n, b| byte_in_set(n, b, &set));
        for (v, &hit) in out.iter().enumerate() {
            assert_eq!(hit, set.contains(v as u8), "byte {v:#x}");
        }
    }

    #[test]
    fn byte_in_set_complement_cheaper() {
        // A set of 255 bytes: complement has a single range, so the
        // complement path is used; behaviour must be identical.
        let mut set = ByteSet::full();
        set.remove(b'Q');
        let out = eval_byte_fn(|n, b| byte_in_set(n, b, &set));
        for (v, &hit) in out.iter().enumerate() {
            assert_eq!(hit, v != usize::from(b'Q'));
        }
    }

    #[test]
    fn byte_in_set_degenerate() {
        let empty = eval_byte_fn(|n, b| byte_in_set(n, b, &ByteSet::new()));
        assert!(empty.iter().all(|x| !x));
        let full = eval_byte_fn(|n, b| byte_in_set(n, b, &ByteSet::full()));
        assert!(full.iter().all(|x| *x));
    }

    #[test]
    fn or_and_reduce() {
        let mut n = Netlist::new("t");
        let w = n.input_word("x", 5);
        let o = or_reduce(&mut n, &w);
        let a = and_reduce(&mut n, &w);
        n.output("o", o);
        n.output("a", a);
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..32u64 {
            sim.set_input_word("x", &BitVec::from_u64(v, 5)).unwrap();
            sim.settle();
            assert_eq!(sim.output("o").unwrap(), v != 0);
            assert_eq!(sim.output("a").unwrap(), v == 31);
        }
    }

    #[test]
    fn reduce_empty_and_singleton() {
        let mut n = Netlist::new("t");
        let x = n.input("x");
        assert_eq!(or_reduce(&mut n, &[]), n.constant(false));
        assert_eq!(and_reduce(&mut n, &[]), n.constant(true));
        assert_eq!(or_reduce(&mut n, &[x]), x);
    }

    #[test]
    fn shift_buffer_delays_bytes() {
        let mut n = Netlist::new("t");
        let byte = n.input_word("b", 8);
        let stages = byte_shift_buffer(&mut n, &byte, 2);
        for (i, s) in stages.iter().enumerate() {
            for (j, &bit) in s.iter().enumerate() {
                n.output(format!("s{i}[{j}]"), bit);
            }
        }
        let mut sim = Simulator::new(&n).unwrap();
        let data = b"XYZ";
        let mut hist = Vec::new();
        for &c in data {
            sim.set_input_word("b", &BitVec::from_u64(u64::from(c), 8))
                .unwrap();
            sim.settle();
            hist.push((
                sim.output_word("s0", 8).unwrap().to_u64() as u8,
                sim.output_word("s1", 8).unwrap().to_u64() as u8,
            ));
            sim.clock();
        }
        assert_eq!(hist[0], (0, 0));
        assert_eq!(hist[1], (b'X', 0));
        assert_eq!(hist[2], (b'Y', b'X'));
    }

    #[test]
    fn counter_counts_and_saturates() {
        let mut n = Netlist::new("t");
        let incr = n.input("incr");
        let reset = n.input("reset");
        let count = saturating_counter(&mut n, 2, incr, reset);
        for (i, &bit) in count.iter().enumerate() {
            n.output(format!("c[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("incr", true).unwrap();
        sim.set_input("reset", false).unwrap();
        let mut seen = Vec::new();
        for _ in 0..6 {
            sim.settle();
            seen.push(sim.output_word("c", 2).unwrap().to_u64());
            sim.clock();
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 3, 3], "saturates at max");
        sim.set_input("reset", true).unwrap();
        sim.clock();
        assert_eq!(sim.output_word("c", 2).unwrap().to_u64(), 0);
    }

    #[test]
    fn counter_holds_without_incr() {
        let mut n = Netlist::new("t");
        let incr = n.input("incr");
        let reset = n.input("reset");
        let count = saturating_counter(&mut n, 3, incr, reset);
        for (i, &bit) in count.iter().enumerate() {
            n.output(format!("c[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("incr", true).unwrap();
        sim.set_input("reset", false).unwrap();
        sim.clock();
        sim.clock();
        sim.set_input("incr", false).unwrap();
        sim.clock();
        sim.clock();
        assert_eq!(sim.output_word("c", 3).unwrap().to_u64(), 2);
    }

    #[test]
    fn match_latch_holds_until_clear() {
        let mut n = Netlist::new("t");
        let set = n.input("set");
        let clear = n.input("clear");
        let m = match_latch(&mut n, set, clear);
        n.output("m", m);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("set", false).unwrap();
        sim.set_input("clear", false).unwrap();
        sim.settle();
        assert!(!sim.output("m").unwrap());
        sim.set_input("set", true).unwrap();
        sim.settle();
        assert!(
            sim.output("m").unwrap(),
            "combinational set visible same cycle"
        );
        sim.clock();
        sim.set_input("set", false).unwrap();
        sim.settle();
        assert!(sim.output("m").unwrap(), "latched");
        sim.set_input("clear", true).unwrap();
        sim.clock();
        sim.set_input("clear", false).unwrap();
        sim.settle();
        assert!(!sim.output("m").unwrap(), "cleared at record boundary");
    }

    #[test]
    fn word_comparators_exhaustive() {
        let mut n = Netlist::new("t");
        let a = n.input_word("a", 4);
        let b = n.input_word("b", 4);
        let eq = eq_word(&mut n, &a, &b);
        let le = le_word(&mut n, &a, &b);
        n.output("eq", eq);
        n.output("le", le);
        let mut sim = Simulator::new(&n).unwrap();
        for va in 0..16u64 {
            for vb in 0..16u64 {
                sim.set_input_word("a", &BitVec::from_u64(va, 4)).unwrap();
                sim.set_input_word("b", &BitVec::from_u64(vb, 4)).unwrap();
                sim.settle();
                assert_eq!(sim.output("eq").unwrap(), va == vb, "{va} == {vb}");
                assert_eq!(sim.output("le").unwrap(), va <= vb, "{va} <= {vb}");
            }
        }
    }

    #[test]
    fn inc_dec_words() {
        let mut n = Netlist::new("t");
        let a = n.input_word("a", 3);
        let inc = inc_word(&mut n, &a);
        let dec = dec_word_saturate(&mut n, &a);
        for (i, &bit) in inc.iter().enumerate() {
            n.output(format!("inc[{i}]"), bit);
        }
        for (i, &bit) in dec.iter().enumerate() {
            n.output(format!("dec[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..8u64 {
            sim.set_input_word("a", &BitVec::from_u64(v, 3)).unwrap();
            sim.settle();
            assert_eq!(sim.output_word("inc", 3).unwrap().to_u64(), (v + 1) % 8);
            assert_eq!(
                sim.output_word("dec", 3).unwrap().to_u64(),
                v.saturating_sub(1)
            );
        }
    }

    #[test]
    fn mux_word_selects() {
        let mut n = Netlist::new("t");
        let s = n.input("s");
        let a = n.input_word("a", 3);
        let b = n.input_word("b", 3);
        let m = mux_word(&mut n, s, &a, &b);
        for (i, &bit) in m.iter().enumerate() {
            n.output(format!("m[{i}]"), bit);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_word("a", &BitVec::from_u64(5, 3)).unwrap();
        sim.set_input_word("b", &BitVec::from_u64(2, 3)).unwrap();
        sim.set_input("s", true).unwrap();
        sim.settle();
        assert_eq!(sim.output_word("m", 3).unwrap().to_u64(), 5);
        sim.set_input("s", false).unwrap();
        sim.settle();
        assert_eq!(sim.output_word("m", 3).unwrap().to_u64(), 2);
    }

    #[test]
    fn bits_for_extremes() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}

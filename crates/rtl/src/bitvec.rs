//! Arbitrary-width bit vectors.
//!
//! [`BitVec`] is the value type exchanged at the simulator boundary: input
//! words are driven from a `BitVec` and multi-bit outputs are sampled into
//! one. It is intentionally minimal — dense `u64` limbs, LSB-first indexing.

use std::fmt;

/// A fixed-width vector of bits, indexed LSB-first.
///
/// # Example
///
/// ```
/// use rfjson_rtl::BitVec;
///
/// let v = BitVec::from_u64(0b1011, 4);
/// assert!(v.get(0));
/// assert!(!v.get(2));
/// assert_eq!(v.to_u64(), 0b1011);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    limbs: Vec<u64>,
    width: usize,
}

impl BitVec {
    /// Creates an all-zero vector of `width` bits.
    pub fn zeros(width: usize) -> Self {
        BitVec {
            limbs: vec![0; width.div_ceil(64)],
            width,
        }
    }

    /// Creates an all-one vector of `width` bits.
    pub fn ones(width: usize) -> Self {
        let mut v = Self::zeros(width);
        for i in 0..width {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector holding the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` has significant bits above `width`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(
            width >= 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut v = Self::zeros(width);
        if !v.limbs.is_empty() {
            v.limbs[0] = value;
        }
        v
    }

    /// Builds a vector from a little-endian bit iterator.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` when the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.width, "bit index {i} out of range {}", self.width);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.width, "bit index {i} out of range {}", self.width);
        let limb = &mut self.limbs[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Interprets the low (up to) 64 bits as an unsigned integer.
    pub fn to_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Iterates over the bits, LSB first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(|i| self.get(i))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.iter().filter(|b| *b).count()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec<{}>(", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.width == 0 {
            write!(f, "<empty>")?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_width() {
        let v = BitVec::zeros(70);
        assert_eq!(v.width(), 70);
        assert!(!v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert!((0..70).all(|i| !v.get(i)));
    }

    #[test]
    fn ones_has_all_bits() {
        let v = BitVec::ones(65);
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn from_u64_round_trip() {
        let v = BitVec::from_u64(0xDEAD_BEEF, 32);
        assert_eq!(v.to_u64(), 0xDEAD_BEEF);
        assert_eq!(v.width(), 32);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_overflow() {
        let _ = BitVec::from_u64(16, 4);
    }

    #[test]
    fn set_get_across_limbs() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(4);
        let _ = v.get(4);
    }

    #[test]
    fn bit_iterator_round_trip() {
        let bits = [true, false, true, true, false];
        let v: BitVec = bits.iter().copied().collect();
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn display_msb_first() {
        let v = BitVec::from_u64(0b1010, 4);
        assert_eq!(v.to_string(), "1010");
        assert_eq!(format!("{v:?}"), "BitVec<4>(1010)");
    }

    #[test]
    fn empty_display_nonempty() {
        // C-DEBUG-NONEMPTY: even a zero-width vector renders visibly.
        let v = BitVec::zeros(0);
        assert_eq!(v.to_string(), "<empty>");
    }
}

//! Structural netlist statistics (gate histogram, logic depth).
//!
//! These are raw, pre-mapping numbers; LUT counts — the resource metric the
//! paper reports — come from `rfjson-techmap`, which consumes the same
//! netlist.

use crate::netlist::{Netlist, Node};
use std::fmt;

/// Structural statistics of a [`Netlist`].
///
/// # Example
///
/// ```
/// use rfjson_rtl::{Netlist, stats::NetlistStats};
///
/// let mut n = Netlist::new("t");
/// let a = n.input("a");
/// let b = n.input("b");
/// let y = n.and(a, b);
/// let q = n.dff(y, false);
/// n.output("q", q);
/// let s = NetlistStats::of(&n);
/// assert_eq!(s.and_gates, 1);
/// assert_eq!(s.dffs, 1);
/// assert_eq!(s.depth, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary input bits.
    pub inputs: usize,
    /// Declared output bits.
    pub outputs: usize,
    /// AND gates.
    pub and_gates: usize,
    /// OR gates.
    pub or_gates: usize,
    /// XOR gates.
    pub xor_gates: usize,
    /// Inverters.
    pub not_gates: usize,
    /// 2:1 muxes.
    pub muxes: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Longest combinational path in gate levels.
    pub depth: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            ..Default::default()
        };
        // Depth: creation order is topological for gates.
        let mut level = vec![0usize; netlist.len()];
        for (id, node) in netlist.nodes() {
            match node {
                Node::And(..) => s.and_gates += 1,
                Node::Or(..) => s.or_gates += 1,
                Node::Xor(..) => s.xor_gates += 1,
                Node::Not(_) => s.not_gates += 1,
                Node::Mux { .. } => s.muxes += 1,
                Node::Dff { .. } => s.dffs += 1,
                _ => {}
            }
            if node.is_gate() {
                let l = node
                    .comb_fanin()
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .unwrap_or(0)
                    + 1;
                level[id.index()] = l;
                s.depth = s.depth.max(l);
            }
        }
        s
    }

    /// Total gate count (all combinational node kinds).
    pub fn total_gates(&self) -> usize {
        self.and_gates + self.or_gates + self.xor_gates + self.not_gates + self.muxes
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates (and={} or={} xor={} not={} mux={}), {} FFs, depth {}",
            self.total_gates(),
            self.and_gates,
            self.or_gates,
            self.xor_gates,
            self.not_gates,
            self.muxes,
            self.dffs,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_kinds() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and(a, b);
        let y = n.or(a, b);
        let z = n.xor(x, y);
        let w = n.not(z);
        let m = n.mux(a, w, z);
        let q = n.dff(m, false);
        n.output("q", q);
        let s = NetlistStats::of(&n);
        assert_eq!(
            (
                s.and_gates,
                s.or_gates,
                s.xor_gates,
                s.not_gates,
                s.muxes,
                s.dffs
            ),
            (1, 1, 1, 1, 1, 1)
        );
        assert_eq!(s.total_gates(), 5);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn depth_is_longest_path() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let g1 = n.and(a, b);
        let g2 = n.and(g1, b);
        let g3 = n.and(g2, a);
        n.output("y", g3);
        assert_eq!(NetlistStats::of(&n).depth, 3);
    }

    #[test]
    fn dff_cuts_depth() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let g1 = n.and(a, b);
        let q = n.dff(g1, false);
        let g2 = n.and(q, b);
        n.output("y", g2);
        assert_eq!(NetlistStats::of(&n).depth, 1, "register breaks the path");
    }

    #[test]
    fn display_mentions_everything() {
        let s = NetlistStats {
            and_gates: 2,
            dffs: 3,
            depth: 4,
            ..Default::default()
        };
        let txt = s.to_string();
        assert!(txt.contains("2 gates") && txt.contains("3 FFs") && txt.contains("depth 4"));
    }
}

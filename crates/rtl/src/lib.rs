//! # rfjson-rtl — gate/register-level hardware substrate
//!
//! This crate models the hardware layer of the paper *"Raw Filtering of JSON
//! Data on FPGAs"* (DATE 2022). Filter primitives are not merely described;
//! they are **elaborated into a netlist** of Boolean gates and D flip-flops
//! and can be simulated **cycle-accurately**, one input byte per clock cycle,
//! exactly like the paper's streaming pipeline.
//!
//! The crate provides:
//!
//! * [`netlist::Netlist`] — a flat, hierarchical-name-aware IR of gates
//!   (`AND`/`OR`/`XOR`/`NOT`/`MUX`/constants), D flip-flops with synchronous
//!   reset/enable, primary inputs and named outputs.
//! * [`sim::Simulator`] — a two-phase (combinational settle, then clock edge)
//!   bit-true simulator with combinational-cycle detection.
//! * [`components`] — word-level generator library (byte buffers, constant
//!   comparators, range comparators, saturating counters, OR-trees, FSM
//!   next-state logic) shared by every filter primitive in `rfjson-core`.
//! * [`bitvec::BitVec`] — a small arbitrary-width bit vector used at the
//!   simulator boundary.
//!
//! # Example
//!
//! Build a 2-gate netlist and simulate it:
//!
//! ```
//! use rfjson_rtl::netlist::Netlist;
//! use rfjson_rtl::sim::Simulator;
//!
//! # fn main() -> Result<(), rfjson_rtl::RtlError> {
//! let mut n = Netlist::new("toy");
//! let a = n.input("a");
//! let b = n.input("b");
//! let y = n.and(a, b);
//! n.output("y", y);
//!
//! let mut sim = Simulator::new(&n)?;
//! sim.set_input("a", true)?;
//! sim.set_input("b", true)?;
//! sim.settle();
//! assert!(sim.output("y")?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod components;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod verilog;

pub use bitvec::BitVec;
pub use netlist::{Netlist, NodeId};
pub use sim::{find_byte_port, OwnedSimulator, Sim, Simulator};

use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A flip-flop was created with [`Netlist::dff_placeholder`] but its data
    /// input was never connected.
    UnconnectedDff {
        /// The dangling flip-flop.
        node: NodeId,
    },
    /// An input name was not found in the netlist.
    UnknownInput {
        /// The name that failed to resolve.
        name: String,
    },
    /// An output name was not found in the netlist.
    UnknownOutput {
        /// The name that failed to resolve.
        name: String,
    },
    /// Word-level helper was called with mismatched operand widths.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// A constant does not fit into the requested width.
    ConstTooWide {
        /// The constant value.
        value: u64,
        /// The requested width in bits.
        width: usize,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnconnectedDff { node } => {
                write!(f, "flip-flop {node} has no data input connected")
            }
            RtlError::UnknownInput { name } => write!(f, "unknown input `{name}`"),
            RtlError::UnknownOutput { name } => write!(f, "unknown output `{name}`"),
            RtlError::WidthMismatch { left, right } => {
                write!(f, "operand widths differ: {left} vs {right}")
            }
            RtlError::ConstTooWide { value, width } => {
                write!(f, "constant {value} does not fit in {width} bits")
            }
        }
    }
}

impl Error for RtlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RtlError>;

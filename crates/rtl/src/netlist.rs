//! Netlist intermediate representation.
//!
//! A [`Netlist`] is a flat graph of Boolean [`Node`]s: primary inputs,
//! constants, gates, and D flip-flops. Gates are structural (no logic
//! optimisation happens here); `rfjson-techmap` consumes the same graph for
//! LUT mapping, and [`crate::sim::Simulator`] executes it cycle-accurately.
//!
//! Flip-flops may be created before their data input exists (FSM next-state
//! logic needs the state bits first) via [`Netlist::dff_placeholder`] +
//! [`Netlist::connect_dff`].

use crate::RtlError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within a [`Netlist`]. The default value is node
/// 0 — a placeholder, only meaningful once resolved against a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the netlist node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single netlist node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Primary input bit (driven by the testbench / stream source).
    Input {
        /// Port name.
        name: String,
    },
    /// Constant `false`/`true`.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2:1 multiplexer: `sel ? t : f`.
    Mux {
        /// Select input.
        sel: NodeId,
        /// Output when `sel` is high.
        t: NodeId,
        /// Output when `sel` is low.
        f: NodeId,
    },
    /// D flip-flop, clocked once per byte; `None` data = unconnected
    /// placeholder (an error at simulation/mapping time).
    Dff {
        /// Data input (next value), `None` until connected.
        d: Option<NodeId>,
        /// Power-on / reset value.
        init: bool,
    },
}

impl Node {
    /// Returns the combinational fan-in of this node (flip-flop data inputs
    /// are *sequential* edges and excluded).
    pub fn comb_fanin(&self) -> Vec<NodeId> {
        match self {
            Node::Input { .. } | Node::Const(_) | Node::Dff { .. } => Vec::new(),
            Node::Not(a) => vec![*a],
            Node::And(a, b) | Node::Or(a, b) | Node::Xor(a, b) => vec![*a, *b],
            Node::Mux { sel, t, f } => vec![*sel, *t, *f],
        }
    }

    /// Is this node a gate (counted as combinational logic)?
    pub fn is_gate(&self) -> bool {
        matches!(
            self,
            Node::Not(_) | Node::And(..) | Node::Or(..) | Node::Xor(..) | Node::Mux { .. }
        )
    }
}

/// A flat netlist: the circuit-level form of one raw filter (or any other
/// streaming block).
///
/// # Example
///
/// ```
/// use rfjson_rtl::netlist::Netlist;
///
/// let mut n = Netlist::new("edge_detect");
/// let x = n.input("x");
/// let prev = n.dff(x, false);
/// let not_prev = n.not(prev);
/// let rising = n.and_gate(x, not_prev);
/// n.output("rising", rising);
/// assert_eq!(n.num_dffs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<(String, NodeId)>,
    outputs: Vec<(String, NodeId)>,
    input_index: HashMap<String, NodeId>,
    const_false: Option<NodeId>,
    const_true: Option<NodeId>,
    /// Structural hashing: gate shape -> existing node. Keeps the graph
    /// free of duplicate gates, which both the simulator and the LUT mapper
    /// benefit from (and which synthesis tools do implicitly).
    gate_cache: HashMap<GateKey, NodeId>,
}

/// Canonical key for structural gate hashing (commutative inputs sorted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    Not(NodeId),
    And(NodeId, NodeId),
    Or(NodeId, NodeId),
    Xor(NodeId, NodeId),
    Mux(NodeId, NodeId, NodeId),
}

fn sorted(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Netlist {
    /// Creates an empty netlist with a block `name` (used in dumps).
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            input_index: HashMap::new(),
            const_false: None,
            const_true: None,
            gate_cache: HashMap::new(),
        }
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(node);
        id
    }

    /// Pushes a gate through the structural-hashing cache.
    fn push_gate(&mut self, key: GateKey) -> NodeId {
        if let Some(&id) = self.gate_cache.get(&key) {
            return id;
        }
        let node = match key {
            GateKey::Not(a) => Node::Not(a),
            GateKey::And(a, b) => Node::And(a, b),
            GateKey::Or(a, b) => Node::Or(a, b),
            GateKey::Xor(a, b) => Node::Xor(a, b),
            GateKey::Mux(sel, t, f) => Node::Mux { sel, t, f },
        };
        let id = self.push(node);
        self.gate_cache.insert(key, id);
        id
    }

    /// Adds a named primary input bit.
    ///
    /// # Panics
    ///
    /// Panics if an input with the same name already exists.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(
            !self.input_index.contains_key(&name),
            "duplicate input `{name}`"
        );
        let id = self.push(Node::Input { name: name.clone() });
        self.inputs.push((name.clone(), id));
        self.input_index.insert(name, id);
        id
    }

    /// Adds a `width`-bit little-endian input word named `name[0..width]`.
    pub fn input_word(&mut self, name: &str, width: usize) -> Vec<NodeId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Registers `bit` as a named output.
    pub fn output(&mut self, name: impl Into<String>, bit: NodeId) {
        self.outputs.push((name.into(), bit));
    }

    /// Constant node (hash-consed: one per polarity).
    pub fn constant(&mut self, value: bool) -> NodeId {
        let slot = if value {
            &mut self.const_true
        } else {
            &mut self.const_false
        };
        if let Some(id) = *slot {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(Node::Const(value));
        if value {
            self.const_true = Some(id);
        } else {
            self.const_false = Some(id);
        }
        id
    }

    /// Inverter. Folds constants and double negation.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        match self.nodes[a.index()] {
            Node::Const(v) => self.constant(!v),
            Node::Not(inner) => inner,
            _ => self.push_gate(GateKey::Not(a)),
        }
    }

    /// 2-input AND with constant folding.
    pub fn and_gate(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = sorted(a, b);
                self.push_gate(GateKey::And(a, b))
            }
        }
    }

    /// Alias for [`Netlist::and_gate`], reads better in expression builders.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.and_gate(a, b)
    }

    /// 2-input OR with constant folding.
    pub fn or_gate(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = sorted(a, b);
                self.push_gate(GateKey::Or(a, b))
            }
        }
    }

    /// Alias for [`Netlist::or_gate`].
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.or_gate(a, b)
    }

    /// 2-input XOR with constant folding.
    pub fn xor_gate(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => {
                let (a, b) = sorted(a, b);
                self.push_gate(GateKey::Xor(a, b))
            }
        }
    }

    /// Alias for [`Netlist::xor_gate`].
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.xor_gate(a, b)
    }

    /// 2:1 mux `sel ? t : f` with constant folding.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, f: NodeId) -> NodeId {
        match self.as_const(sel) {
            Some(true) => t,
            Some(false) => f,
            None if t == f => t,
            None => match (self.as_const(t), self.as_const(f)) {
                (Some(true), Some(false)) => sel,
                (Some(false), Some(true)) => self.not(sel),
                (Some(true), None) => self.or_gate(sel, f),
                (Some(false), None) => {
                    let ns = self.not(sel);
                    self.and_gate(ns, f)
                }
                (None, Some(false)) => self.and_gate(sel, t),
                (None, Some(true)) => {
                    let ns = self.not(sel);
                    self.or_gate(ns, t)
                }
                _ => self.push_gate(GateKey::Mux(sel, t, f)),
            },
        }
    }

    /// D flip-flop with connected data input and power-on value `init`.
    pub fn dff(&mut self, d: NodeId, init: bool) -> NodeId {
        self.push(Node::Dff { d: Some(d), init })
    }

    /// D flip-flop whose data input will be connected later with
    /// [`Netlist::connect_dff`] (needed for feedback, e.g. FSM state).
    pub fn dff_placeholder(&mut self, init: bool) -> NodeId {
        self.push(Node::Dff { d: None, init })
    }

    /// Connects the data input of a placeholder flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop or is already connected.
    pub fn connect_dff(&mut self, ff: NodeId, d: NodeId) {
        match &mut self.nodes[ff.index()] {
            Node::Dff { d: slot @ None, .. } => *slot = Some(d),
            Node::Dff { d: Some(_), .. } => panic!("flip-flop {ff} already connected"),
            _ => panic!("{ff} is not a flip-flop"),
        }
    }

    /// Returns the constant value of a node if it is a constant.
    pub fn as_const(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()] {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Node table accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of nodes (all kinds).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Declared primary inputs in declaration order.
    pub fn inputs(&self) -> &[(String, NodeId)] {
        &self.inputs
    }

    /// Declared outputs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Looks up an input bit by name.
    pub fn find_input(&self, name: &str) -> Option<NodeId> {
        self.input_index.get(name).copied()
    }

    /// Looks up an output bit by name.
    pub fn find_output(&self, name: &str) -> Option<NodeId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    /// Number of gate nodes (AND/OR/XOR/NOT/MUX).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// Number of flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Dff { .. }))
            .count()
    }

    /// Checks that every flip-flop has a data input.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnconnectedDff`] naming the first dangling
    /// flip-flop.
    pub fn check_connected(&self) -> crate::Result<()> {
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Dff { d: None, .. } = n {
                return Err(RtlError::UnconnectedDff {
                    node: NodeId(i as u32),
                });
            }
        }
        Ok(())
    }

    /// Number of uses of every node: combinational fan-in edges, flip-flop
    /// data inputs, and declared outputs all count as one use of their
    /// operand. Index by [`NodeId::index`].
    ///
    /// A gate with zero fanout is dead logic; a primary input with zero
    /// fanout is a dangling port. `rfjson-verify` builds its
    /// dangling/dead-net diagnostics and fanout statistics on this.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for f in node.comb_fanin() {
                counts[f.index()] += 1;
            }
            if let Node::Dff { d: Some(d), .. } = node {
                counts[d.index()] += 1;
            }
        }
        for (_, id) in &self.outputs {
            counts[id.index()] += 1;
        }
        counts
    }

    /// Topological order of all nodes over *combinational* edges
    /// (flip-flop data inputs are sequential and break the path, exactly
    /// as in [`Node::comb_fanin`]).
    ///
    /// The builder API only lets gates reference already-created nodes, so
    /// netlists built through it are always acyclic — but the verifier
    /// re-proves that instead of assuming it, and any future in-place
    /// rewrite API gets the check for free.
    ///
    /// # Errors
    ///
    /// Returns the nodes caught on a combinational cycle (in id order)
    /// when the gate graph is not a DAG.
    pub fn comb_topo_order(&self) -> Result<Vec<NodeId>, Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        // users[v] = nodes whose combinational fan-in contains v.
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            let fanin = node.comb_fanin();
            indegree[i] = fanin.len();
            for f in fanin {
                users[f.index()].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId(i as u32));
            for &u in &users[i] {
                indegree[u] -= 1;
                if indegree[u] == 0 {
                    ready.push(u);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err((0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| NodeId(i as u32))
                .collect())
        }
    }

    /// Renders a human-readable structural dump (used by the Fig. 1
    /// regeneration binary).
    pub fn dump(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "module {} {{", self.name);
        for (name, id) in &self.inputs {
            let _ = writeln!(s, "  input  {name} -> {id}");
        }
        for (id, node) in self.nodes() {
            match node {
                Node::Input { .. } => {}
                Node::Const(v) => {
                    let _ = writeln!(s, "  {id} = const {}", u8::from(*v));
                }
                Node::Not(a) => {
                    let _ = writeln!(s, "  {id} = not {a}");
                }
                Node::And(a, b) => {
                    let _ = writeln!(s, "  {id} = and {a} {b}");
                }
                Node::Or(a, b) => {
                    let _ = writeln!(s, "  {id} = or {a} {b}");
                }
                Node::Xor(a, b) => {
                    let _ = writeln!(s, "  {id} = xor {a} {b}");
                }
                Node::Mux { sel, t, f } => {
                    let _ = writeln!(s, "  {id} = mux {sel} ? {t} : {f}");
                }
                Node::Dff { d, init } => {
                    let d = d.map_or_else(|| "<unconnected>".to_string(), |d| d.to_string());
                    let _ = writeln!(s, "  {id} = dff d={d} init={}", u8::from(*init));
                }
            }
        }
        for (name, id) in &self.outputs {
            let _ = writeln!(s, "  output {name} <- {id}");
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} gates, {} FFs, {} inputs, {} outputs",
            self.name,
            self.num_gates(),
            self.num_dffs(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_and() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let f = n.constant(false);
        let t = n.constant(true);
        assert_eq!(n.and_gate(a, f), f);
        assert_eq!(n.and_gate(t, a), a);
        assert_eq!(n.and_gate(a, a), a);
        assert_eq!(n.num_gates(), 0);
    }

    #[test]
    fn constant_folding_or_xor_not() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let f = n.constant(false);
        let t = n.constant(true);
        assert_eq!(n.or_gate(a, t), t);
        assert_eq!(n.or_gate(f, a), a);
        assert_eq!(n.xor_gate(a, f), a);
        let na = n.not(a);
        assert_eq!(n.xor_gate(a, t), na);
        assert_eq!(n.not(na), a);
        assert_eq!(n.xor_gate(a, a), f);
    }

    #[test]
    fn mux_folding() {
        let mut n = Netlist::new("t");
        let s = n.input("s");
        let a = n.input("a");
        let b = n.input("b");
        let t = n.constant(true);
        let f = n.constant(false);
        assert_eq!(n.mux(t, a, b), a);
        assert_eq!(n.mux(f, a, b), b);
        assert_eq!(n.mux(s, a, a), a);
        assert_eq!(n.mux(s, t, f), s);
        // sel ? 0 : 1  == !sel
        let ns = n.not(s);
        assert_eq!(n.mux(s, f, t), ns);
    }

    #[test]
    fn constants_are_hash_consed() {
        let mut n = Netlist::new("t");
        let t1 = n.constant(true);
        let t2 = n.constant(true);
        let f1 = n.constant(false);
        assert_eq!(t1, t2);
        assert_ne!(t1, f1);
        assert_eq!(n.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate input")]
    fn duplicate_input_panics() {
        let mut n = Netlist::new("t");
        n.input("a");
        n.input("a");
    }

    #[test]
    fn placeholder_dff_lifecycle() {
        let mut n = Netlist::new("t");
        let ff = n.dff_placeholder(false);
        assert!(matches!(
            n.check_connected(),
            Err(RtlError::UnconnectedDff { .. })
        ));
        let nf = n.not(ff);
        n.connect_dff(ff, nf);
        assert!(n.check_connected().is_ok());
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut n = Netlist::new("t");
        let x = n.input("x");
        let ff = n.dff_placeholder(false);
        n.connect_dff(ff, x);
        n.connect_dff(ff, x);
    }

    #[test]
    fn input_word_names() {
        let mut n = Netlist::new("t");
        let w = n.input_word("byte", 8);
        assert_eq!(w.len(), 8);
        assert_eq!(n.find_input("byte[0]"), Some(w[0]));
        assert_eq!(n.find_input("byte[7]"), Some(w[7]));
        assert_eq!(n.find_input("byte[8]"), None);
    }

    #[test]
    fn fanout_counts_all_edge_kinds() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and_gate(a, b); // a, b each used once
        let q = n.dff(g, false); // g used by dff data edge
        let ng = n.not(g); // g used combinationally too
        n.output("q", q); // q used by output
        n.output("ng", ng);
        let counts = n.fanout_counts();
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[b.index()], 1);
        assert_eq!(counts[g.index()], 2, "dff d + not");
        assert_eq!(counts[q.index()], 1);
        assert_eq!(counts[ng.index()], 1);
    }

    #[test]
    fn topo_order_respects_comb_edges() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let g1 = n.and_gate(a, b);
        let g2 = n.or_gate(g1, a);
        let ff = n.dff(g2, false);
        let g3 = n.xor_gate(ff, b);
        n.output("y", g3);
        let order = n.comb_topo_order().expect("builder netlists are acyclic");
        assert_eq!(order.len(), n.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; n.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        // Every combinational operand settles before its user.
        for (id, node) in n.nodes() {
            for f in node.comb_fanin() {
                assert!(pos[f.index()] < pos[id.index()], "{f} before {id}");
            }
        }
        // The dff's data edge is sequential: no ordering constraint
        // between g2 and the ff is required, only that both appear.
        assert!(order.contains(&ff) && order.contains(&g2));
    }

    #[test]
    fn dump_contains_structure() {
        let mut n = Netlist::new("blk");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and_gate(a, b);
        n.output("y", y);
        let d = n.dump();
        assert!(d.contains("module blk"));
        assert!(d.contains("and"));
        assert!(d.contains("output y"));
    }

    #[test]
    fn display_is_informative() {
        let mut n = Netlist::new("blk");
        let a = n.input("a");
        let q = n.dff(a, false);
        n.output("q", q);
        let s = n.to_string();
        assert!(s.contains("blk") && s.contains("1 FFs"));
    }
}

//! Structural byte classification via a 256-entry lookup table.
//!
//! The hardware derives every structural fact (§III-C) from a handful of
//! byte comparisons that synthesis folds into one LUT stage. The software
//! equivalent is a single table lookup per byte: [`BYTE_CLASS`] maps each
//! byte to its [`ByteClass`], and all structural trackers (string mask,
//! nesting, comma detection) branch on the class instead of re-comparing
//! the byte against every special character.

/// The structural role of a byte outside string literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ByteClass {
    /// No structural meaning.
    Other = 0,
    /// `"` — string delimiter.
    Quote = 1,
    /// `\` — escape introducer (only meaningful inside strings).
    Backslash = 2,
    /// `{` or `[` — nesting opener.
    Open = 3,
    /// `}` or `]` — nesting closer.
    Close = 4,
    /// `,` — member/element separator.
    Comma = 5,
}

/// 256-entry byte → [`ByteClass`] table, the software image of the
/// hardware's byte-decode LUT stage.
pub const BYTE_CLASS: [ByteClass; 256] = {
    let mut table = [ByteClass::Other; 256];
    table[b'"' as usize] = ByteClass::Quote;
    table[b'\\' as usize] = ByteClass::Backslash;
    table[b'{' as usize] = ByteClass::Open;
    table[b'[' as usize] = ByteClass::Open;
    table[b'}' as usize] = ByteClass::Close;
    table[b']' as usize] = ByteClass::Close;
    table[b',' as usize] = ByteClass::Comma;
    table
};

/// The structural class of one byte.
#[inline]
pub fn classify(b: u8) -> ByteClass {
    BYTE_CLASS[b as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_specials() {
        assert_eq!(classify(b'"'), ByteClass::Quote);
        assert_eq!(classify(b'\\'), ByteClass::Backslash);
        assert_eq!(classify(b'{'), ByteClass::Open);
        assert_eq!(classify(b'['), ByteClass::Open);
        assert_eq!(classify(b'}'), ByteClass::Close);
        assert_eq!(classify(b']'), ByteClass::Close);
        assert_eq!(classify(b','), ByteClass::Comma);
    }

    #[test]
    fn every_other_byte_is_other() {
        let specials = [b'"', b'\\', b'{', b'[', b'}', b']', b','];
        for b in 0u16..256 {
            let b = b as u8;
            if !specials.contains(&b) {
                assert_eq!(classify(b), ByteClass::Other, "byte {b}");
            }
        }
    }
}

//! Streaming nesting-level tracking.
//!
//! §III-C of the paper: *"This sensitivity for nesting levels is achieved by
//! incrementing a counter with every `[`,`{` and decrementing it with every
//! `}`,`]`"* — counting only brackets **outside** string literals, which is
//! what [`crate::mask::StringMask`] provides.

use crate::mask::StringMask;

/// Byte-serial nesting-depth tracker (string-mask aware).
///
/// Depth convention: an opening bracket byte already belongs to the new
/// (deeper) level and a closing bracket byte still belongs to the level it
/// closes, so every byte from `{` to the matching `}` inclusive reports the
/// same depth.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::NestingTracker;
///
/// let mut t = NestingTracker::new();
/// let depths: Vec<u32> = br#"{"a":[1]}"#.iter().map(|&b| t.on_byte(b)).collect();
/// assert_eq!(depths, vec![1, 1, 1, 1, 1, 2, 2, 2, 1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NestingTracker {
    mask: StringMask,
    depth: u32,
}

impl NestingTracker {
    /// A tracker at depth 0, outside any string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte and returns the nesting depth that byte belongs
    /// to. Unmatched closing brackets saturate at depth 0 (malformed input
    /// cannot underflow the counter).
    pub fn on_byte(&mut self, b: u8) -> u32 {
        let masked = self.mask.on_byte(b);
        if masked {
            return self.depth;
        }
        match b {
            b'{' | b'[' => {
                self.depth += 1;
                self.depth
            }
            b'}' | b']' => {
                let d = self.depth;
                self.depth = self.depth.saturating_sub(1);
                d
            }
            _ => self.depth,
        }
    }

    /// Current depth (after all consumed bytes).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Is the current byte position inside a string literal?
    pub fn in_string(&self) -> bool {
        self.mask.in_string()
    }

    /// Record boundary: back to depth 0, outside strings.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Convenience: per-byte depths of a whole record.
    pub fn depths_of(input: &[u8]) -> Vec<u32> {
        let mut t = NestingTracker::new();
        input.iter().map(|&b| t.on_byte(b)).collect()
    }
}

/// Byte-serial detector for *unmasked* commas at a given depth — the
/// same-member (key/value co-occurrence) scope of §III-C: *"we just need to
/// check that the key RF and the value RF both appear before the same
/// unescaped comma"*.
#[derive(Debug, Clone, Default)]
pub struct MemberBoundary {
    tracker: NestingTracker,
}

impl MemberBoundary {
    /// New detector at depth 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte; returns `true` when the byte is a structural
    /// comma (or a structural closing bracket, which also terminates the
    /// last member of an object/array).
    pub fn on_byte(&mut self, b: u8) -> bool {
        let in_string_before = self.tracker.in_string();
        self.tracker.on_byte(b);
        if in_string_before || self.tracker.in_string() && b == b'"' {
            // byte inside (or opening) a string: never structural
            return false;
        }
        matches!(b, b',' | b'}' | b']')
    }

    /// Record boundary reset.
    pub fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_depths() {
        let d = NestingTracker::depths_of(br#"{"a":1}"#);
        assert_eq!(d, vec![1; 7]);
    }

    #[test]
    fn nested_example_from_listing1() {
        // Sketch of the SenML shape: {"e":[{...},{...}],"bt":1}
        let input = br#"{"e":[{"v":1},{"v":2}],"bt":3}"#;
        let d = NestingTracker::depths_of(input);
        assert_eq!(d[0], 1, "outer {{");
        assert_eq!(d[5], 2, "[ of the array");
        assert_eq!(d[6], 3, "{{ of the first measurement");
        assert_eq!(*d.last().unwrap(), 1, "outer }}");
        let mut t = NestingTracker::new();
        for &b in input {
            t.on_byte(b);
        }
        assert_eq!(t.depth(), 0, "balanced record returns to 0");
    }

    #[test]
    fn brackets_in_strings_do_not_count() {
        let input = br#"{"k":"}}]]"}"#;
        let mut t = NestingTracker::new();
        for &b in input {
            t.on_byte(b);
        }
        assert_eq!(t.depth(), 0);
        let d = NestingTracker::depths_of(input);
        assert!(d.iter().all(|&x| x <= 1));
    }

    #[test]
    fn underflow_saturates() {
        let mut t = NestingTracker::new();
        t.on_byte(b'}');
        t.on_byte(b']');
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn member_boundaries() {
        let input = br#"{"a":1,"b":"x,y"}"#;
        let mut m = MemberBoundary::new();
        let hits: Vec<usize> = input
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| m.on_byte(b).then_some(i))
            .collect();
        // The structural comma at index 6 and the closing brace; the comma
        // inside the string "x,y" is ignored.
        assert_eq!(hits, vec![6, 16]);
    }

    #[test]
    fn reset_restores_zero() {
        let mut t = NestingTracker::new();
        t.on_byte(b'{');
        t.on_byte(b'"');
        assert_eq!(t.depth(), 1);
        assert!(t.in_string());
        t.reset();
        assert_eq!(t.depth(), 0);
        assert!(!t.in_string());
    }
}

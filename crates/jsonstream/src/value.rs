//! JSON value model.

use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve member order (`Vec` of pairs) — raw filtering cares
/// about byte positions, and deterministic order keeps generated test
/// fixtures reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the reference CPU parsers the
    /// paper compares against).
    Number(f64),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match, document order).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view with string coercion: SenML (Listing 1 of the paper)
    /// stores measurements as *strings* (`"v":"35.2"`), and queries compare
    /// them numerically. Returns the number for `Number` values and for
    /// `String` values that parse as JSON numbers.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::String(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON (same syntax the writer emits).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::write::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn accessors() {
        let v = obj(&[
            ("n", Value::from("temperature")),
            ("v", Value::from("35.2")),
            ("raw", Value::from(7.5)),
            ("tags", [1i64, 2, 3].into_iter().collect()),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_str), Some("temperature"));
        assert_eq!(v.get("raw").and_then(Value::as_f64), Some(7.5));
        assert_eq!(
            v.get("v").and_then(Value::as_f64),
            None,
            "string is not f64"
        );
        assert_eq!(v.get("v").and_then(Value::as_numeric), Some(35.2));
        assert_eq!(
            v.get("tags").and_then(|t| t.index(1)),
            Some(&Value::Number(2.0))
        );
        assert_eq!(v.get("missing"), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn as_numeric_rejects_non_numbers() {
        assert_eq!(Value::from("temperature").as_numeric(), None);
        assert_eq!(Value::Bool(true).as_numeric(), None);
        assert_eq!(Value::from("12").as_numeric(), Some(12.0));
        assert_eq!(Value::from(" 3.5 ").as_numeric(), Some(3.5));
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = Value::Object(vec![
            ("k".into(), Value::from(1i64)),
            ("k".into(), Value::from(2i64)),
        ]);
        assert_eq!(v.get("k"), Some(&Value::Number(1.0)));
    }
}

//! SWAR (SIMD-within-a-register) word-level byte classification.
//!
//! The paper's FPGA derives every structural fact in one LUT stage per
//! byte; the software analogue of that spatial parallelism is word-level
//! parallelism. This module classifies 8 bytes per step from a `u64`
//! word using only safe integer arithmetic (the workspace forbids
//! `unsafe`, so no `std::arch` intrinsics): per-word bitmasks for
//! quotes, backslashes, openers/closers, commas and newlines, plus a
//! carry-aware resolution of the [`StringMask`](crate::StringMask)
//! automaton over a whole word at once.
//!
//! Bit `j` of every `u8` mask refers to byte `j` of the word in stream
//! order (words are loaded little-endian so lane order equals byte
//! order on every supported target).
//!
//! The equivalence contract — these masks agree bit-for-bit with the
//! byte-serial [`classify`](crate::classify::classify) LUT and
//! [`StringMask`](crate::StringMask) — is held by unit tests here and
//! the property tests in `tests/swar_equiv.rs`.

/// Bytes per SWAR word.
pub const WORD_BYTES: usize = 8;

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;

/// Loads 8 stream bytes into a word; lane `j` (bits `8j..8j+8`) is byte
/// `j` in stream order.
#[inline]
pub fn load_word(chunk: &[u8; 8]) -> u64 {
    u64::from_le_bytes(*chunk)
}

/// `0x80` in every lane of `w` whose byte is zero, `0x00` elsewhere.
///
/// Exact per-lane zero detection (Hacker's Delight): a lane is zero iff
/// its low 7 bits are zero (no carry out of `(w & LOW7) + LOW7`) *and*
/// its high bit is zero. No carry ever crosses a lane boundary, so —
/// unlike the classic `(w - LO) & !w & HI` — this form has no false
/// positives next to `0x01`/`0x00` lane pairs.
#[inline]
pub fn zero_bytes(w: u64) -> u64 {
    let carries = (w & LOW7) + LOW7;
    !(carries | w) & HI
}

/// `0x80` in every lane of `w` whose byte equals `b`.
#[inline]
pub fn eq_bytes(w: u64, b: u8) -> u64 {
    zero_bytes(w ^ (u64::from(b) * LO))
}

/// Collapses a per-lane high-bit mask (`0x80`/`0x00` lanes, as returned
/// by [`eq_bytes`]) into one bit per lane: bit `j` of the result is set
/// iff lane `j`'s high bit is.
///
/// The multiply gathers each lane's indicator bit into the top byte;
/// the 64 partial-product positions are pairwise distinct, so no carry
/// can corrupt bits 56..64.
#[inline]
pub fn high_bits_to_mask(m: u64) -> u8 {
    (((m >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56) as u8
}

/// One bit per lane of `w` whose byte equals `b` (bit `j` = byte `j`).
#[inline]
pub fn eq_mask(w: u64, b: u8) -> u8 {
    high_bits_to_mask(eq_bytes(w, b))
}

/// Per-word structural bitmasks — the SWAR image of the byte-class LUT
/// ([`BYTE_CLASS`](crate::classify::BYTE_CLASS)) plus the newline mask
/// used for framing. Bit `j` of each mask refers to byte `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordMasks {
    /// `"` bytes.
    pub quotes: u8,
    /// `\` bytes.
    pub backslashes: u8,
    /// `{` or `[` bytes.
    pub opens: u8,
    /// `}` or `]` bytes.
    pub closes: u8,
    /// `,` bytes.
    pub commas: u8,
    /// `\n` bytes.
    pub newlines: u8,
}

impl WordMasks {
    /// All bytes with any structural class (everything but
    /// [`ByteClass::Other`](crate::classify::ByteClass::Other)).
    #[inline]
    pub fn specials(&self) -> u8 {
        self.quotes | self.backslashes | self.opens | self.closes | self.commas
    }
}

/// Classifies all 8 bytes of a word at once; agrees bit-for-bit with
/// [`classify`](crate::classify::classify) per byte.
#[inline]
pub fn classify_word(w: u64) -> WordMasks {
    WordMasks {
        quotes: eq_mask(w, b'"'),
        backslashes: eq_mask(w, b'\\'),
        opens: high_bits_to_mask(eq_bytes(w, b'{') | eq_bytes(w, b'[')),
        closes: high_bits_to_mask(eq_bytes(w, b'}') | eq_bytes(w, b']')),
        commas: eq_mask(w, b','),
        newlines: eq_mask(w, b'\n'),
    }
}

/// The two state bits of the [`StringMask`](crate::StringMask)
/// automaton, carried between words.
///
/// Invariant (inherited from `StringMask`): `pending_escape` implies
/// `in_string` — an escape can only be pending inside a string literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StringState {
    /// Inside a string literal.
    pub in_string: bool,
    /// The next byte is escaped by a preceding `\`.
    pub pending_escape: bool,
}

/// Inclusive 8-bit prefix XOR: bit `j` of the result is the XOR of bits
/// `0..=j` of `m` (log-step Sklansky form).
#[inline]
fn prefix_xor(mut m: u8) -> u8 {
    m ^= m << 1;
    m ^= m << 2;
    m ^= m << 4;
    m
}

/// Resolves one word of the string-mask automaton: given the word's
/// quote and backslash masks and the carry-in state, returns the
/// per-byte *masked* bits (bit `j` set iff byte `j` is part of a string
/// literal) and the carry-out state — bit-identical to feeding the 8
/// bytes through [`StringMask::on_byte`](crate::StringMask::on_byte).
///
/// Fast path: a word with no backslashes and no pending escape toggles
/// the in-string state at every quote, so the per-byte state is a
/// prefix XOR of the quote mask. Otherwise the (rare) special positions
/// are stepped through the exact two-bit automaton — in particular a
/// backslash **outside** a string escapes nothing, which is where the
/// well-known simdjson backslash-run trick diverges from `StringMask`
/// on arbitrary byte soup.
#[inline]
pub fn string_mask_word(quotes: u8, backslashes: u8, state: StringState) -> (u8, StringState) {
    let carry = if state.in_string { 0xff } else { 0x00 };
    if backslashes == 0 && !state.pending_escape {
        // Every quote toggles; in-string-before is the exclusive prefix
        // XOR of the toggle mask, seeded with the carry.
        let before = (prefix_xor(quotes) << 1) ^ carry;
        let masked = before | quotes;
        let out = StringState {
            in_string: state.in_string ^ (quotes.count_ones() & 1 == 1),
            pending_escape: false,
        };
        return (masked, out);
    }
    // Exact automaton over the special positions only; ordinary bytes
    // cannot change the state (they at most consume a pending escape,
    // tracked by position).
    let mut in_s = state.in_string;
    let mut toggles: u8 = 0;
    // Position of the byte consumed by a pending escape; 9 = none
    // (a carry-in escape consumes byte 0).
    let mut esc_pos: u32 = if state.pending_escape { 0 } else { 9 };
    let mut specials = quotes | backslashes;
    while specials != 0 {
        let i = specials.trailing_zeros();
        specials &= specials - 1;
        if i == esc_pos {
            continue; // this special byte is escaped: no effect
        }
        if quotes & (1 << i) != 0 {
            in_s = !in_s;
            toggles |= 1 << i;
        } else if in_s {
            // Backslash inside a string escapes the next byte; outside
            // a string it is inert.
            esc_pos = i + 1;
        }
    }
    let before = (prefix_xor(toggles) << 1) ^ carry;
    // Quotes are always masked: opening (outside → inside), closing and
    // escaped quotes are all part of the literal.
    let masked = before | quotes;
    let out = StringState {
        in_string: in_s,
        pending_escape: esc_pos == 8,
    };
    (masked, out)
}

/// Index of the first occurrence of `needle` in `hay`, scanning 8 bytes
/// per step — the SWAR replacement for `iter().position(..)` in the
/// framing hot loops.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let mut chunks = hay.chunks_exact(WORD_BYTES);
    let mut offset = 0usize;
    for chunk in chunks.by_ref() {
        let w = load_word(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        let m = eq_bytes(w, needle);
        if m != 0 {
            // First matching lane j has bit 8j+7 set.
            return Some(offset + m.trailing_zeros() as usize / 8);
        }
        offset += WORD_BYTES;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| offset + p)
}

/// Whether `hay` contains `needle` as a contiguous substring —
/// SWAR-accelerated first-byte candidate scan plus verification, used
/// by the record-level literal prefilter. An empty needle is always
/// contained.
pub fn contains(hay: &[u8], needle: &[u8]) -> bool {
    match needle.len() {
        0 => true,
        1 => find_byte(hay, needle[0]).is_some(),
        n if n > hay.len() => false,
        n => {
            let first = needle[0];
            let last_start = hay.len() - n;
            let mut from = 0usize;
            while from <= last_start {
                match find_byte(&hay[from..=last_start], first) {
                    Some(p) => {
                        let pos = from + p;
                        if &hay[pos..pos + n] == needle {
                            return true;
                        }
                        from = pos + 1;
                    }
                    None => return false,
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ByteClass};
    use crate::StringMask;

    #[test]
    fn zero_bytes_is_exact_per_lane() {
        assert_eq!(zero_bytes(0), HI);
        assert_eq!(zero_bytes(u64::MAX), 0);
        // The classic borrow-propagating detector flags lane 1 of
        // 0x0100; the exact form must not (lane 1 holds 0x01 — only
        // lane 0 and the upper all-zero lanes report).
        assert_eq!(zero_bytes(0x0100), HI & !(0x80u64 << 8));
        for lane in 0..8 {
            for v in [0u64, 1, 0x7f, 0x80, 0xff] {
                let w = !(0xffu64 << (8 * lane)) | (v << (8 * lane));
                let expect = if v == 0 { 0x80u64 << (8 * lane) } else { 0 };
                assert_eq!(zero_bytes(w), expect, "lane {lane} value {v:#x}");
            }
        }
    }

    #[test]
    fn movemask_covers_every_single_lane() {
        for lane in 0..8 {
            let m = 0x80u64 << (8 * lane);
            assert_eq!(high_bits_to_mask(m), 1 << lane, "lane {lane}");
        }
        assert_eq!(high_bits_to_mask(HI), 0xff);
        assert_eq!(high_bits_to_mask(0), 0);
        // Arbitrary combinations: compare against the per-lane loop.
        for pattern in 0u16..256 {
            let mut m = 0u64;
            for lane in 0..8 {
                if pattern & (1 << lane) != 0 {
                    m |= 0x80u64 << (8 * lane);
                }
            }
            assert_eq!(high_bits_to_mask(m), pattern as u8, "pattern {pattern:#x}");
        }
    }

    #[test]
    fn classify_word_matches_lut_on_all_bytes() {
        // Every byte value, each in every lane position against a
        // neutral background.
        for b in 0u16..=255 {
            let b = b as u8;
            for lane in 0..8 {
                let mut chunk = [b'x'; 8];
                chunk[lane] = b;
                let masks = classify_word(load_word(&chunk));
                for (j, &byte) in chunk.iter().enumerate() {
                    let bit = 1u8 << j;
                    let class = classify(byte);
                    assert_eq!(masks.quotes & bit != 0, class == ByteClass::Quote);
                    assert_eq!(masks.backslashes & bit != 0, class == ByteClass::Backslash);
                    assert_eq!(masks.opens & bit != 0, class == ByteClass::Open);
                    assert_eq!(masks.closes & bit != 0, class == ByteClass::Close);
                    assert_eq!(masks.commas & bit != 0, class == ByteClass::Comma);
                    assert_eq!(masks.newlines & bit != 0, byte == b'\n');
                    assert_eq!(
                        masks.specials() & bit != 0,
                        class != ByteClass::Other,
                        "byte {byte:#x}"
                    );
                }
            }
        }
    }

    /// Scalar reference: run `StringMask` over the word, returning the
    /// per-byte mask bits and the carry-out state.
    fn scalar_string_mask(chunk: [u8; 8], state: StringState) -> (u8, StringState) {
        let mut m = StringMask::new();
        m.restore(state.in_string, state.pending_escape);
        let mut masked = 0u8;
        for (j, &b) in chunk.iter().enumerate() {
            if m.on_byte(b) {
                masked |= 1 << j;
            }
        }
        (
            masked,
            StringState {
                in_string: m.in_string(),
                pending_escape: m.pending_escape(),
            },
        )
    }

    fn assert_word_matches(chunk: [u8; 8], state: StringState) {
        let w = load_word(&chunk);
        let masks = classify_word(w);
        let got = string_mask_word(masks.quotes, masks.backslashes, state);
        let expect = scalar_string_mask(chunk, state);
        assert_eq!(
            got,
            expect,
            "chunk {:?} state {state:?}",
            String::from_utf8_lossy(&chunk)
        );
    }

    #[test]
    fn string_mask_word_matches_scalar_on_escape_zoo() {
        let states = [
            StringState::default(),
            StringState {
                in_string: true,
                pending_escape: false,
            },
            StringState {
                in_string: true,
                pending_escape: true,
            },
        ];
        let chunks: Vec<&[u8; 8]> = vec![
            b"abcdefgh",
            br#""a"b"c"d"#,
            br#"x\"y"z"w"#, // backslash OUTSIDE a string escapes nothing
            br#""a\"b\\""#,
            br"\\\\\\\\",
            br#""\\\\\\\"#, // escape chain ending at the word boundary
            br#"\"quoted"#,
            br#"{"k":"v""#,
            b"\xff\"\xfe\\\x80\"\x00\"",
        ];
        for chunk in chunks {
            for state in states {
                assert_word_matches(*chunk, state);
            }
        }
    }

    #[test]
    fn string_mask_word_carries_across_words_exhaustively() {
        // All 4^8 words over the alphabet {quote, backslash, 'a', 'Z'}
        // chained two words deep from every start state — the escape
        // and quote interactions this small alphabet generates cover
        // every transition of the automaton, including carries.
        let alphabet = [b'"', b'\\', b'a', b'Z'];
        for code in 0u32..4u32.pow(8) {
            let mut chunk = [0u8; 8];
            let mut c = code;
            for slot in &mut chunk {
                *slot = alphabet[(c & 3) as usize];
                c >>= 2;
            }
            let mut state = StringState::default();
            for _ in 0..2 {
                let w = load_word(&chunk);
                let masks = classify_word(w);
                let (got_mask, got_state) =
                    string_mask_word(masks.quotes, masks.backslashes, state);
                let (want_mask, want_state) = scalar_string_mask(chunk, state);
                assert_eq!(
                    (got_mask, got_state),
                    (want_mask, want_state),
                    "chunk {:?} state {state:?}",
                    String::from_utf8_lossy(&chunk)
                );
                state = got_state;
            }
        }
    }

    #[test]
    fn find_byte_matches_position() {
        let hay = b"{\"a\":1}\r\n{\"b\":2}\n tail without newline";
        for needle in [b'\n', b'\r', b'"', b'z', b'{', b' '] {
            assert_eq!(
                find_byte(hay, needle),
                hay.iter().position(|&b| b == needle),
                "needle {needle:#x}"
            );
        }
        for len in 0..hay.len() {
            assert_eq!(
                find_byte(&hay[..len], b'\n'),
                hay[..len].iter().position(|&b| b == b'\n'),
                "prefix {len}"
            );
        }
        assert_eq!(find_byte(b"", b'\n'), None);
    }

    #[test]
    fn contains_matches_windows_scan() {
        let hay: &[u8] = br#"{"name":"temperature","value":35.2}"#;
        let needles: Vec<&[u8]> = vec![
            b"",
            b"t",
            b"temperature",
            b"35.2}",
            br#"{"name"#,
            b"humidity",
            b"temperaturf",
            br#"{"name":"temperature","value":35.2}"#,
            br#"{"name":"temperature","value":35.2}x"#,
        ];
        for needle in needles {
            let expect = needle.is_empty()
                || (needle.len() <= hay.len() && hay.windows(needle.len()).any(|w| w == needle));
            assert_eq!(
                contains(hay, needle),
                expect,
                "needle {:?}",
                String::from_utf8_lossy(needle)
            );
        }
    }
}

//! Streaming string-mask detection.
//!
//! The paper (§III-C): *"it's necessary to detect if a bracket is part of a
//! string … Detecting strings, however, requires checking if a quote `"` is
//! escaped by a `\` character. And `\` can again be escaped by `\\`. This
//! information can then be used to build a string mask."*
//!
//! [`StringMask`] is that logic, byte-serial exactly like the hardware:
//! two bits of state (inside-string, pending-escape).

/// Byte-serial string-mask tracker.
///
/// A byte is **masked** when it belongs to a string literal — including
/// both the opening and the closing quote — and must therefore be ignored
/// by structural logic (bracket counting, comma detection).
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::StringMask;
///
/// let mut m = StringMask::new();
/// let masked: Vec<bool> = br#"{"a":1}"#.iter().map(|&b| m.on_byte(b)).collect();
/// assert_eq!(masked, vec![false, true, true, true, false, false, false]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringMask {
    in_string: bool,
    escaped: bool,
}

impl StringMask {
    /// A tracker in the initial (outside any string) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte; returns `true` if that byte is part of a string
    /// literal (masked).
    #[inline]
    pub fn on_byte(&mut self, b: u8) -> bool {
        if self.in_string {
            if self.escaped {
                self.escaped = false;
            } else if b == b'\\' {
                self.escaped = true;
            } else if b == b'"' {
                self.in_string = false;
            }
            true
        } else {
            if b == b'"' {
                self.in_string = true;
                return true; // the opening quote is part of the literal
            }
            false
        }
    }

    /// Is the tracker currently inside a string literal?
    pub fn in_string(&self) -> bool {
        self.in_string
    }

    /// Is the next byte escaped by a preceding `\`? (Only ever `true`
    /// inside a string literal.)
    pub fn pending_escape(&self) -> bool {
        self.escaped
    }

    /// Restores the tracker to an explicit state — the hand-off point
    /// for block-scan paths ([`crate::swar`]) that resolve whole words
    /// of the automaton at once and then re-sync the byte-serial
    /// tracker at a word boundary.
    ///
    /// `pending_escape` without `in_string` is not a reachable state of
    /// the automaton (escapes only pend inside strings) and is ignored.
    pub fn restore(&mut self, in_string: bool, pending_escape: bool) {
        self.in_string = in_string;
        self.escaped = pending_escape && in_string;
    }

    /// Returns to the initial state (record boundary).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Batch form of [`StringMask::on_byte`]: scans `input` in one pass,
    /// appending one mask bit per byte to `out`, so callers can reuse one
    /// buffer across records instead of allocating per scan.
    ///
    /// State carries over between calls exactly as with repeated
    /// `on_byte`, so a string literal split across two scans stays masked.
    ///
    /// # Example
    ///
    /// ```
    /// use rfjson_jsonstream::StringMask;
    ///
    /// let mut m = StringMask::new();
    /// let mut mask = Vec::new();
    /// m.scan(br#"{"a":1}"#, &mut mask);
    /// assert_eq!(mask, StringMask::mask_of(br#"{"a":1}"#));
    /// ```
    pub fn scan(&mut self, input: &[u8], out: &mut Vec<bool>) {
        out.reserve(input.len());
        for &b in input {
            out.push(self.on_byte(b));
        }
    }

    /// Convenience: the mask of every byte of `input`.
    pub fn mask_of(input: &[u8]) -> Vec<bool> {
        let mut m = StringMask::new();
        let mut out = Vec::with_capacity(input.len());
        m.scan(input, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_string_region() {
        let mask = StringMask::mask_of(br#"x"ab"y"#);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn escaped_quote_stays_inside() {
        //           " a \ " b "
        let mask = StringMask::mask_of(br#""a\"b""#);
        assert_eq!(mask, vec![true; 6]);
        let mut m = StringMask::new();
        for &b in br#""a\"b""# {
            m.on_byte(b);
        }
        assert!(!m.in_string(), "string closed at the real quote");
    }

    #[test]
    fn escaped_backslash_then_quote_closes() {
        // "a\\" — the backslash is escaped, so the final quote closes.
        let input = br#""a\\""#;
        let mask = StringMask::mask_of(input);
        assert_eq!(mask, vec![true; 5]);
        let mut m = StringMask::new();
        for &b in input {
            m.on_byte(b);
        }
        assert!(!m.in_string());
    }

    #[test]
    fn brackets_inside_strings_are_masked() {
        let input = br#"{"k":"{[}]","n":1}"#;
        let mask = StringMask::mask_of(input);
        // Positions of the structural braces: first and last byte.
        assert!(!mask[0]);
        assert!(!mask[input.len() - 1]);
        // The bracket characters inside the value string are masked.
        let inner = &input[5..11]; // "{[}]"
        assert_eq!(inner[0], b'"');
        for (i, _) in inner.iter().enumerate() {
            assert!(mask[5 + i], "byte {} should be masked", 5 + i);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut m = StringMask::new();
        m.on_byte(b'"');
        assert!(m.in_string());
        m.reset();
        assert!(!m.in_string());
        assert!(!m.on_byte(b'x'));
    }

    #[test]
    fn scan_carries_state_across_calls() {
        let mut m = StringMask::new();
        let mut out = Vec::new();
        // Split a record mid-string: the second chunk starts masked.
        m.scan(br#"{"ke"#, &mut out);
        m.scan(br#"y":1}"#, &mut out);
        assert_eq!(out, StringMask::mask_of(br#"{"key":1}"#));
    }

    #[test]
    fn scan_appends_without_clearing() {
        let mut m = StringMask::new();
        let mut out = vec![true];
        m.scan(b"x", &mut out);
        assert_eq!(out, vec![true, false], "existing entries preserved");
    }

    #[test]
    fn long_escape_chains() {
        // Even numbers of backslashes don't escape the closing quote;
        // odd numbers do.
        for (s, closed) in [
            (&br#""\\""#[..], true), // "\\"  -> closed
            (br#""\\\""#, false),    // "\\\" -> still open (quote escaped)
            (br#""\\\\""#, true),    // "\\\\" -> closed
        ] {
            let mut m = StringMask::new();
            for &b in s {
                m.on_byte(b);
            }
            assert_eq!(!m.in_string(), closed, "input {s:?}");
        }
    }
}

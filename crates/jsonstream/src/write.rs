//! Compact JSON serialisation (used by the workload generators and for
//! `Value` round-trip tests).

use crate::value::Value;
use std::fmt::Write;

/// Serialises `value` as compact JSON (no insignificant whitespace).
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::{parse, write::to_string};
///
/// let v = parse(br#"{ "a" : [ 1 , "x" ] }"#)?;
/// assert_eq!(to_string(&v), r#"{"a":[1,"x"]}"#);
/// # Ok::<(), rfjson_jsonstream::ParseJsonError>(())
/// ```
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

/// Writes a number the way JSON sources usually carry it: integral values
/// without a fraction, others in shortest round-trip form.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; degrade gracefully
        return;
    }
    // Exact trunc comparison is deliberate: "is this f64 an integer".
    #[allow(clippy::float_cmp)]
    let integral = n == n.trunc() && n.abs() < 9.007_199_254_740_992e15;
    if integral {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a string literal with minimal escaping.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_structures() {
        for src in [
            r#"{"a":[1,2,{"b":"x"}],"c":null,"d":true}"#,
            r"[]",
            r"{}",
            r#"{"v":"35.2","u":"far","n":"temperature"}"#,
            r"[0.5,-3,1e30]",
        ] {
            let v = parse(src.as_bytes()).unwrap();
            let s = to_string(&v);
            let v2 = parse(s.as_bytes()).unwrap();
            assert_eq!(v, v2, "round trip of {src}");
        }
    }

    #[test]
    fn escapes_are_emitted() {
        let v = Value::from("a\"b\\c\nd\u{0001}");
        let s = to_string(&v);
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(s.as_bytes()).unwrap(), v);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(
            to_string(&Value::Number(1_422_748_800_000.0)),
            "1422748800000"
        );
        assert_eq!(to_string(&Value::Number(0.5)), "0.5");
        assert_eq!(to_string(&Value::Number(-7.0)), "-7");
    }

    #[test]
    fn nonfinite_degrades_to_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn display_uses_writer() {
        let v = parse(br#"{"a":1}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":1}"#);
    }
}

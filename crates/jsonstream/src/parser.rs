//! Recursive-descent JSON parser — the "costly CPU parse" raw filtering
//! avoids, and the ground-truth oracle for false-positive measurement.
//!
//! Strict RFC 8259 syntax: no trailing commas, no comments, numbers without
//! leading zeros, `\uXXXX` escapes with surrogate pairs.

use crate::value::Value;
use std::error::Error;
use std::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset at which parsing failed.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseJsonError {}

/// Parses one complete JSON document from `input`.
///
/// # Errors
///
/// Returns [`ParseJsonError`] on any syntax violation, including trailing
/// non-whitespace input.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::{parse, Value};
///
/// let v = parse(br#"{"v":"35.2","n":"temperature"}"#)?;
/// assert_eq!(v.get("n").and_then(Value::as_str), Some("temperature"));
/// # Ok::<(), rfjson_jsonstream::ParseJsonError>(())
/// ```
pub fn parse(input: &[u8]) -> Result<Value, ParseJsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseJsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword(b"true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword(b"false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_keyword(&mut self, word: &[u8], value: Value) -> Result<Value, ParseJsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!(
                "invalid literal, expected `{}`",
                String::from_utf8_lossy(word)
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err("unterminated escape")),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..=0xDBFF).contains(&cp) {
                            // High surrogate: require a following \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad code point"))?);
                        } else if (0xDC00..=0xDFFF).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                    }
                    Some(c) => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Copy UTF-8 bytes through (validated lazily).
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if len == 0 || start + len > self.input.len() {
                        return Err(self.err("invalid utf-8"));
                    }
                    let chunk = &self.input[start..start + len];
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let x = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a' + 10),
                b'A'..=b'F' => u32::from(d - b'A' + 10),
                _ => return Err(self.err("bad hex digit")),
            };
            v = v << 4 | x;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("invalid number"));
            }
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF4 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse(b"null").unwrap(), Value::Null);
        assert_eq!(parse(b"true").unwrap(), Value::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Value::Bool(false));
        assert_eq!(parse(b"42").unwrap(), Value::Number(42.0));
        assert_eq!(parse(b"-3.5").unwrap(), Value::Number(-3.5));
        assert_eq!(parse(b"2.1e3").unwrap(), Value::Number(2100.0));
        assert_eq!(parse(b"1E-2").unwrap(), Value::Number(0.01));
        assert_eq!(parse(br#""hi""#).unwrap(), Value::from("hi"));
    }

    #[test]
    fn listing1_record_parses() {
        // The running example of the paper (shortened).
        let rec = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"}],"bt":1422748800000}"#;
        let v = parse(rec).unwrap();
        let e = v.get("e").and_then(Value::as_array).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].get("n").and_then(Value::as_str), Some("temperature"));
        assert_eq!(e[0].get("v").and_then(Value::as_numeric), Some(35.2));
        assert_eq!(
            v.get("bt").and_then(Value::as_f64),
            Some(1_422_748_800_000.0)
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(br#""a\"b\\c\/d\n\t""#).unwrap(),
            Value::from("a\"b\\c/d\n\t")
        );
        assert_eq!(parse(br#""A""#).unwrap(), Value::from("A"));
        assert_eq!(parse("\"é\"".as_bytes()).unwrap(), Value::from("é"));
        // Surrogate pair escape for U+1F600 and the raw UTF-8 form.
        assert_eq!(parse(br#""\ud83d\ude00""#).unwrap(), Value::from("😀"));
        assert_eq!(parse("\"😀\"".as_bytes()).unwrap(), Value::from("😀"));
    }

    #[test]
    fn escape_errors() {
        assert!(parse(br#""\x""#).is_err());
        assert!(parse(br#""\u12"#).is_err());
        assert!(parse(br#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(parse(br#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse(b"\"abc").is_err(), "unterminated");
    }

    #[test]
    fn number_syntax_strictness() {
        assert!(parse(b"01").is_err(), "leading zero");
        assert!(parse(b"1.").is_err());
        assert!(parse(b".5").is_err());
        assert!(parse(b"1e").is_err());
        assert!(parse(b"+1").is_err());
        assert!(parse(b"--1").is_err());
        assert_eq!(parse(b"0.5").unwrap(), Value::Number(0.5));
        assert_eq!(parse(b"0").unwrap(), Value::Number(0.0));
    }

    #[test]
    fn structural_errors() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1,").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(br#"{"a" 1}"#).is_err());
        assert!(parse(br#"{"a":1,}"#).is_err());
        assert!(parse(b"[] []").is_err(), "trailing tokens");
        assert!(parse(b"").is_err());
        let e = parse(b"[1,]").unwrap_err();
        assert!(e.position > 0 && e.to_string().contains("byte"));
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(b" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.index(1)),
            Some(&Value::Number(2.0))
        );
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('[');
        }
        s.push('1');
        for _ in 0..100 {
            s.push(']');
        }
        let mut v = parse(s.as_bytes()).unwrap();
        for _ in 0..100 {
            v = v.index(0).unwrap().clone();
        }
        assert_eq!(v, Value::Number(1.0));
    }

    #[test]
    fn control_chars_rejected() {
        assert!(parse(b"\"a\nb\"").is_err());
        assert!(parse(b"\"a\tb\"").is_err());
    }
}

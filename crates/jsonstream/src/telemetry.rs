//! Framing telemetry: per-stream tallies flushed into the global
//! [`rfjson_telemetry`] registry.
//!
//! The stream drivers in `rfjson-core` accumulate framing facts in a
//! plain [`FramingTally`] — local `u64` adds, no atomics — and flush
//! once per stream. That keeps the per-record hot path free of shared
//! writes while still surfacing the anomalies the runtime cares about:
//! quarantined records (by [`SkipReason`][crate::SkipReason]), blank
//! separator lines, and CR-terminated records.
//!
//! Metric names (all counters):
//!
//! | name                               | meaning                              |
//! |------------------------------------|--------------------------------------|
//! | `framing.records`                  | non-blank records framed             |
//! | `framing.blank_lines`              | blank/CR-only separator lines        |
//! | `framing.cr_records`               | records with a trailing CR trimmed   |
//! | `framing.quarantined.too_long`     | records skipped for byte-length      |
//! | `framing.quarantined.record_limit` | records skipped past the budget      |

use rfjson_telemetry::Counter;
use std::sync::OnceLock;

use crate::SkipReason;

/// Cached `&'static` handles to the `framing.*` counters (one registry
/// lookup per process, plain atomic adds after).
struct FramingMetrics {
    records: &'static Counter,
    blank_lines: &'static Counter,
    cr_records: &'static Counter,
    quarantined_too_long: &'static Counter,
    quarantined_record_limit: &'static Counter,
}

fn metrics() -> &'static FramingMetrics {
    static METRICS: OnceLock<FramingMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FramingMetrics {
        records: rfjson_telemetry::counter("framing.records"),
        blank_lines: rfjson_telemetry::counter("framing.blank_lines"),
        cr_records: rfjson_telemetry::counter("framing.cr_records"),
        quarantined_too_long: rfjson_telemetry::counter("framing.quarantined.too_long"),
        quarantined_record_limit: rfjson_telemetry::counter("framing.quarantined.record_limit"),
    })
}

/// Per-stream framing tally: plain local counters a stream driver
/// accumulates into and [`flush`][FramingTally::flush]es once at end of
/// stream. Zero-cost to carry when nothing fires; one batch of relaxed
/// atomic adds per stream when flushed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FramingTally {
    /// Non-blank records framed (quarantined or not).
    pub records: u64,
    /// Blank / CR-only separator lines skipped.
    pub blank_lines: u64,
    /// Records whose trailing CR was trimmed.
    pub cr_records: u64,
    /// Records quarantined as [`SkipReason::TooLong`].
    pub quarantined_too_long: u64,
    /// Records quarantined as [`SkipReason::RecordLimit`].
    pub quarantined_record_limit: u64,
}

impl FramingTally {
    /// A fresh all-zero tally.
    pub fn new() -> FramingTally {
        FramingTally::default()
    }

    /// Counts one quarantined record by reason (the record itself is
    /// also counted via [`records`][FramingTally::records] by the
    /// caller).
    pub fn quarantine(&mut self, reason: &SkipReason) {
        match reason {
            SkipReason::TooLong { .. } => self.quarantined_too_long += 1,
            SkipReason::RecordLimit { .. } => self.quarantined_record_limit += 1,
        }
    }

    /// Adds the tally to the global `framing.*` counters and zeroes it.
    /// No-op (and no registry touch) when every field is zero — or when
    /// built with `telemetry-off`, where the counter adds vanish.
    pub fn flush(&mut self) {
        let t = std::mem::take(self);
        if t.records == 0
            && t.blank_lines == 0
            && t.cr_records == 0
            && t.quarantined_too_long == 0
            && t.quarantined_record_limit == 0
        {
            return;
        }
        let m = metrics();
        m.records.add(t.records);
        m.blank_lines.add(t.blank_lines);
        m.cr_records.add(t.cr_records);
        m.quarantined_too_long.add(t.quarantined_too_long);
        m.quarantined_record_limit.add(t.quarantined_record_limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_moves_tally_into_registry() {
        let before = rfjson_telemetry::registry().snapshot();
        let mut t = FramingTally::new();
        t.records += 3;
        t.blank_lines += 1;
        t.cr_records += 2;
        t.quarantine(&SkipReason::TooLong {
            limit: 8,
            actual: 9,
        });
        t.quarantine(&SkipReason::RecordLimit { limit: 2 });
        t.quarantine(&SkipReason::RecordLimit { limit: 2 });
        t.flush();
        assert_eq!(t.records, 0, "flush drains the tally");
        let delta = rfjson_telemetry::registry().snapshot().delta(&before);
        if rfjson_telemetry::ENABLED {
            assert_eq!(delta.counter("framing.records"), 3);
            assert_eq!(delta.counter("framing.blank_lines"), 1);
            assert_eq!(delta.counter("framing.cr_records"), 2);
            assert_eq!(delta.counter("framing.quarantined.too_long"), 1);
            assert_eq!(delta.counter("framing.quarantined.record_limit"), 2);
        } else {
            assert_eq!(delta.counter("framing.records"), 0);
        }
    }
}

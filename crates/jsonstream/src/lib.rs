//! # rfjson-jsonstream — streaming JSON substrate and reference parser
//!
//! Raw filters inspect JSON **as a byte stream**, without parsing. The two
//! stream-level facts the paper's structural awareness needs (§III-C) are
//! provided here exactly as the hardware derives them:
//!
//! * [`mask::StringMask`] — which bytes lie inside string literals
//!   (quote/escape/escaped-escape tracking, one byte per cycle);
//! * [`nesting::NestingTracker`] — the JSON nesting level, counting only
//!   *unmasked* brackets.
//!
//! The crate also contains the very thing raw filtering protects the CPU
//! from running too often: a complete recursive-descent JSON parser
//! ([`parser`], [`value::Value`]) used as the ground-truth oracle for
//! false-positive measurement and as the downstream "costly parse" in the
//! end-to-end benchmarks, plus a writer ([`mod@write`]) used by the workload
//! generators, and record framing ([`frame`]) for newline-delimited streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod frame;
pub mod mask;
pub mod nesting;
pub mod parser;
pub mod swar;
pub mod telemetry;
pub mod value;
pub mod write;

pub use classify::{classify, ByteClass, BYTE_CLASS};
pub use frame::{
    shard_ranges, ChunkFramer, FrameAction, FrameAssembler, IngestLimits, LimitedFramer,
    SkipReason, Verdict,
};
pub use mask::StringMask;
pub use nesting::NestingTracker;
pub use parser::{parse, ParseJsonError};
pub use value::Value;

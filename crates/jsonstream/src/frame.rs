//! Record framing for newline-delimited JSON streams — the **single
//! source of truth** for the framing rules every execution path shares.
//!
//! RiotBench (and most IoT ingestion paths) stream one JSON record per
//! line. The raw-filter hardware needs the same framing to know when to
//! reset per-record state, the software backends need it to emit one
//! decision per record, and the sharded runtime needs it to split a
//! buffer at record boundaries. If any of those disagreed on CR
//! handling, blank lines, or the trailing record, their decision vectors
//! would diverge — so the rules live exactly once, here:
//!
//! * `\n` separates records;
//! * one CR immediately before the LF is framing, not content
//!   ([`trim_cr`]);
//! * a line whose bytes are all `\r` (in particular an empty line) is
//!   **blank** and produces no record and no decision
//!   ([`is_blank_line`]);
//! * a trailing record without a final `\n` still counts.
//!
//! Three views of the same rules are provided: slice-level
//! ([`split_records`]), chunk-streaming ([`FrameAssembler`]), and
//! byte-serial ([`ChunkFramer`] — what the filter-backend stream drivers
//! in `rfjson-core` consume). [`shard_ranges`] partitions a buffer at
//! record boundaries for the parallel runtime. Their equivalence is held
//! by the cross-impl tests in the root crate (`tests/framing_equiv.rs`).

use core::ops::Range;

/// Strips the single framing CR before an LF (CRLF line endings).
/// Interior CRs — and any further trailing CRs — are record content.
#[inline]
pub fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// A line that produces no record: empty, or nothing but CR bytes
/// (framing debris such as a stray `\r\r\n`, never record content).
#[inline]
pub fn is_blank_line(line: &[u8]) -> bool {
    line.iter().all(|&b| b == b'\r')
}

/// Iterator over the records of a newline-delimited JSON byte stream.
/// Blank lines are skipped; the trailing record does not need a newline.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::split_records;
///
/// let stream = b"{\"a\":1}\n\n{\"a\":2}";
/// let recs: Vec<&[u8]> = split_records(stream).collect();
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[1], br#"{"a":2}"#);
/// ```
pub fn split_records(stream: &[u8]) -> impl Iterator<Item = &[u8]> {
    stream
        .split(|&b| b == b'\n')
        .filter(|line| !is_blank_line(line))
        .map(trim_cr)
}

/// What one byte means for record framing (returned by
/// [`ChunkFramer::on_byte`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// The byte belongs to the current (possibly still blank) line.
    Feed,
    /// The byte is a separator ending a non-blank record: emit the
    /// record/decision, then reset per-record state.
    EndRecord,
    /// The byte is a separator after a blank line: reset, emit nothing.
    EndBlank,
}

/// Byte-serial framing state machine — the canonical encoding of the
/// framing rules, driven one byte at a time alongside a filter.
///
/// The filter-backend stream drivers feed every byte to both the filter
/// and the framer; the framer says when a decision is due. At
/// end-of-stream, [`ChunkFramer::finish`] reports whether an unclosed
/// trailing record remains (the driver then supplies the `\n` the
/// hardware would see).
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::{ChunkFramer, FrameAction};
///
/// let mut framer = ChunkFramer::new();
/// let actions: Vec<FrameAction> =
///     b"a\n\nb".iter().map(|&b| framer.on_byte(b)).collect();
/// assert_eq!(
///     actions,
///     vec![
///         FrameAction::Feed,
///         FrameAction::EndRecord,
///         FrameAction::EndBlank,
///         FrameAction::Feed,
///     ]
/// );
/// assert!(framer.finish(), "trailing `b` is an unclosed record");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkFramer {
    saw_content: bool,
}

impl ChunkFramer {
    /// Fresh framer at a record boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte and classifies it.
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> FrameAction {
        if byte == b'\n' {
            if core::mem::take(&mut self.saw_content) {
                FrameAction::EndRecord
            } else {
                FrameAction::EndBlank
            }
        } else {
            if byte != b'\r' {
                self.saw_content = true;
            }
            FrameAction::Feed
        }
    }

    /// End of stream: returns `true` (and resets) if a non-blank record
    /// is still open — a trailing record without a separator.
    #[inline]
    pub fn finish(&mut self) -> bool {
        core::mem::take(&mut self.saw_content)
    }

    /// Whether a non-blank record is currently open.
    pub fn has_open_record(&self) -> bool {
        self.saw_content
    }

    /// Back to a record boundary.
    pub fn reset(&mut self) {
        self.saw_content = false;
    }
}

/// Streaming version of [`split_records`]: feed arbitrary chunks, get
/// complete records out. Used by the system-architecture model, which
/// receives DMA bursts rather than whole files.
#[derive(Debug, Default, Clone)]
pub struct FrameAssembler {
    framer: ChunkFramer,
    pending: Vec<u8>,
}

impl FrameAssembler {
    /// New assembler with no pending bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes a chunk, invoking `sink` for every completed record.
    pub fn push_chunk(&mut self, chunk: &[u8], mut sink: impl FnMut(&[u8])) {
        for &b in chunk {
            match self.framer.on_byte(b) {
                FrameAction::Feed => self.pending.push(b),
                FrameAction::EndRecord => {
                    sink(trim_cr(&self.pending));
                    self.pending.clear();
                }
                FrameAction::EndBlank => self.pending.clear(),
            }
        }
    }

    /// Flushes the trailing record (stream end without newline).
    pub fn finish(&mut self, mut sink: impl FnMut(&[u8])) {
        if self.framer.finish() {
            sink(trim_cr(&self.pending));
        }
        self.pending.clear();
    }

    /// Bytes buffered awaiting a newline.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Partitions `stream` into at most `shards` contiguous byte ranges that
/// cover it exactly, cutting **only immediately after a `\n`** — so each
/// range is a self-contained NDJSON sub-stream: every shard starts at a
/// record boundary, and only the final shard can hold an unterminated
/// trailing record.
///
/// Ranges are returned in stream order and are never empty; if the
/// stream has fewer separators than `shards - 1`, fewer ranges come
/// back (one, in the degenerate single-record case). An empty stream
/// yields no ranges.
///
/// This is the seam the sharded parallel runtime
/// (`rfjson-runtime`) splits work on: running any byte-serial filter
/// over each range independently and concatenating the per-range
/// decision vectors is byte-for-byte identical to the serial pass,
/// because the serial filter is freshly reset right after every `\n`.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::shard_ranges;
///
/// let stream = b"{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
/// let ranges = shard_ranges(stream, 2);
/// assert_eq!(ranges.len(), 2);
/// assert_eq!(ranges[0].start, 0);
/// assert_eq!(ranges.last().unwrap().end, stream.len());
/// // Every cut happens right after a newline.
/// for r in &ranges[..ranges.len() - 1] {
///     assert_eq!(stream[r.end - 1], b'\n');
/// }
/// ```
pub fn shard_ranges(stream: &[u8], shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    if stream.is_empty() {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for k in 1..shards {
        let ideal = stream.len() * k / shards;
        if ideal <= start {
            continue;
        }
        // Cut right after the first separator at or beyond the ideal
        // point (the separator byte stays in the left shard).
        match stream[ideal..].iter().position(|&b| b == b'\n') {
            Some(p) => {
                let cut = ideal + p + 1;
                if cut > start && cut < stream.len() {
                    ranges.push(start..cut);
                    start = cut;
                }
            }
            None => break, // no more separators: the rest is one shard
        }
    }
    ranges.push(start..stream.len());
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_basic() {
        let recs: Vec<&[u8]> = split_records(b"a\nbb\nccc\n").collect();
        assert_eq!(recs, vec![&b"a"[..], b"bb", b"ccc"]);
    }

    #[test]
    fn split_handles_missing_trailing_newline_and_crlf() {
        let recs: Vec<&[u8]> = split_records(b"a\r\nb").collect();
        assert_eq!(recs, vec![&b"a"[..], b"b"]);
    }

    #[test]
    fn split_skips_empty_lines() {
        let recs: Vec<&[u8]> = split_records(b"\n\na\n\n\nb\n\n").collect();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn cr_only_lines_are_blank() {
        // An all-CR line is framing debris, not a record — the same rule
        // the byte-serial stream drivers apply.
        let recs: Vec<&[u8]> = split_records(b"\r\n\r\r\na\r\n").collect();
        assert_eq!(recs, vec![&b"a"[..]]);
        let mut asm = FrameAssembler::new();
        let mut got = 0;
        asm.push_chunk(b"\r\n\r\r\na\r\n", |_| got += 1);
        asm.finish(|_| got += 1);
        assert_eq!(got, 1);
    }

    #[test]
    fn framer_actions_and_finish() {
        let mut f = ChunkFramer::new();
        assert_eq!(f.on_byte(b'\r'), FrameAction::Feed);
        assert!(!f.has_open_record(), "CR alone opens no record");
        assert_eq!(f.on_byte(b'\n'), FrameAction::EndBlank);
        assert_eq!(f.on_byte(b'x'), FrameAction::Feed);
        assert!(f.has_open_record());
        assert_eq!(f.on_byte(b'\n'), FrameAction::EndRecord);
        assert!(!f.finish(), "no trailing record after a separator");
        f.on_byte(b'y');
        assert!(f.finish(), "trailing record without separator");
        assert!(!f.finish(), "finish resets");
    }

    #[test]
    fn assembler_reassembles_across_chunks() {
        let stream = b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}";
        for chunk_size in [1, 2, 3, 5, 7, 100] {
            let mut asm = FrameAssembler::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                asm.push_chunk(chunk, |r| got.push(r.to_vec()));
            }
            asm.finish(|r| got.push(r.to_vec()));
            assert_eq!(
                got,
                vec![
                    br#"{"a":1}"#.to_vec(),
                    br#"{"b":2}"#.to_vec(),
                    br#"{"c":3}"#.to_vec()
                ],
                "chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn assembler_pending_accounting() {
        let mut asm = FrameAssembler::new();
        asm.push_chunk(b"abc", |_| panic!("no record yet"));
        assert_eq!(asm.pending_len(), 3);
        let mut n = 0;
        asm.push_chunk(b"\n", |_| n += 1);
        assert_eq!(n, 1);
        assert_eq!(asm.pending_len(), 0);
        asm.finish(|_| panic!("nothing pending"));
    }

    /// Every split decomposition must cover the stream exactly, cut only
    /// after separators, and preserve the record sequence.
    fn assert_valid_sharding(stream: &[u8], shards: usize) {
        let ranges = shard_ranges(stream, shards);
        assert!(ranges.len() <= shards.max(1));
        if stream.is_empty() {
            assert!(ranges.is_empty());
            return;
        }
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, stream.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile the stream");
            assert_eq!(stream[w[0].end - 1], b'\n', "cuts only after newlines");
        }
        for r in &ranges {
            assert!(r.start < r.end, "no empty shard ranges");
        }
        // Record sequence is preserved.
        let serial: Vec<&[u8]> = split_records(stream).collect();
        let sharded: Vec<&[u8]> = ranges
            .iter()
            .flat_map(|r| split_records(&stream[r.clone()]))
            .collect();
        assert_eq!(serial, sharded, "shards {shards}");
    }

    #[test]
    fn shard_ranges_tile_and_preserve_records() {
        let streams: Vec<&[u8]> = vec![
            b"",
            b"x",
            b"{\"a\":1}\n",
            b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}",
            b"{\"a\":1}\r\n\r\n{\"b\":2}\n\n{\"c\":3}\r\n",
            b"\n\n\n",
            b"a\nb\nc\nd\ne\nf\ng\nh\ni\nj\n",
            b"one-very-long-record-with-no-separator-at-all-0123456789",
        ];
        for stream in &streams {
            for shards in [1, 2, 3, 4, 8, 64] {
                assert_valid_sharding(stream, shards);
            }
        }
    }

    #[test]
    fn shard_ranges_balance_roughly() {
        // 200 equal records, 4 shards: each shard within 2 records of fair.
        let stream: Vec<u8> = b"{\"k\":12345}\n".repeat(200);
        let ranges = shard_ranges(&stream, 4);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            let n = split_records(&stream[r.clone()]).count();
            assert!((48..=52).contains(&n), "unbalanced shard: {n} records");
        }
    }
}

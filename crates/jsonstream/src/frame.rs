//! Record framing for newline-delimited JSON streams.
//!
//! RiotBench (and most IoT ingestion paths) stream one JSON record per
//! line. The raw-filter hardware needs the same framing to know when to
//! reset per-record state, so framing lives here in the substrate.

/// Iterator over the records of a newline-delimited JSON byte stream.
/// Empty lines are skipped; the trailing record does not need a newline.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::split_records;
///
/// let stream = b"{\"a\":1}\n\n{\"a\":2}";
/// let recs: Vec<&[u8]> = split_records(stream).collect();
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[1], br#"{"a":2}"#);
/// ```
pub fn split_records(stream: &[u8]) -> impl Iterator<Item = &[u8]> {
    stream
        .split(|&b| b == b'\n')
        .map(trim_cr)
        .filter(|r| !r.is_empty())
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// Streaming version of [`split_records`]: feed arbitrary chunks, get
/// complete records out. Used by the system-architecture model, which
/// receives DMA bursts rather than whole files.
#[derive(Debug, Default, Clone)]
pub struct FrameAssembler {
    pending: Vec<u8>,
}

impl FrameAssembler {
    /// New assembler with no pending bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes a chunk, invoking `sink` for every completed record.
    pub fn push_chunk(&mut self, chunk: &[u8], mut sink: impl FnMut(&[u8])) {
        for &b in chunk {
            if b == b'\n' {
                let record = trim_cr(&self.pending);
                if !record.is_empty() {
                    sink(record);
                }
                self.pending.clear();
            } else {
                self.pending.push(b);
            }
        }
    }

    /// Flushes the trailing record (stream end without newline).
    pub fn finish(&mut self, mut sink: impl FnMut(&[u8])) {
        let record = trim_cr(&self.pending);
        if !record.is_empty() {
            sink(record);
        }
        self.pending.clear();
    }

    /// Bytes buffered awaiting a newline.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_basic() {
        let recs: Vec<&[u8]> = split_records(b"a\nbb\nccc\n").collect();
        assert_eq!(recs, vec![&b"a"[..], b"bb", b"ccc"]);
    }

    #[test]
    fn split_handles_missing_trailing_newline_and_crlf() {
        let recs: Vec<&[u8]> = split_records(b"a\r\nb").collect();
        assert_eq!(recs, vec![&b"a"[..], b"b"]);
    }

    #[test]
    fn split_skips_empty_lines() {
        let recs: Vec<&[u8]> = split_records(b"\n\na\n\n\nb\n\n").collect();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn assembler_reassembles_across_chunks() {
        let stream = b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}";
        for chunk_size in [1, 2, 3, 5, 7, 100] {
            let mut asm = FrameAssembler::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                asm.push_chunk(chunk, |r| got.push(r.to_vec()));
            }
            asm.finish(|r| got.push(r.to_vec()));
            assert_eq!(
                got,
                vec![
                    br#"{"a":1}"#.to_vec(),
                    br#"{"b":2}"#.to_vec(),
                    br#"{"c":3}"#.to_vec()
                ],
                "chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn assembler_pending_accounting() {
        let mut asm = FrameAssembler::new();
        asm.push_chunk(b"abc", |_| panic!("no record yet"));
        assert_eq!(asm.pending_len(), 3);
        let mut n = 0;
        asm.push_chunk(b"\n", |_| n += 1);
        assert_eq!(n, 1);
        assert_eq!(asm.pending_len(), 0);
        asm.finish(|_| panic!("nothing pending"));
    }
}

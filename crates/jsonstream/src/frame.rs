//! Record framing for newline-delimited JSON streams — the **single
//! source of truth** for the framing rules every execution path shares.
//!
//! RiotBench (and most IoT ingestion paths) stream one JSON record per
//! line. The raw-filter hardware needs the same framing to know when to
//! reset per-record state, the software backends need it to emit one
//! decision per record, and the sharded runtime needs it to split a
//! buffer at record boundaries. If any of those disagreed on CR
//! handling, blank lines, or the trailing record, their decision vectors
//! would diverge — so the rules live exactly once, here:
//!
//! * `\n` separates records;
//! * one CR immediately before the LF is framing, not content
//!   ([`trim_cr`]);
//! * a line whose bytes are all `\r` (in particular an empty line) is
//!   **blank** and produces no record and no decision
//!   ([`is_blank_line`]);
//! * a trailing record without a final `\n` still counts.
//!
//! Three views of the same rules are provided: slice-level
//! ([`split_records`]), chunk-streaming ([`FrameAssembler`]), and
//! byte-serial ([`ChunkFramer`] — what the filter-backend stream drivers
//! in `rfjson-core` consume). [`shard_ranges`] partitions a buffer at
//! record boundaries for the parallel runtime. Their equivalence is held
//! by the cross-impl tests in the root crate (`tests/framing_equiv.rs`).

use crate::swar;
use core::fmt;
use core::ops::Range;

/// Strips the single framing CR before an LF (CRLF line endings).
/// Interior CRs — and any further trailing CRs — are record content.
#[inline]
pub fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// A line that produces no record: empty, or nothing but CR bytes
/// (framing debris such as a stray `\r\r\n`, never record content).
#[inline]
pub fn is_blank_line(line: &[u8]) -> bool {
    line.iter().all(|&b| b == b'\r')
}

/// Iterator over the records of a newline-delimited JSON byte stream.
/// Blank lines are skipped; the trailing record does not need a newline.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::split_records;
///
/// let stream = b"{\"a\":1}\n\n{\"a\":2}";
/// let recs: Vec<&[u8]> = split_records(stream).collect();
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[1], br#"{"a":2}"#);
/// ```
pub fn split_records(stream: &[u8]) -> impl Iterator<Item = &[u8]> {
    stream
        .split(|&b| b == b'\n')
        .filter(|line| !is_blank_line(line))
        .map(trim_cr)
}

/// What one byte means for record framing (returned by
/// [`ChunkFramer::on_byte`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// The byte belongs to the current (possibly still blank) line.
    Feed,
    /// The byte is a separator ending a non-blank record: emit the
    /// record/decision, then reset per-record state.
    EndRecord,
    /// The byte is a separator after a blank line: reset, emit nothing.
    EndBlank,
}

/// Byte-serial framing state machine — the canonical encoding of the
/// framing rules, driven one byte at a time alongside a filter.
///
/// The filter-backend stream drivers feed every byte to both the filter
/// and the framer; the framer says when a decision is due. At
/// end-of-stream, [`ChunkFramer::finish`] reports whether an unclosed
/// trailing record remains (the driver then supplies the `\n` the
/// hardware would see).
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::{ChunkFramer, FrameAction};
///
/// let mut framer = ChunkFramer::new();
/// let actions: Vec<FrameAction> =
///     b"a\n\nb".iter().map(|&b| framer.on_byte(b)).collect();
/// assert_eq!(
///     actions,
///     vec![
///         FrameAction::Feed,
///         FrameAction::EndRecord,
///         FrameAction::EndBlank,
///         FrameAction::Feed,
///     ]
/// );
/// assert!(framer.finish(), "trailing `b` is an unclosed record");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkFramer {
    saw_content: bool,
}

impl ChunkFramer {
    /// Fresh framer at a record boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte and classifies it.
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> FrameAction {
        if byte == b'\n' {
            if core::mem::take(&mut self.saw_content) {
                FrameAction::EndRecord
            } else {
                FrameAction::EndBlank
            }
        } else {
            if byte != b'\r' {
                self.saw_content = true;
            }
            FrameAction::Feed
        }
    }

    /// End of stream: returns `true` (and resets) if a non-blank record
    /// is still open — a trailing record without a separator.
    #[inline]
    pub fn finish(&mut self) -> bool {
        core::mem::take(&mut self.saw_content)
    }

    /// Whether a non-blank record is currently open.
    pub fn has_open_record(&self) -> bool {
        self.saw_content
    }

    /// Back to a record boundary.
    pub fn reset(&mut self) {
        self.saw_content = false;
    }
}

/// Streaming version of [`split_records`]: feed arbitrary chunks, get
/// complete records out. Used by the system-architecture model, which
/// receives DMA bursts rather than whole files.
#[derive(Debug, Default, Clone)]
pub struct FrameAssembler {
    framer: ChunkFramer,
    pending: Vec<u8>,
}

impl FrameAssembler {
    /// New assembler with no pending bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes a chunk, invoking `sink` for every completed record.
    ///
    /// Hops from separator to separator with the SWAR newline search
    /// ([`swar::find_byte`]) instead of framing byte-by-byte; the
    /// byte-serial [`ChunkFramer`] state is kept in sync so the framing
    /// semantics are unchanged (held by `tests/framing_equiv.rs`).
    pub fn push_chunk(&mut self, chunk: &[u8], mut sink: impl FnMut(&[u8])) {
        let mut rest = chunk;
        while let Some(nl) = swar::find_byte(rest, b'\n') {
            let (line_part, tail) = rest.split_at(nl);
            self.pending.extend_from_slice(line_part);
            // saw_content == "the pending line is not blank", restated
            // at slice level: any non-CR byte makes the line a record.
            if is_blank_line(&self.pending) {
                self.pending.clear();
            } else {
                sink(trim_cr(&self.pending));
                self.pending.clear();
            }
            self.framer.reset();
            rest = &tail[1..];
        }
        self.pending.extend_from_slice(rest);
        if !is_blank_line(&self.pending) {
            // Keep the byte-serial framer state equivalent for
            // `finish`/`has_open_record` observers.
            self.framer.on_byte(b'x');
        }
    }

    /// Flushes the trailing record (stream end without newline).
    pub fn finish(&mut self, mut sink: impl FnMut(&[u8])) {
        if self.framer.finish() {
            sink(trim_cr(&self.pending));
        }
        self.pending.clear();
    }

    /// Bytes buffered awaiting a newline.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Per-stream ingest limits for **record quarantine**.
///
/// The paper's RF lanes are fixed-function hardware: a malformed or
/// absurdly long record cannot crash them, but in a software lane it can
/// monopolise a thread or poison downstream accounting. `IngestLimits`
/// bounds what a single stream may ask of a lane; records that violate a
/// limit are **skipped and reported** (see [`SkipReason`]) rather than
/// silently filtered or dropped.
///
/// `None` means unlimited; [`IngestLimits::UNLIMITED`] (also the
/// `Default`) never quarantines anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestLimits {
    /// Maximum record content length in bytes (the line with the framing
    /// CR/LF already excluded, exactly [`trim_cr`] of the line). Longer
    /// records are quarantined as [`SkipReason::TooLong`].
    pub max_record_bytes: Option<usize>,
    /// Maximum number of records per stream. Records at index
    /// `max_records` and beyond are quarantined as
    /// [`SkipReason::RecordLimit`].
    pub max_records: Option<usize>,
}

impl IngestLimits {
    /// No limits: nothing is ever quarantined.
    pub const UNLIMITED: IngestLimits = IngestLimits {
        max_record_bytes: None,
        max_records: None,
    };

    /// Limits that only cap record length.
    pub fn max_record_bytes(limit: usize) -> IngestLimits {
        IngestLimits {
            max_record_bytes: Some(limit),
            ..IngestLimits::UNLIMITED
        }
    }

    /// Limits that only cap the record count.
    pub fn max_records(limit: usize) -> IngestLimits {
        IngestLimits {
            max_records: Some(limit),
            ..IngestLimits::UNLIMITED
        }
    }

    /// `true` if no limit is set (the fast-path configuration).
    pub fn is_unlimited(&self) -> bool {
        *self == IngestLimits::UNLIMITED
    }
}

/// Why a record was quarantined instead of filtered.
///
/// When a limit fires on a record that violates **both** limits, the
/// record-count limit wins: it is a property of the record's position in
/// the stream, which the sharded runtime applies globally, while
/// [`SkipReason::TooLong`] is a property of the record alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipReason {
    /// Record content exceeded [`IngestLimits::max_record_bytes`].
    TooLong {
        /// The configured limit.
        limit: usize,
        /// The record's actual content length.
        actual: usize,
    },
    /// The record's stream index reached [`IngestLimits::max_records`].
    RecordLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::TooLong { limit, actual } => {
                write!(f, "record too long ({actual} bytes > limit {limit})")
            }
            SkipReason::RecordLimit { limit } => {
                write!(f, "record limit reached (max {limit} records)")
            }
        }
    }
}

/// Per-record filtering outcome of the quarantine-aware stream drivers.
///
/// The boolean decision API collapses this to `Verdict::Match == true`;
/// the verdict API additionally distinguishes records that were never
/// filtered because an [`IngestLimits`] rule quarantined them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The record satisfied the filter.
    Match,
    /// The record was filtered and did not satisfy the filter.
    NoMatch,
    /// The record was quarantined and never (fully) filtered.
    Skipped(SkipReason),
}

impl Verdict {
    /// Collapses to the boolean decision API: only [`Verdict::Match`]
    /// is `true` (a skipped record is conservatively a non-match).
    pub fn matched(&self) -> bool {
        matches!(self, Verdict::Match)
    }

    /// The filter decision, if the record was actually filtered.
    pub fn decision(&self) -> Option<bool> {
        match self {
            Verdict::Match => Some(true),
            Verdict::NoMatch => Some(false),
            Verdict::Skipped(_) => None,
        }
    }

    /// Lifts a boolean decision into a verdict.
    pub fn from_decision(accept: bool) -> Verdict {
        if accept {
            Verdict::Match
        } else {
            Verdict::NoMatch
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Match => write!(f, "match"),
            Verdict::NoMatch => write!(f, "no-match"),
            Verdict::Skipped(r) => write!(f, "skipped: {r}"),
        }
    }
}

/// End-of-record report from [`LimitedFramer`]: `skip` is `Some` when
/// the record violated an [`IngestLimits`] rule and must be quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordEnd {
    /// Why the record is quarantined, or `None` to accept its filter
    /// decision.
    pub skip: Option<SkipReason>,
}

/// What one byte means for limit-aware framing (returned by
/// [`LimitedFramer::on_byte`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitedAction {
    /// The byte belongs to the current line. `quarantined` is `true`
    /// once the record can no longer escape quarantine — a driver may
    /// stop feeding its filter (the verdict is already decided, and the
    /// record-boundary reset restores the filter either way).
    Feed {
        /// The byte need not reach the filter.
        quarantined: bool,
    },
    /// Separator ending a non-blank record.
    EndRecord(RecordEnd),
    /// Separator after a blank line: reset, emit nothing.
    EndBlank,
}

/// [`ChunkFramer`] plus [`IngestLimits`] metering: the byte-serial
/// framing state machine extended with a per-record content gauge and a
/// record counter, so oversized or limit-violating records are
/// **skipped-and-reported** instead of silently poisoning a lane.
///
/// The gauge measures record **content** length — the line with the
/// single framing CR excluded, exactly what [`trim_cr`] would return —
/// so CRLF and LF streams quarantine identically. Because content is a
/// per-record property, a record produces the same [`RecordEnd`] whether
/// the stream is framed whole or shard-by-shard over [`shard_ranges`]
/// cuts (the record counter is shard-local; the parallel runtime applies
/// [`IngestLimits::max_records`] globally instead).
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::{IngestLimits, LimitedAction, LimitedFramer, SkipReason};
///
/// let mut f = LimitedFramer::new(IngestLimits::max_record_bytes(3));
/// for &b in b"abcd" {
///     f.on_byte(b);
/// }
/// // Trailing record without a newline is still metered at EOF:
/// let end = f.finish().expect("unclosed trailing record");
/// assert_eq!(end.skip, Some(SkipReason::TooLong { limit: 3, actual: 4 }));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LimitedFramer {
    framer: ChunkFramer,
    limits: IngestLimits,
    /// Stop-feeding threshold: one byte of slack over `max_record_bytes`
    /// because the byte that crosses the limit may yet turn out to be a
    /// framing CR (which does not count as content).
    feed_cutoff: usize,
    record_len: usize,
    last_was_cr: bool,
    records_seen: usize,
}

impl LimitedFramer {
    /// Fresh limit-aware framer at a record boundary.
    pub fn new(limits: IngestLimits) -> Self {
        LimitedFramer {
            framer: ChunkFramer::new(),
            limits,
            feed_cutoff: limits
                .max_record_bytes
                .map_or(usize::MAX, |m| m.saturating_add(1)),
            record_len: 0,
            last_was_cr: false,
            records_seen: 0,
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> IngestLimits {
        self.limits
    }

    /// Records completed so far (quarantined ones included).
    pub fn records_seen(&self) -> usize {
        self.records_seen
    }

    fn record_end(&mut self) -> RecordEnd {
        let content = self.record_len - usize::from(self.last_was_cr);
        let index = self.records_seen;
        self.records_seen += 1;
        self.record_len = 0;
        self.last_was_cr = false;
        // Record-count quarantine wins over length quarantine — see
        // `SkipReason` for why.
        let skip = match self.limits.max_records {
            Some(m) if index >= m => Some(SkipReason::RecordLimit { limit: m }),
            _ => match self.limits.max_record_bytes {
                Some(m) if content > m => Some(SkipReason::TooLong {
                    limit: m,
                    actual: content,
                }),
                _ => None,
            },
        };
        RecordEnd { skip }
    }

    /// Consumes one byte and classifies it.
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> LimitedAction {
        match self.framer.on_byte(byte) {
            FrameAction::Feed => {
                self.record_len += 1;
                self.last_was_cr = byte == b'\r';
                LimitedAction::Feed {
                    quarantined: self.record_len > self.feed_cutoff
                        || self
                            .limits
                            .max_records
                            .is_some_and(|m| self.records_seen >= m),
                }
            }
            FrameAction::EndRecord => LimitedAction::EndRecord(self.record_end()),
            FrameAction::EndBlank => {
                self.record_len = 0;
                self.last_was_cr = false;
                LimitedAction::EndBlank
            }
        }
    }

    /// End of stream: reports (and resets) the unclosed trailing record,
    /// metered against the same limits as every other record.
    pub fn finish(&mut self) -> Option<RecordEnd> {
        if self.framer.finish() {
            Some(self.record_end())
        } else {
            self.record_len = 0;
            self.last_was_cr = false;
            None
        }
    }

    /// Back to a record boundary (the record counter keeps counting).
    pub fn reset(&mut self) {
        self.framer.reset();
        self.record_len = 0;
        self.last_was_cr = false;
    }
}

/// Partitions `stream` into at most `shards` contiguous byte ranges that
/// cover it exactly, cutting **only immediately after a `\n`** — so each
/// range is a self-contained NDJSON sub-stream: every shard starts at a
/// record boundary, and only the final shard can hold an unterminated
/// trailing record.
///
/// Ranges are returned in stream order and are never empty; if the
/// stream has fewer separators than `shards - 1`, fewer ranges come
/// back (one, in the degenerate single-record case). An empty stream
/// yields no ranges.
///
/// This is the seam the sharded parallel runtime
/// (`rfjson-runtime`) splits work on: running any byte-serial filter
/// over each range independently and concatenating the per-range
/// decision vectors is byte-for-byte identical to the serial pass,
/// because the serial filter is freshly reset right after every `\n`.
///
/// # Example
///
/// ```
/// use rfjson_jsonstream::frame::shard_ranges;
///
/// let stream = b"{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
/// let ranges = shard_ranges(stream, 2);
/// assert_eq!(ranges.len(), 2);
/// assert_eq!(ranges[0].start, 0);
/// assert_eq!(ranges.last().unwrap().end, stream.len());
/// // Every cut happens right after a newline.
/// for r in &ranges[..ranges.len() - 1] {
///     assert_eq!(stream[r.end - 1], b'\n');
/// }
/// ```
pub fn shard_ranges(stream: &[u8], shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    if stream.is_empty() {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for k in 1..shards {
        let ideal = stream.len() * k / shards;
        if ideal <= start {
            continue;
        }
        // Cut right after the first separator at or beyond the ideal
        // point (the separator byte stays in the left shard); the
        // search hops 8 bytes per step (SWAR newline mask).
        match swar::find_byte(&stream[ideal..], b'\n') {
            Some(p) => {
                let cut = ideal + p + 1;
                if cut > start && cut < stream.len() {
                    ranges.push(start..cut);
                    start = cut;
                }
            }
            None => break, // no more separators: the rest is one shard
        }
    }
    ranges.push(start..stream.len());
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_basic() {
        let recs: Vec<&[u8]> = split_records(b"a\nbb\nccc\n").collect();
        assert_eq!(recs, vec![&b"a"[..], b"bb", b"ccc"]);
    }

    #[test]
    fn split_handles_missing_trailing_newline_and_crlf() {
        let recs: Vec<&[u8]> = split_records(b"a\r\nb").collect();
        assert_eq!(recs, vec![&b"a"[..], b"b"]);
    }

    #[test]
    fn split_skips_empty_lines() {
        let recs: Vec<&[u8]> = split_records(b"\n\na\n\n\nb\n\n").collect();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn cr_only_lines_are_blank() {
        // An all-CR line is framing debris, not a record — the same rule
        // the byte-serial stream drivers apply.
        let recs: Vec<&[u8]> = split_records(b"\r\n\r\r\na\r\n").collect();
        assert_eq!(recs, vec![&b"a"[..]]);
        let mut asm = FrameAssembler::new();
        let mut got = 0;
        asm.push_chunk(b"\r\n\r\r\na\r\n", |_| got += 1);
        asm.finish(|_| got += 1);
        assert_eq!(got, 1);
    }

    #[test]
    fn framer_actions_and_finish() {
        let mut f = ChunkFramer::new();
        assert_eq!(f.on_byte(b'\r'), FrameAction::Feed);
        assert!(!f.has_open_record(), "CR alone opens no record");
        assert_eq!(f.on_byte(b'\n'), FrameAction::EndBlank);
        assert_eq!(f.on_byte(b'x'), FrameAction::Feed);
        assert!(f.has_open_record());
        assert_eq!(f.on_byte(b'\n'), FrameAction::EndRecord);
        assert!(!f.finish(), "no trailing record after a separator");
        f.on_byte(b'y');
        assert!(f.finish(), "trailing record without separator");
        assert!(!f.finish(), "finish resets");
    }

    #[test]
    fn assembler_reassembles_across_chunks() {
        let stream = b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}";
        for chunk_size in [1, 2, 3, 5, 7, 100] {
            let mut asm = FrameAssembler::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                asm.push_chunk(chunk, |r| got.push(r.to_vec()));
            }
            asm.finish(|r| got.push(r.to_vec()));
            assert_eq!(
                got,
                vec![
                    br#"{"a":1}"#.to_vec(),
                    br#"{"b":2}"#.to_vec(),
                    br#"{"c":3}"#.to_vec()
                ],
                "chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn assembler_pending_accounting() {
        let mut asm = FrameAssembler::new();
        asm.push_chunk(b"abc", |_| panic!("no record yet"));
        assert_eq!(asm.pending_len(), 3);
        let mut n = 0;
        asm.push_chunk(b"\n", |_| n += 1);
        assert_eq!(n, 1);
        assert_eq!(asm.pending_len(), 0);
        asm.finish(|_| panic!("nothing pending"));
    }

    /// Every split decomposition must cover the stream exactly, cut only
    /// after separators, and preserve the record sequence.
    fn assert_valid_sharding(stream: &[u8], shards: usize) {
        let ranges = shard_ranges(stream, shards);
        assert!(ranges.len() <= shards.max(1));
        if stream.is_empty() {
            assert!(ranges.is_empty());
            return;
        }
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, stream.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile the stream");
            assert_eq!(stream[w[0].end - 1], b'\n', "cuts only after newlines");
        }
        for r in &ranges {
            assert!(r.start < r.end, "no empty shard ranges");
        }
        // Record sequence is preserved.
        let serial: Vec<&[u8]> = split_records(stream).collect();
        let sharded: Vec<&[u8]> = ranges
            .iter()
            .flat_map(|r| split_records(&stream[r.clone()]))
            .collect();
        assert_eq!(serial, sharded, "shards {shards}");
    }

    #[test]
    fn shard_ranges_tile_and_preserve_records() {
        let streams: Vec<&[u8]> = vec![
            b"",
            b"x",
            b"{\"a\":1}\n",
            b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}",
            b"{\"a\":1}\r\n\r\n{\"b\":2}\n\n{\"c\":3}\r\n",
            b"\n\n\n",
            b"a\nb\nc\nd\ne\nf\ng\nh\ni\nj\n",
            b"one-very-long-record-with-no-separator-at-all-0123456789",
        ];
        for stream in &streams {
            for shards in [1, 2, 3, 4, 8, 64] {
                assert_valid_sharding(stream, shards);
            }
        }
    }

    /// Reference implementation of per-record quarantine metadata: one
    /// `RecordEnd` per record of `stream`, derived from `split_records`
    /// (shard-local record counter starting at `base`).
    fn quarantine_oracle(stream: &[u8], limits: IngestLimits, base: usize) -> Vec<RecordEnd> {
        split_records(stream)
            .enumerate()
            .map(|(i, rec)| RecordEnd {
                skip: match limits.max_records {
                    Some(m) if base + i >= m => Some(SkipReason::RecordLimit { limit: m }),
                    _ => match limits.max_record_bytes {
                        Some(m) if rec.len() > m => Some(SkipReason::TooLong {
                            limit: m,
                            actual: rec.len(),
                        }),
                        _ => None,
                    },
                },
            })
            .collect()
    }

    /// Drives a `LimitedFramer` over the whole stream, collecting every
    /// record end (including the unclosed trailing record).
    fn run_limited(stream: &[u8], limits: IngestLimits) -> Vec<RecordEnd> {
        let mut f = LimitedFramer::new(limits);
        let mut ends = Vec::new();
        for &b in stream {
            if let LimitedAction::EndRecord(end) = f.on_byte(b) {
                ends.push(end);
            }
        }
        ends.extend(f.finish());
        ends
    }

    #[test]
    fn limited_framer_matches_oracle_on_framing_zoo() {
        let streams: Vec<&[u8]> = vec![
            b"",
            b"x",
            b"{\"a\":1}\n",
            b"{\"a\":1}\n{\"bbbbbbbbbb\":2}\n{\"c\":3}",
            b"{\"a\":1}\r\n\r\n{\"bbbbbbbbbb\":2}\n\n{\"c\":3}\r\n",
            b"\n\n\n",
            b"a\nbb\nccc\ndddd\neeeee\nffffff\n",
            b"one-very-long-record-with-no-separator-at-all-0123456789",
        ];
        let limit_sets = [
            IngestLimits::UNLIMITED,
            IngestLimits::max_record_bytes(0),
            IngestLimits::max_record_bytes(3),
            IngestLimits::max_record_bytes(7),
            IngestLimits::max_records(0),
            IngestLimits::max_records(2),
            IngestLimits {
                max_record_bytes: Some(3),
                max_records: Some(2),
            },
        ];
        for stream in &streams {
            for limits in limit_sets {
                assert_eq!(
                    run_limited(stream, limits),
                    quarantine_oracle(stream, limits, 0),
                    "stream {:?} limits {limits:?}",
                    String::from_utf8_lossy(stream)
                );
            }
        }
    }

    #[test]
    fn trailing_record_without_newline_is_metered_at_eof() {
        // The degenerate EOF case: the last record has no `\n`, yet the
        // byte limit must still apply to it — identically whether the
        // buffer is framed whole or as the final shard of a split.
        let stream: &[u8] = b"{\"a\":1}\n{\"pad\":\"xxxxxxxxxxxxxxxx\"}";
        let limits = IngestLimits::max_record_bytes(10);
        let ends = run_limited(stream, limits);
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[0].skip, None);
        assert_eq!(
            ends[1].skip,
            Some(SkipReason::TooLong {
                limit: 10,
                actual: 26
            })
        );
        // Same verdicts when the buffer is framed shard-by-shard.
        for shards in [1, 2, 3, 8] {
            let mut sharded = Vec::new();
            for r in shard_ranges(stream, shards) {
                sharded.extend(run_limited(&stream[r], limits));
            }
            assert_eq!(sharded, ends, "shards {shards}");
        }
    }

    #[test]
    fn sharded_quarantine_equals_whole_stream_quarantine() {
        // max_record_bytes is a per-record property: framing each shard
        // independently yields the same skip decisions as framing the
        // whole stream (max_records is deliberately shard-local; the
        // runtime applies it globally — modelled here via `base`).
        let stream =
            b"{\"a\":1}\r\n{\"long-pad\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n\n{\"b\":2}\n{\"c\":3}\nx"
                .to_vec();
        let limits = IngestLimits::max_record_bytes(12);
        let whole = run_limited(&stream, limits);
        for shards in [1, 2, 3, 8, 64] {
            let mut sharded = Vec::new();
            let mut base = 0;
            for r in shard_ranges(&stream, shards) {
                let part = run_limited(&stream[r.clone()], limits);
                assert_eq!(
                    part,
                    quarantine_oracle(&stream[r], limits, base),
                    "oracle per shard"
                );
                base += part.len();
                sharded.extend(part);
            }
            assert_eq!(sharded, whole, "shards {shards}");
        }
    }

    #[test]
    fn crlf_framing_cr_does_not_count_as_content() {
        // "abcd\r\n": content is 4 bytes. With limit 4 the record passes,
        // and every content byte (incl. the eventual framing CR) stays
        // un-quarantined so a driver feeds its filter the same bytes the
        // unlimited path would.
        let mut f = LimitedFramer::new(IngestLimits::max_record_bytes(4));
        for &b in b"abcd\r" {
            assert_eq!(f.on_byte(b), LimitedAction::Feed { quarantined: false });
        }
        assert_eq!(
            f.on_byte(b'\n'),
            LimitedAction::EndRecord(RecordEnd { skip: None })
        );
        // Interior CRs *are* content: "ab\rcd" is 5 bytes.
        let ends = run_limited(b"ab\rcd\n", IngestLimits::max_record_bytes(4));
        assert_eq!(
            ends[0].skip,
            Some(SkipReason::TooLong {
                limit: 4,
                actual: 5
            })
        );
    }

    #[test]
    fn quarantined_feed_flag_never_fires_on_kept_records() {
        // If any byte of a record reported `quarantined: true`, the
        // record's RecordEnd must carry a skip — the driver contract that
        // makes skip-feeding safe.
        let limits = IngestLimits {
            max_record_bytes: Some(5),
            max_records: Some(3),
        };
        let stream: &[u8] = b"aaaa\r\nbbbbbbbb\ncc\ndddddddddd\nee\nf";
        let mut f = LimitedFramer::new(limits);
        let mut saw_quarantined_byte = false;
        let check = |skipped: Option<SkipReason>, saw: &mut bool| {
            if skipped.is_none() {
                assert!(!*saw, "kept record had a quarantined byte");
            }
            *saw = false;
        };
        for &b in stream {
            match f.on_byte(b) {
                LimitedAction::Feed { quarantined } => saw_quarantined_byte |= quarantined,
                LimitedAction::EndRecord(end) => check(end.skip, &mut saw_quarantined_byte),
                LimitedAction::EndBlank => saw_quarantined_byte = false,
            }
        }
        if let Some(end) = f.finish() {
            check(end.skip, &mut saw_quarantined_byte);
        }
    }

    #[test]
    fn record_limit_wins_over_length_limit() {
        let limits = IngestLimits {
            max_record_bytes: Some(2),
            max_records: Some(1),
        };
        let ends = run_limited(b"aaaa\nbbbb\n", limits);
        assert_eq!(
            ends[0].skip,
            Some(SkipReason::TooLong {
                limit: 2,
                actual: 4
            })
        );
        assert_eq!(ends[1].skip, Some(SkipReason::RecordLimit { limit: 1 }));
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Match.matched());
        assert!(!Verdict::NoMatch.matched());
        assert_eq!(Verdict::from_decision(true), Verdict::Match);
        assert_eq!(Verdict::from_decision(false), Verdict::NoMatch);
        let skipped = Verdict::Skipped(SkipReason::RecordLimit { limit: 4 });
        assert!(!skipped.matched());
        assert_eq!(skipped.decision(), None);
        assert_eq!(Verdict::Match.decision(), Some(true));
        assert_eq!(
            skipped.to_string(),
            "skipped: record limit reached (max 4 records)"
        );
        assert!(IngestLimits::UNLIMITED.is_unlimited());
        assert!(!IngestLimits::max_records(1).is_unlimited());
    }

    #[test]
    fn shard_ranges_balance_roughly() {
        // 200 equal records, 4 shards: each shard within 2 records of fair.
        let stream: Vec<u8> = b"{\"k\":12345}\n".repeat(200);
        let ranges = shard_ranges(&stream, 4);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            let n = split_records(&stream[r.clone()]).count();
            assert!((48..=52).contains(&n), "unbalanced shard: {n} records");
        }
    }
}

//! Property tests for the JSON substrate: writer/parser round trips over
//! arbitrary value trees, parser robustness on arbitrary bytes, and
//! streaming mask/nesting agreement with the parser.

use proptest::prelude::*;
use rfjson_jsonstream::frame::{split_records, FrameAssembler};
use rfjson_jsonstream::write::to_string;
use rfjson_jsonstream::{parse, NestingTracker, Value};

/// Strategy for arbitrary JSON value trees (finite numbers only — JSON
/// cannot carry NaN/Inf).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1.0e12f64..1.0e12).prop_map(|n| Value::Number((n * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 _\\\\\"\\n\\t{}\\[\\],:]{0,12}".prop_map(Value::String),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..5)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn write_parse_round_trip(v in value_strategy()) {
        let text = to_string(&v);
        let back = parse(text.as_bytes()).expect("writer output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..120)) {
        // Must return Ok or Err, never panic or loop.
        let _ = parse(&bytes);
    }

    #[test]
    fn parser_position_within_input(bytes in prop::collection::vec(any::<u8>(), 0..60)) {
        if let Err(e) = parse(&bytes) {
            prop_assert!(e.position <= bytes.len());
        }
    }

    #[test]
    fn nesting_returns_to_zero_on_valid_json(v in value_strategy()) {
        let text = to_string(&v);
        let mut t = NestingTracker::new();
        for b in text.bytes() {
            t.on_byte(b);
        }
        prop_assert_eq!(t.depth(), 0);
        prop_assert!(!t.in_string());
    }

    #[test]
    fn nesting_depth_bounded_by_structure(v in value_strategy()) {
        fn depth_of(v: &Value) -> u32 {
            match v {
                Value::Array(items) => {
                    1 + items.iter().map(depth_of).max().unwrap_or(0)
                }
                Value::Object(members) => {
                    1 + members.iter().map(|(_, x)| depth_of(x)).max().unwrap_or(0)
                }
                _ => 0,
            }
        }
        let text = to_string(&v);
        let structural = depth_of(&v);
        let mut t = NestingTracker::new();
        let max_seen = text.bytes().map(|b| t.on_byte(b)).max().unwrap_or(0);
        prop_assert_eq!(max_seen, structural);
    }

    #[test]
    fn framing_reassembles_any_chunking(
        records in prop::collection::vec("[a-z0-9{}:\",]{1,20}", 1..8),
        chunk in 1usize..16,
    ) {
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(r.as_bytes());
            stream.push(b'\n');
        }
        // Whole-buffer splitting:
        let split: Vec<Vec<u8>> = split_records(&stream).map(<[u8]>::to_vec).collect();
        prop_assert_eq!(split.len(), records.len());
        // Chunked reassembly must agree:
        let mut asm = FrameAssembler::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for c in stream.chunks(chunk) {
            asm.push_chunk(c, |r| got.push(r.to_vec()));
        }
        asm.finish(|r| got.push(r.to_vec()));
        prop_assert_eq!(got, split);
    }

    #[test]
    fn duplicate_free_object_lookup(pairs in prop::collection::vec(("[a-f]{1,3}", 0i64..100), 0..6)) {
        let v = Value::Object(
            pairs.iter().map(|(k, n)| (k.clone(), Value::Number(*n as f64))).collect(),
        );
        for (k, n) in &pairs {
            // First occurrence wins.
            let first = pairs.iter().find(|(kk, _)| kk == k).map(|(_, n)| *n).unwrap();
            prop_assert_eq!(v.get(k).and_then(Value::as_f64), Some(first as f64));
            let _ = n;
        }
    }
}

//! Differential properties: the SWAR word classifier against the scalar
//! byte-class LUT and `StringMask`, on arbitrary byte soup — including
//! `\"`/`\\` escape chains that span word boundaries, CRLF, NUL and
//! non-ASCII bytes.

use proptest::prelude::*;
use rfjson_jsonstream::swar::{
    self, classify_word, load_word, string_mask_word, StringState, WORD_BYTES,
};
use rfjson_jsonstream::{classify, ByteClass, StringMask};

/// Scalar oracle: per-byte class bits and string-mask bits for a whole
/// stream, chunked exactly like the SWAR path would see it.
fn scalar_masks(stream: &[u8]) -> (Vec<ByteClass>, Vec<bool>) {
    let classes = stream.iter().map(|&b| classify(b)).collect();
    (classes, StringMask::mask_of(stream))
}

/// Runs the SWAR classifier word-by-word (scalar tail), carrying the
/// string state across words, and flattens the per-byte facts.
fn swar_masks(stream: &[u8]) -> (Vec<ByteClass>, Vec<bool>) {
    let mut classes = Vec::with_capacity(stream.len());
    let mut masked = Vec::with_capacity(stream.len());
    let mut state = StringState::default();
    let mut chunks = stream.chunks_exact(WORD_BYTES);
    for chunk in chunks.by_ref() {
        let w = load_word(chunk.try_into().unwrap());
        let m = classify_word(w);
        let (mask_bits, next) = string_mask_word(m.quotes, m.backslashes, state);
        state = next;
        for (j, &b) in chunk.iter().enumerate() {
            let bit = 1u8 << j;
            let class = if m.quotes & bit != 0 {
                ByteClass::Quote
            } else if m.backslashes & bit != 0 {
                ByteClass::Backslash
            } else if m.opens & bit != 0 {
                ByteClass::Open
            } else if m.closes & bit != 0 {
                ByteClass::Close
            } else if m.commas & bit != 0 {
                ByteClass::Comma
            } else {
                ByteClass::Other
            };
            assert_eq!(m.newlines & bit != 0, b == b'\n', "newline mask");
            classes.push(class);
            masked.push(mask_bits & bit != 0);
        }
    }
    // Word-boundary fallback: the tail runs byte-serial from the synced
    // carry state, exactly like the engine's block path.
    let mut tail_mask = StringMask::new();
    tail_mask.restore(state.in_string, state.pending_escape);
    for &b in chunks.remainder() {
        classes.push(classify(b));
        masked.push(tail_mask.on_byte(b));
    }
    (classes, masked)
}

fn assert_equiv(stream: &[u8]) {
    let (want_classes, want_masked) = scalar_masks(stream);
    let (got_classes, got_masked) = swar_masks(stream);
    assert_eq!(got_classes, want_classes, "{stream:?}");
    assert_eq!(got_masked, want_masked, "{stream:?}");
}

#[test]
fn escape_chains_spanning_word_boundaries() {
    // Backslash runs of every length straddling the 8-byte boundary at
    // every offset, inside and outside strings.
    for open in [true, false] {
        for run in 0..12usize {
            for offset in 0..9usize {
                let mut s = Vec::new();
                if open {
                    s.push(b'"');
                }
                s.extend(std::iter::repeat_n(b'x', offset));
                s.extend(std::iter::repeat_n(b'\\', run));
                s.extend_from_slice(b"\"tail\"with{struct},bytes");
                assert_equiv(&s);
            }
        }
    }
}

#[test]
fn crlf_nul_and_non_ascii() {
    let streams: Vec<&[u8]> = vec![
        b"{\"a\":1}\r\n{\"b\":\"\xc3\xa9\"}\r\n",
        b"\x00\x00\"\x00\\\x00\"\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        b"\xff\xfe\xfd{\x80[\x81]\x82},\"\xf0\x9f\x92\xa9\"",
        b"\r\r\r\r\r\r\r\r\n",
    ];
    for s in streams {
        assert_equiv(s);
    }
}

proptest! {
    #[test]
    fn classifier_matches_lut_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        assert_equiv(&bytes);
    }

    #[test]
    fn string_heavy_soup_matches(
        // Skew the alphabet toward the structural characters so quote
        // and escape interactions dominate.
        picks in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        const ALPHABET: &[u8] = b"\"\\{}[],\r\nax\xff\x00";
        let bytes: Vec<u8> = picks
            .iter()
            .map(|&p| ALPHABET[p as usize % ALPHABET.len()])
            .collect();
        assert_equiv(&bytes);
    }

    #[test]
    fn find_byte_matches_position_on_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        needle in any::<u8>(),
        from in 0usize..200,
    ) {
        let from = from.min(bytes.len());
        prop_assert_eq!(
            swar::find_byte(&bytes[from..], needle),
            bytes[from..].iter().position(|&b| b == needle)
        );
    }

    #[test]
    fn contains_matches_naive_search(
        hay in prop::collection::vec(any::<u8>(), 0..120),
        needle in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        let expect = needle.is_empty()
            || (needle.len() <= hay.len()
                && hay.windows(needle.len()).any(|w| w == &needle[..]));
        prop_assert_eq!(swar::contains(&hay, &needle), expect);
    }
}

//! # rfjson-telemetry — pipeline counters, gauges, and histograms
//!
//! The paper's FPGA pipeline is attractive precisely because its
//! per-stage throughput is knowable: every stage exposes counters a
//! monitor can read. This crate is the software form of that
//! visibility — a zero-dependency metrics layer cheap enough to stay
//! compiled in by default:
//!
//! * [`Counter`] — a monotonic `u64` (relaxed atomic adds);
//! * [`Gauge`] — a last-write-wins `f64` (e.g. shard imbalance);
//! * [`Histogram`] — fixed log2 buckets (65: zero plus one per
//!   significant-bit count), count and sum;
//! * [`Registry`] — the process-global name → metric table, keyed by
//!   `&'static str`. [`counter`]/[`gauge`]/[`histogram`] get-or-create a
//!   handle; handles are `&'static`, so call sites pay one map lookup at
//!   first use and plain atomic ops after.
//!
//! [`Registry::snapshot`] freezes everything into a [`Snapshot`] —
//! plain sorted maps with a stable hand-written JSON text form (no
//! serde) and a [`Snapshot::delta`] for before/after diffing, which is
//! how the conservation-law tests and the benchmark harness read the
//! pipeline.
//!
//! # The `telemetry-off` feature
//!
//! With `telemetry-off` enabled every metric type is a zero-sized no-op
//! and the registry always snapshots empty, proving the instrumented
//! hot paths cost nothing when compiled out. The API surface is
//! identical, so instrumented crates build unchanged; [`ENABLED`] lets
//! tests skip assertions that need live counters.
//!
//! ```
//! use rfjson_telemetry as telemetry;
//!
//! let before = telemetry::registry().snapshot();
//! telemetry::counter("demo.records").add(3);
//! let delta = telemetry::registry().snapshot().delta(&before);
//! if telemetry::ENABLED {
//!     assert_eq!(delta.counter("demo.records"), 3);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether metrics are live in this build (`false` under the
/// `telemetry-off` feature). Tests asserting on counter values guard on
/// this; production code never needs it — the no-op surface absorbs
/// every call.
pub const ENABLED: bool = cfg!(not(feature = "telemetry-off"));

/// Schema identifier written into every [`Snapshot::to_json`] document.
pub const SNAPSHOT_SCHEMA: &str = "rfjson-telemetry/v1";

/// Number of histogram buckets: bucket 0 for value 0, bucket `k` for
/// values with `k` significant bits (`2^(k-1) ..= 2^k - 1`), up to
/// bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket a value lands in: 0 → 0, otherwise the value's
/// significant-bit count (1 → 1, 2..=3 → 2, …, `u64::MAX` → 64).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Smallest value belonging to bucket `index` (0 for bucket 0,
/// `2^(index-1)` otherwise).
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index");
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

#[cfg(not(feature = "telemetry-off"))]
mod active {
    use super::{bucket_index, HistogramSnapshot, Snapshot, HISTOGRAM_BUCKETS};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// A monotonically increasing metric (relaxed atomic adds — safe
    /// from any thread, never torn).
    #[derive(Debug, Default)]
    pub struct Counter {
        value: AtomicU64,
    }

    impl Counter {
        /// A counter at zero.
        pub const fn new() -> Counter {
            Counter {
                value: AtomicU64::new(0),
            }
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Adds one.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// A last-write-wins `f64` metric (stored as bits in an atomic).
    #[derive(Debug, Default)]
    pub struct Gauge {
        bits: AtomicU64,
    }

    impl Gauge {
        /// A gauge at `0.0`.
        pub const fn new() -> Gauge {
            Gauge {
                bits: AtomicU64::new(0),
            }
        }

        /// Sets the value (non-finite values are stored as `0.0` so the
        /// JSON snapshot stays valid).
        pub fn set(&self, value: f64) {
            let v = if value.is_finite() { value } else { 0.0 };
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> f64 {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
    }

    /// A fixed-log2-bucket histogram: per-bucket hit counts plus total
    /// count and sum.
    ///
    /// Ordering guarantees one per-metric tear-freedom invariant for
    /// concurrent snapshots: [`Histogram::record`] publishes the bucket
    /// and sum *before* the count (release), and a snapshot reads the
    /// count first (acquire) — so a snapshot never observes more counted
    /// records than bucket entries (`count ≤ Σ buckets`).
    #[derive(Debug)]
    pub struct Histogram {
        count: AtomicU64,
        sum: AtomicU64,
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    }

    impl Histogram {
        /// An empty histogram.
        pub const fn new() -> Histogram {
            Histogram {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            }
        }

        /// Records one observation.
        pub fn record(&self, value: u64) {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            // Release pairs with the acquire in `snapshot_into`: a count
            // increment is visible only after its bucket entry is.
            self.count.fetch_add(1, Ordering::Release);
        }

        /// Observations recorded so far.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Acquire)
        }

        /// Sum of all recorded values.
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }

        /// Hits in bucket `index` (see [`super::bucket_index`]).
        pub fn bucket(&self, index: usize) -> u64 {
            self.buckets[index].load(Ordering::Relaxed)
        }

        fn freeze(&self) -> HistogramSnapshot {
            // Count first (acquire): every record visible in it has its
            // bucket entry visible below.
            let count = self.count();
            let sum = self.sum();
            let mut buckets = BTreeMap::new();
            for (i, b) in self.buckets.iter().enumerate() {
                let hits = b.load(Ordering::Relaxed);
                if hits != 0 {
                    buckets.insert(i, hits);
                }
            }
            HistogramSnapshot {
                count,
                sum,
                buckets,
            }
        }
    }

    impl Default for Histogram {
        fn default() -> Histogram {
            Histogram::new()
        }
    }

    /// The process-global name → metric table. Metric handles are
    /// `&'static` (leaked once per name, never per call), so the map
    /// lock is paid only on the first use of a name and on snapshots —
    /// never on the increment path.
    #[derive(Debug, Default)]
    pub struct Registry {
        counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
        gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
        histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    }

    fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    impl Registry {
        /// The counter registered under `name`, created at zero on first
        /// use.
        pub fn counter(&self, name: &'static str) -> &'static Counter {
            locked(&self.counters)
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Counter::new())))
        }

        /// The gauge registered under `name`, created at `0.0` on first
        /// use.
        pub fn gauge(&self, name: &'static str) -> &'static Gauge {
            locked(&self.gauges)
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
        }

        /// The histogram registered under `name`, created empty on first
        /// use.
        pub fn histogram(&self, name: &'static str) -> &'static Histogram {
            locked(&self.histograms)
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
        }

        /// Freezes every registered metric into a [`Snapshot`].
        pub fn snapshot(&self) -> Snapshot {
            let counters = locked(&self.counters)
                .iter()
                .map(|(&n, c)| (n.to_string(), c.get()))
                .collect();
            let gauges = locked(&self.gauges)
                .iter()
                .map(|(&n, g)| (n.to_string(), g.get()))
                .collect();
            let histograms = locked(&self.histograms)
                .iter()
                .map(|(&n, h)| (n.to_string(), h.freeze()))
                .collect();
            Snapshot {
                counters,
                gauges,
                histograms,
            }
        }
    }

    /// The process-global [`Registry`].
    pub fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    /// Get-or-create the global counter `name`.
    pub fn counter(name: &'static str) -> &'static Counter {
        registry().counter(name)
    }

    /// Get-or-create the global gauge `name`.
    pub fn gauge(name: &'static str) -> &'static Gauge {
        registry().gauge(name)
    }

    /// Get-or-create the global histogram `name`.
    pub fn histogram(name: &'static str) -> &'static Histogram {
        registry().histogram(name)
    }
}

#[cfg(feature = "telemetry-off")]
mod noop {
    use super::Snapshot;

    /// No-op counter (`telemetry-off`): zero-sized, every method inert.
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// A counter at zero (and forever at zero in this build).
        pub const fn new() -> Counter {
            Counter
        }

        /// Discards `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            let _ = n;
        }

        /// Discards the increment.
        #[inline]
        pub fn incr(&self) {}

        /// Always zero.
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge (`telemetry-off`).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// A gauge at `0.0`.
        pub const fn new() -> Gauge {
            Gauge
        }

        /// Discards the value.
        pub fn set(&self, value: f64) {
            let _ = value;
        }

        /// Always `0.0`.
        pub fn get(&self) -> f64 {
            0.0
        }
    }

    /// No-op histogram (`telemetry-off`).
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// An empty histogram (and forever empty in this build).
        pub const fn new() -> Histogram {
            Histogram
        }

        /// Discards the observation.
        pub fn record(&self, value: u64) {
            let _ = value;
        }

        /// Always zero.
        pub fn count(&self) -> u64 {
            0
        }

        /// Always zero.
        pub fn sum(&self) -> u64 {
            0
        }

        /// Always zero.
        pub fn bucket(&self, index: usize) -> u64 {
            let _ = index;
            0
        }
    }

    /// No-op registry (`telemetry-off`): hands out shared inert metrics
    /// and snapshots empty.
    #[derive(Debug, Default)]
    pub struct Registry;

    impl Registry {
        /// The shared inert counter.
        pub fn counter(&self, name: &'static str) -> &'static Counter {
            static NOOP: Counter = Counter::new();
            let _ = name;
            &NOOP
        }

        /// The shared inert gauge.
        pub fn gauge(&self, name: &'static str) -> &'static Gauge {
            static NOOP: Gauge = Gauge::new();
            let _ = name;
            &NOOP
        }

        /// The shared inert histogram.
        pub fn histogram(&self, name: &'static str) -> &'static Histogram {
            static NOOP: Histogram = Histogram::new();
            let _ = name;
            &NOOP
        }

        /// Always the empty snapshot.
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }
    }

    /// The process-global (inert) [`Registry`].
    pub fn registry() -> &'static Registry {
        static REGISTRY: Registry = Registry;
        &REGISTRY
    }

    /// The shared inert counter.
    pub fn counter(name: &'static str) -> &'static Counter {
        registry().counter(name)
    }

    /// The shared inert gauge.
    pub fn gauge(name: &'static str) -> &'static Gauge {
        registry().gauge(name)
    }

    /// The shared inert histogram.
    pub fn histogram(name: &'static str) -> &'static Histogram {
        registry().histogram(name)
    }
}

#[cfg(not(feature = "telemetry-off"))]
pub use active::{counter, gauge, histogram, registry, Counter, Gauge, Histogram, Registry};
#[cfg(feature = "telemetry-off")]
pub use noop::{counter, gauge, histogram, registry, Counter, Gauge, Histogram, Registry};

/// One histogram frozen at snapshot time: total count, total sum, and
/// the non-empty buckets (`bucket index → hits`, see [`bucket_index`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets only.
    pub buckets: BTreeMap<usize, u64>,
}

impl HistogramSnapshot {
    /// Sum of all bucket hit counts (≥ `count` for a snapshot taken
    /// during concurrent recording, == `count` at rest).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.values().sum()
    }
}

/// Every registered metric frozen at one instant: plain sorted maps,
/// diffable with [`Snapshot::delta`] and serialisable to a stable JSON
/// text with [`Snapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter `name`, or 0 if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (entries that did not change are dropped);
    /// gauges keep `self`'s value (a gauge is a level, not a flow).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, &v)| {
                let d = v.saturating_sub(earlier.counter(name));
                (d != 0).then(|| (name.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let base = earlier.histograms.get(name);
                let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                let sum = h.sum.saturating_sub(base.map_or(0, |b| b.sum));
                let buckets = h
                    .buckets
                    .iter()
                    .filter_map(|(&i, &hits)| {
                        let d = hits
                            .saturating_sub(base.and_then(|b| b.buckets.get(&i)).map_or(0, |&v| v));
                        (d != 0).then_some((i, d))
                    })
                    .collect();
                Some((
                    name.clone(),
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                ))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Keeps only metrics whose name starts with one of `prefixes` —
    /// how golden tests pin a subsystem without freezing the whole
    /// registry.
    pub fn filtered(&self, prefixes: &[&str]) -> Snapshot {
        let keep = |name: &String| prefixes.iter().any(|p| name.starts_with(p));
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, &v)| (n.clone(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, &v)| (n.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, h)| (n.clone(), h.clone()))
                .collect(),
        }
    }

    /// The stable JSON text form (hand-written, no serde): sorted names,
    /// two-space indentation, no trailing newline. The format is a
    /// pinned contract (see the golden-snapshot test in the root crate).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SNAPSHOT_SCHEMA}\",");
        s.push_str("  \"counters\": {");
        render_map(&mut s, &self.counters, |s, v| {
            let _ = write!(s, "{v}");
        });
        s.push_str("},\n  \"gauges\": {");
        render_map(&mut s, &self.gauges, |s, v| {
            let _ = write!(s, "{}", if v.is_finite() { *v } else { 0.0 });
        });
        s.push_str("},\n  \"histograms\": {");
        render_map(&mut s, &self.histograms, |s, h| {
            let _ = write!(
                s,
                "{{ \"count\": {}, \"sum\": {}, \"buckets\": {{",
                h.count, h.sum
            );
            for (k, (i, hits)) in h.buckets.iter().enumerate() {
                let sep = if k == 0 { " " } else { ", " };
                let _ = write!(s, "{sep}\"{i}\": {hits}");
            }
            if h.buckets.is_empty() {
                s.push_str("} }");
            } else {
                s.push_str(" } }");
            }
        });
        s.push_str("}\n}");
        s
    }
}

/// Renders one `"name": <value>` map body (between the braces the
/// caller wrote), with each entry on its own indented line.
fn render_map<V>(
    s: &mut String,
    map: &BTreeMap<String, V>,
    mut value: impl FnMut(&mut String, &V),
) {
    if map.is_empty() {
        return;
    }
    s.push('\n');
    for (k, (name, v)) in map.iter().enumerate() {
        let _ = write!(s, "    \"{}\": ", json_escape(name));
        value(s, v);
        s.push_str(if k + 1 == map.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // gauge round-trips are exact bit copies
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_significant_bits() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let c = Counter::new();
        c.add(2);
        c.incr();
        let g = Gauge::new();
        g.set(0.25);
        g.set(f64::NAN); // clamped to keep JSON valid
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(300);
        if ENABLED {
            assert_eq!(c.get(), 3);
            assert_eq!(g.get(), 0.0);
            assert_eq!(h.count(), 3);
            assert_eq!(h.sum(), 305);
            assert_eq!(h.bucket(0), 1);
            assert_eq!(h.bucket(3), 1);
            assert_eq!(h.bucket(9), 1);
        } else {
            assert_eq!(c.get(), 0);
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn registry_returns_one_handle_per_name() {
        let a = counter("test.registry.same");
        let b = counter("test.registry.same");
        assert!(std::ptr::eq(a, b), "one counter per name");
        a.incr();
        if ENABLED {
            assert!(b.get() >= 1, "the handles alias one metric");
            assert!(registry()
                .snapshot()
                .counters
                .contains_key("test.registry.same"));
        } else {
            assert_eq!(registry().snapshot(), Snapshot::default());
        }
    }

    #[test]
    fn delta_subtracts_and_drops_unchanged() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("a".into(), 2);
        earlier.counters.insert("b".into(), 7);
        let mut later = earlier.clone();
        later.counters.insert("a".into(), 5);
        later.counters.insert("c".into(), 1);
        later.gauges.insert("g".into(), 0.5);
        let d = later.delta(&earlier);
        assert_eq!(d.counter("a"), 3);
        assert_eq!(d.counter("b"), 0, "unchanged counters are dropped");
        assert!(!d.counters.contains_key("b"));
        assert_eq!(d.counter("c"), 1);
        assert_eq!(d.gauge("g"), Some(0.5), "gauges keep the later level");
    }

    #[test]
    fn histogram_delta_subtracts_buckets() {
        let mut earlier = Snapshot::default();
        earlier.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 2,
                sum: 6,
                buckets: [(2, 2)].into_iter().collect(),
            },
        );
        let mut later = Snapshot::default();
        later.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 5,
                sum: 26,
                buckets: [(2, 3), (5, 2)].into_iter().collect(),
            },
        );
        let d = later.delta(&earlier);
        let h = d.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 20);
        assert_eq!(h.buckets, [(2, 1), (5, 2)].into_iter().collect());
        assert!(later.delta(&later).histogram("h").is_none(), "no change");
    }

    #[test]
    fn filtered_keeps_matching_prefixes() {
        let mut s = Snapshot::default();
        s.counters.insert("engine.records".into(), 1);
        s.counters.insert("framing.records".into(), 2);
        s.counters.insert("runtime.records".into(), 3);
        let f = s.filtered(&["engine.", "framing."]);
        assert_eq!(f.counters.len(), 2);
        assert_eq!(f.counter("runtime.records"), 0);
    }

    #[test]
    fn json_text_form_is_stable() {
        let mut s = Snapshot::default();
        s.counters.insert("b.two".into(), 2);
        s.counters.insert("a.one".into(), 1);
        s.gauges.insert("g".into(), 0.5);
        s.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 3,
                sum: 305,
                buckets: [(3, 2), (9, 1)].into_iter().collect(),
            },
        );
        let expect = concat!(
            "{\n",
            "  \"schema\": \"rfjson-telemetry/v1\",\n",
            "  \"counters\": {\n",
            "    \"a.one\": 1,\n",
            "    \"b.two\": 2\n",
            "  },\n",
            "  \"gauges\": {\n",
            "    \"g\": 0.5\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"h\": { \"count\": 3, \"sum\": 305, \"buckets\": { \"3\": 2, \"9\": 1 } }\n",
            "  }\n",
            "}"
        );
        assert_eq!(s.to_json(), expect);
        assert_eq!(
            Snapshot::default().to_json(),
            concat!(
                "{\n",
                "  \"schema\": \"rfjson-telemetry/v1\",\n",
                "  \"counters\": {},\n",
                "  \"gauges\": {},\n",
                "  \"histograms\": {}\n",
                "}"
            )
        );
    }

    #[test]
    fn concurrent_increments_lose_no_updates() {
        // Satellite: the registry under concurrent increment from scoped
        // threads — no lost updates on any metric type.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let c = counter("test.concurrent.counter");
        let h = histogram("test.concurrent.histogram");
        let c0 = c.get();
        let h0 = h.count();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.incr();
                        h.record(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        if ENABLED {
            let n = THREADS as u64 * PER_THREAD;
            assert_eq!(c.get() - c0, n);
            assert_eq!(h.count() - h0, n);
        }
    }

    #[test]
    fn snapshot_during_increment_is_torn_free_per_metric() {
        // Satellite: a snapshot racing a writer never observes a counted
        // record without its bucket entry (count ≤ Σ buckets), thanks to
        // the release/acquire pairing in Histogram.
        let h = histogram("test.concurrent.torn_free");
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..50_000u64 {
                    h.record(i);
                }
            });
            for _ in 0..200 {
                let snap = registry().snapshot();
                if let Some(hs) = snap.histogram("test.concurrent.torn_free") {
                    assert!(
                        hs.count <= hs.bucket_total(),
                        "count {} outran buckets {}",
                        hs.count,
                        hs.bucket_total()
                    );
                }
            }
            writer.join().unwrap();
        });
        if ENABLED {
            let snap = registry().snapshot();
            let hs = snap.histogram("test.concurrent.torn_free").unwrap();
            assert!(hs.count >= 50_000);
            assert_eq!(hs.count, hs.bucket_total(), "at rest the books balance");
        }
    }
}

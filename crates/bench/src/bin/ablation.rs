//! Ablations of the paper's §V future-work ideas:
//!
//! 1. **Omitting substrings in the string search** — realised as matching
//!    a shorter infix of the needle (dropping comparator blocks from the
//!    end keeps the no-false-negative guarantee while shrinking both the
//!    comparator bank and the run counter). Measured as the record-level
//!    FPR of the composed `{ s(infix) & v(range) }` filter.
//! 2. **Adjusting the bounds of value range filters** — widening bounds to
//!    fewer significant digits shrinks the range automaton at the price of
//!    extra false positives (never false negatives).
//!
//! `cargo run -p rfjson-bench --bin ablation --release`

use rfjson_bench::standard_datasets;
use rfjson_core::cost::option_cost;
use rfjson_core::eval::measure;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::query::predicate_bounds;
use rfjson_riotbench::{Dataset, Query};

fn main() {
    let (smartcity, taxi, _) = standard_datasets();

    println!("Ablation 1 — omitting substrings: {{ sB(infix) & v(range) }} vs full needle\n");
    ablate_infix(
        "QT / tolls_amount, B=2, member scope",
        &taxi,
        &Query::qt(),
        3,
        2,
        StructScope::Member,
    );
    println!();
    ablate_infix(
        "QS0 / temperature, B=1, object scope",
        &smartcity,
        &Query::qs0(),
        0,
        1,
        StructScope::Object,
    );

    println!("\nAblation 2 — widening range-filter bounds to fewer significant digits\n");
    println!(
        "{:<18} {:>6} {:>8}   configuration",
        "precision", "LUTs", "FPR"
    );
    let q = Query::qs1();
    for digits in [0usize, 1, 2] {
        // Attribute 3 = dust (186.61 ≤ f ≤ 5188.21), the costliest automaton.
        let pred = &q.predicates[3];
        let bounds = predicate_bounds(pred).expect("valid");
        let bounds = if digits == 0 {
            bounds
        } else {
            bounds.widened_to_digits(digits)
        };
        let expr = Expr::Num(bounds.clone());
        let luts = option_cost(&expr).luts;
        let m = measure(&expr, &smartcity, &q);
        assert_eq!(m.false_negatives, 0, "widening must stay FN-free");
        let label = if digits == 0 {
            "exact".to_string()
        } else {
            format!("{digits} sig. digit(s)")
        };
        println!("{label:<18} {luts:>6} {:>8.3}   v({bounds})", m.fpr());
    }

    println!("\nBoth knobs trade accuracy for resources without ever dropping a match —");
    println!("the §V outlook (\"potentially allowing further resource savings without a");
    println!("large increase in false-positives\"), quantified.");
}

fn ablate_infix(
    title: &str,
    dataset: &Dataset,
    query: &Query,
    pred_idx: usize,
    block: usize,
    scope: StructScope,
) {
    println!("  {title}");
    println!(
        "  {:<18} {:>4} {:>6} {:>8} {:>4}",
        "infix", "len", "LUTs", "FPR", "FN"
    );
    let pred = &query.predicates[pred_idx];
    let full = pred.attribute.as_bytes();
    let bounds = predicate_bounds(pred).expect("valid");
    let mut keep = full.len();
    loop {
        let infix = &full[..keep];
        let expr = Expr::context_scoped(
            scope,
            [
                Expr::substring(infix, block).expect("valid"),
                Expr::Num(bounds.clone()),
            ],
        );
        let luts = option_cost(&expr).luts;
        let m = measure(&expr, dataset, query);
        println!(
            "  {:<18} {:>4} {:>6} {:>8.3} {:>4}",
            String::from_utf8_lossy(infix),
            keep,
            luts,
            m.fpr(),
            m.false_negatives
        );
        assert_eq!(m.false_negatives, 0, "infix matching must stay FN-free");
        if keep <= 4 {
            break;
        }
        keep -= 2;
    }
}

//! Tables V–VII and Fig. 3: the full design-space exploration for QS0,
//! QS1 and QT — Pareto fronts printed in paper notation, full point
//! clouds written as `fig3_<query>.csv` (FPR, LUTs, num_attributes).
//!
//! `cargo run -p rfjson-bench --bin tables5_6_7 --release [--csv-dir DIR]`

use rfjson_bench::{standard_datasets, RECORDS};
use rfjson_core::design::{explore, pareto, ExploreOptions};
use rfjson_riotbench::{Dataset, Query};
use std::io::Write;

fn main() {
    let csv_dir = std::env::args()
        .skip_while(|a| a != "--csv-dir")
        .nth(1)
        .unwrap_or_else(|| ".".to_string());
    let (smartcity, taxi, _) = standard_datasets();

    run(
        "Table V — Pareto points for QS0",
        &Query::qs0(),
        &smartcity,
        &csv_dir,
        "fig3_qs0.csv",
    );
    run(
        "Table VI — Pareto points for QS1",
        &Query::qs1(),
        &smartcity,
        &csv_dir,
        "fig3_qs1.csv",
    );
    run(
        "Table VII — Pareto points for QT",
        &Query::qt(),
        &taxi,
        &csv_dir,
        "fig3_qt.csv",
    );
}

fn run(title: &str, query: &Query, dataset: &Dataset, csv_dir: &str, csv_name: &str) {
    println!("\n{title}");
    println!(
        "  query: {query}\n  dataset: {} records, measured selectivity {:.3}",
        RECORDS,
        query.selectivity(dataset)
    );
    let opts = ExploreOptions::default();
    let points = explore(query, dataset, &opts);
    println!("  design points evaluated: {}", points.len());

    // Fig. 3 scatter CSV.
    let path = format!("{csv_dir}/{csv_name}");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "fpr,luts,num_attributes");
            for p in &points {
                let _ = writeln!(f, "{:.6},{},{}", p.fpr, p.luts, p.num_attributes);
            }
            println!("  Fig. 3 scatter data -> {path}");
        }
        Err(e) => eprintln!("  (could not write {path}: {e})"),
    }

    let front = pareto(&points);
    println!("\n  {:>6}  {:>5}  raw-filter configuration", "FPR", "LUTs");
    for p in &front {
        println!("  {:>6.3}  {:>5}  {}", p.fpr, p.luts, p.notation(query));
    }
}

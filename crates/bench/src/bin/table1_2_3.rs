//! Tables I–III: comparison of the three string-matching techniques —
//! positional FPR and mapped LUTs — over SmartCity, Taxi and Twitter.
//!
//! `cargo run -p rfjson-bench --bin table1_2_3 --release`

use rfjson_bench::{
    cell, print_row, standard_datasets, SMARTCITY_NEEDLES, TAXI_NEEDLES, TWITTER_NEEDLES,
};
use rfjson_core::cost::option_cost;
use rfjson_core::eval::positional_fpr;
use rfjson_core::expr::Expr;
use rfjson_core::primitive::{DfaStringMatcher, SubstringMatcher, WindowMatcher};
use rfjson_riotbench::Dataset;

fn main() {
    let (smartcity, taxi, twitter) = standard_datasets();
    run_table(
        "Table I — SmartCity dataset",
        &SMARTCITY_NEEDLES,
        &smartcity,
    );
    run_table("Table II — Taxi dataset", &TAXI_NEEDLES, &taxi);
    run_table("Table III — Twitter dataset", &TWITTER_NEEDLES, &twitter);
    println!("\nFPR here is positional: a record counts as a false positive when the");
    println!("matcher fires at a byte where the needle does not actually end. Exact");
    println!("techniques (DFA, N-byte) are therefore 0.000 by construction, as in the paper.");
}

fn run_table(title: &str, needles: &[&str], dataset: &Dataset) {
    println!("\n{title} ({} records)", dataset.len());
    let widths = [18usize, 10, 10, 10, 10, 10, 10];
    print_row(
        &[
            "search string".into(),
            "(i) DFA".into(),
            "(ii) N-byte".into(),
            "B=1".into(),
            "B=2".into(),
            "B=3".into(),
            "B=4".into(),
        ],
        &widths,
    );
    for needle in needles {
        let nb = needle.as_bytes();
        let mut cols = vec![needle.to_string()];
        // (i) DFA
        let mut dfa = DfaStringMatcher::new(nb);
        let dfa_luts = option_cost(&Expr::dfa_string(nb).expect("valid")).luts;
        cols.push(cell(positional_fpr(&mut dfa, nb, dataset), dfa_luts));
        // (ii) full window
        let mut win = WindowMatcher::new(nb);
        let win_luts = option_cost(&Expr::window(nb).expect("valid")).luts;
        cols.push(cell(positional_fpr(&mut win, nb, dataset), win_luts));
        // (iii) substrings, B = 1..4
        for b in 1..=4usize {
            if b > nb.len() {
                cols.push("-".into());
                continue;
            }
            let mut m = SubstringMatcher::new(nb, b).expect("valid");
            let luts = option_cost(&Expr::substring(nb, b).expect("valid")).luts;
            cols.push(cell(positional_fpr(&mut m, nb, dataset), luts));
        }
        print_row(&cols, &widths);
    }
}

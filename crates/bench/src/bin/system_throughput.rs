//! §IV-B system experiment: 44 MB of inflated RiotBench JSON streamed
//! through 7 parallel raw-filter lanes at 200 MHz with a DMA burst model —
//! the paper measured 1.33 GB/s against a 1.4 GB/s theoretical bound,
//! enough for a 10 GBit/s NIC at line rate.
//!
//! `cargo run -p rfjson-bench --bin system_throughput --release`

use rfjson_core::arch::RawFilterSystem;
use rfjson_core::engine::Engine;
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_riotbench::{smartcity_corpus, Query};
use std::time::Instant;

fn main() {
    println!("§IV-B — raw filtering at system level\n");
    let base = smartcity_corpus(4000);
    let dataset = base.inflated_to(44 * 1024 * 1024);
    let stream = dataset.stream();
    println!(
        "stream: {:.1} MB of inflated SmartCity JSON ({} records)",
        stream.len() as f64 / 1e6,
        dataset.len()
    );

    let query = Query::qs1();
    let expr = query_to_exprs(&query, 1).expect("query converts");
    println!("filter: {expr}\n");

    for lanes in [1, 2, 4, 7, 8] {
        let mut system = RawFilterSystem::new(&expr, lanes);
        let wall = Instant::now();
        let (matches, report) = system.process(&stream);
        let wall = wall.elapsed();
        let sw_mbps = stream.len() as f64 / wall.as_secs_f64() / 1e6;
        println!(
            "{lanes} lane(s): modelled {:.2} GB/s (theoretical {:.2}, eff. {:.1} %)  \
             10GbE line rate: {}  [software model executed at {:.0} MB/s]",
            report.gigabytes_per_second,
            report.theoretical_gbps,
            report.efficiency() * 100.0,
            if report.sustains_10gbe() {
                "yes"
            } else {
                "no "
            },
            sw_mbps,
        );
        if lanes == 7 {
            println!(
                "    -> paper: 1.33 GB/s achieved, 1.4 GB/s theoretical; {} of {} records pass",
                matches.iter().filter(|m| **m).count(),
                report.records
            );
        }
    }
    // The software fast path on the same stream: one batch-engine "lane".
    let mut engine = Engine::compile(&expr);
    let wall = Instant::now();
    let decisions = engine.filter_stream(&stream);
    let wall = wall.elapsed();
    println!(
        "\nbatch engine (1 CPU core): {:.0} MB/s, {} of {} records pass",
        stream.len() as f64 / wall.as_secs_f64() / 1e6,
        decisions.iter().filter(|m| **m).count(),
        decisions.len()
    );
    println!("Match-signal write-back only: the CPU parses just the surviving records.");
}

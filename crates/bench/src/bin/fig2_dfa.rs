//! Fig. 2: the number-filter build process for `i ≥ 35` — regex
//! derivation steps, subset construction, minimisation — plus the range
//! automaton sizes used in the evaluation queries.
//!
//! `cargo run -p rfjson-bench --bin fig2_dfa`

use rfjson_redfa::range::{ge_int_regex, le_int_regex, NumberBounds};
use rfjson_redfa::{Decimal, Dfa};

fn main() {
    println!("Fig. 2 — number filter build process for i >= 35\n");
    let bound: Decimal = "35".parse().expect("literal");
    let regex = ge_int_regex(&bound);
    println!("step 1 (derived regex):\n  {regex}\n");
    let dfa = Dfa::from_regex(&regex);
    let min = dfa.minimized();
    println!(
        "step 2 (subset construction): {} states; minimised: {} states, {} input classes\n",
        dfa.num_states(),
        min.num_states(),
        min.num_classes()
    );
    println!("{min}");

    println!("\nrange automata of the evaluation queries:");
    println!(
        "{:<28} {:>6} {:>8} {:>8}",
        "range", "states", "classes", "accepts"
    );
    for (name, b) in [
        ("v(12 <= i <= 49)", NumberBounds::int_range(12, 49)),
        ("v(0 <= i <= 5153)", NumberBounds::int_range(0, 5153)),
        (
            "v(1345 <= i <= 26282)",
            NumberBounds::int_range(1345, 26282),
        ),
        ("v(140 <= i <= 3155)", NumberBounds::int_range(140, 3155)),
        (
            "v(0.7 <= f <= 35.1)",
            NumberBounds::new(
                "0.7".parse().expect("lit"),
                "35.1".parse().expect("lit"),
                rfjson_redfa::range::NumberKind::Float,
            )
            .expect("valid"),
        ),
        (
            "v(-12.5 <= f <= 43.1)",
            NumberBounds::new(
                "-12.5".parse().expect("lit"),
                "43.1".parse().expect("lit"),
                rfjson_redfa::range::NumberKind::Float,
            )
            .expect("valid"),
        ),
    ] {
        let d = b.to_dfa();
        let lo = b.lo().to_f64();
        let hi = b.hi().to_f64();
        let mid = format!("{}", f64::midpoint(lo, hi).round());
        println!(
            "{name:<28} {:>6} {:>8} {:>8}",
            d.num_states(),
            d.num_classes(),
            if d.accepts(mid.as_bytes()) {
                "mid ok"
            } else {
                "mid ??"
            },
        );
    }

    // Upper-bound derivation example too (the paper describes both).
    let le = le_int_regex(&"49".parse::<Decimal>().expect("literal"));
    println!("\nupper-bound regex for i <= 49:\n  {le}");
}

//! Fig. 1: the RTL architecture of the "temperature" substring matcher
//! with block length B = 2 — dumped from the actual elaboration, with
//! structural statistics and the LUT mapping report.
//!
//! `cargo run -p rfjson-bench --bin fig1_rtl`

use rfjson_core::cost::LUT_K;
use rfjson_core::elaborate::elaborate_option;
use rfjson_core::expr::Expr;
use rfjson_core::primitive::SubstringMatcher;
use rfjson_rtl::stats::NetlistStats;
use rfjson_techmap::map_netlist;

fn main() {
    let expr = Expr::substring(b"temperature", 2).expect("valid spec");
    let matcher = SubstringMatcher::new(b"temperature", 2).expect("valid spec");

    println!("Fig. 1 — RTL architecture of s2(\"temperature\")\n");
    println!("byte stream, one byte per cycle");
    println!("  └─ 1-deep byte buffer (8 FFs) holds the previous byte");
    print!("  └─ comparators: ");
    let blocks: Vec<String> = matcher
        .blocks()
        .iter()
        .map(|b| format!("=='{}'", String::from_utf8_lossy(b)))
        .collect();
    println!("{}", blocks.join("  "));
    println!("  └─ OR-reduce → saturating counter (reset on miss)");
    println!(
        "  └─ fire when count ≥ len(SS) − B + 1 = {}\n",
        matcher.target()
    );

    let netlist = elaborate_option(&expr, "s2_temperature");
    println!("elaborated netlist: {}", NetlistStats::of(&netlist));
    let report = map_netlist(&netlist, LUT_K);
    println!("mapped to {LUT_K}-input LUTs: {report}\n");

    println!("structural dump:\n");
    let dump = netlist.dump();
    // The full dump is long; show the head and tail.
    let lines: Vec<&str> = dump.lines().collect();
    if lines.len() > 60 {
        for l in &lines[..40] {
            println!("{l}");
        }
        println!("  ... ({} more lines) ...", lines.len() - 50);
        for l in &lines[lines.len() - 10..] {
            println!("{l}");
        }
    } else {
        println!("{dump}");
    }
}

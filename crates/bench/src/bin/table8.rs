//! Table VIII: the evaluation queries with paper and measured
//! selectivities, plus per-predicate pass rates (which expose the taxi
//! attribute correlations of §IV-A).
//!
//! `cargo run -p rfjson-bench --bin table8 --release`

use rfjson_bench::standard_datasets;
use rfjson_riotbench::stats::{attribute_stats, predicate_pass_rates};
use rfjson_riotbench::{Dataset, Query};

fn main() {
    let (smartcity, taxi, _) = standard_datasets();
    println!("Table VIII — RiotBench queries as used in the evaluation\n");
    for (query, dataset) in [
        (Query::qs0(), &smartcity),
        (Query::qs1(), &smartcity),
        (Query::qt(), &taxi),
    ] {
        show(&query, dataset);
    }
}

fn show(query: &Query, dataset: &Dataset) {
    println!("{query}");
    let measured = query.selectivity(dataset);
    println!(
        "  selectivity: paper {:.1} %, measured {:.1} % ({} records)",
        query.paper_selectivity * 100.0,
        measured * 100.0,
        dataset.len()
    );
    println!("  per-predicate pass rates and value statistics:");
    for (attr, rate) in predicate_pass_rates(dataset, query) {
        let stats = attribute_stats(dataset, query, &attr)
            .map_or_else(|| "absent".into(), |s| s.to_string());
        println!("    {attr:<20} pass {:>5.1} %   {stats}", rate * 100.0);
    }
    let product: f64 = predicate_pass_rates(dataset, query)
        .iter()
        .map(|(_, r)| r)
        .product();
    println!(
        "  independence product {:.3} vs joint {:.3}{}\n",
        product,
        measured,
        if measured > product * 1.2 {
            "  <- correlated attributes (§IV-A)"
        } else {
            ""
        }
    );
}

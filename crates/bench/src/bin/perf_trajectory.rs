//! Performance trajectory: software filtering throughput (MB/s) of the
//! cosim-faithful byte-serial model, the flat batch engine, and the
//! sharded parallel runtime, on the paper's query workloads, written as
//! machine-readable JSON.
//!
//! Each PR that touches a hot path reruns this and checks in a
//! `BENCH_PR<N>.json` at the repo root; the sequence of files is the
//! repo's perf trajectory and future PRs are held to it.
//!
//! ```text
//! cargo run -p rfjson-bench --bin perf_trajectory --release -- \
//!     [--quick] [--telemetry] [--pr N] [--threads N] [--shards N] \
//!     [--out BENCH_PRN.json]
//! ```
//!
//! `--quick` shrinks the corpora and iteration count for CI smoke use;
//! `--telemetry` embeds a per-workload `rfjson-telemetry` snapshot delta
//! (the pipeline counters accumulated across that workload's passes);
//! `--pr N` stamps the measurement (and the default output filename) for
//! PR N; `--threads N` overrides the detected hardware parallelism (the
//! reported `threads_available` and the default lane count — the knob
//! that makes parallel numbers meaningful on a 1-core container);
//! `--shards N` pins the parallel runner's lane count directly and wins
//! over `--threads`. The binary always cross-checks that engine, model,
//! sharded runner, and the fused multi-query plan produce identical
//! per-record decisions and exits non-zero on any divergence.
//!
//! Besides the PR 2 workloads (QS0/QS1/QT/QTW at standard corpus size),
//! a multi-MB inflated workload (`QT-XL`, the paper's §IV-B "inflated
//! JSON data" construction) exercises the sharded path at the stream
//! sizes where fan-out matters, and the `MQ-*` multi-query workloads run
//! **all five RiotBench query expressions as one fused batch** against
//! five independent serial engine passes — the scan-sharing measurement
//! of the subscription-serving deployment model.

use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::multi::{MultiBackend, MultiEngine};
use rfjson_core::query::query_to_exprs;
use rfjson_core::{FilterBackend, IngestLimits};
use rfjson_jsonstream::frame::split_records;
use rfjson_riotbench::{smartcity_corpus, taxi_corpus, twitter_corpus, Dataset, Query};
use rfjson_runtime::{MultiShardedRunner, ShardedRunner};
use rfjson_telemetry::Snapshot;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Schema identifier for `BENCH_*.json` consumers (v5 adds the
/// top-level `telemetry_enabled` flag and, under `--telemetry`, a
/// per-workload `telemetry` object: the `rfjson-telemetry` snapshot
/// *delta* accumulated across that workload's cross-checks and timed
/// passes — pipeline counters riding along with the throughput numbers).
const SCHEMA: &str = "rfjson-perf-trajectory/v5";
/// Default `--pr` value: the PR that last reran the trajectory.
const DEFAULT_PR: u32 = 10;

struct WorkloadResult {
    name: String,
    dataset: String,
    records: usize,
    stream_bytes: usize,
    expr: String,
    accepted: usize,
    model_mbps: f64,
    engine_mbps: f64,
    block_mbps: f64,
    prefilter_hit_rate: f64,
    prefilter_state: String,
    parallel_mbps: f64,
    shards: usize,
    /// Telemetry snapshot delta across this workload's passes
    /// (`--telemetry` only).
    telemetry: Option<Snapshot>,
}

struct MultiWorkloadResult {
    name: String,
    dataset: String,
    records: usize,
    stream_bytes: usize,
    queries: usize,
    /// All queries served by N independent engine passes (stream bytes
    /// over the *total* time of the N passes — the cost fused execution
    /// is up against).
    serial_mbps: f64,
    /// All queries served by one fused pass.
    fused_mbps: f64,
    parallel_fused_mbps: f64,
    shards: usize,
    units_total: usize,
    units_pool: usize,
    units_shared: usize,
    /// Telemetry snapshot delta across this workload's passes
    /// (`--telemetry` only).
    telemetry: Option<Snapshot>,
}

impl MultiWorkloadResult {
    /// How much cheaper one fused scan is than N serial scans.
    fn scan_sharing_factor(&self) -> f64 {
        ratio(self.fused_mbps, self.serial_mbps)
    }

    fn parallel_speedup(&self) -> f64 {
        ratio(self.parallel_fused_mbps, self.fused_mbps)
    }
}

impl WorkloadResult {
    fn engine_speedup(&self) -> f64 {
        ratio(self.engine_mbps, self.model_mbps)
    }

    fn parallel_speedup(&self) -> f64 {
        ratio(self.parallel_mbps, self.engine_mbps)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Best-of-`iters` throughput of one closure over `bytes` input bytes.
fn best_mbps(bytes: usize, iters: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best / 1e6
}

/// Snapshot-the-world entry hook for `--telemetry`: the per-workload
/// delta is everything the whole pipeline recorded while the workload
/// ran (cross-checks and timed passes included).
fn telemetry_before(enabled: bool) -> Option<Snapshot> {
    enabled.then(|| rfjson_telemetry::registry().snapshot())
}

fn telemetry_delta(before: Option<Snapshot>) -> Option<Snapshot> {
    before.map(|b| rfjson_telemetry::registry().snapshot().delta(&b))
}

fn measure(
    name: &str,
    expr: &Expr,
    dataset: &Dataset,
    iters: usize,
    shards: usize,
    telemetry: bool,
) -> WorkloadResult {
    let tele_before = telemetry_before(telemetry);
    let stream = dataset.stream();
    let mut model = CompiledFilter::compile(expr);
    let mut engine = Engine::compile(expr);
    let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(expr, shards);

    let model_decisions = model.filter_stream(&stream);
    let engine_decisions = engine.filter_stream(&stream);
    let parallel_decisions = runner.filter_stream(&stream);
    if model_decisions != engine_decisions {
        eprintln!("FATAL: engine and model decisions diverge on {name}");
        std::process::exit(1);
    }
    if parallel_decisions != engine_decisions {
        eprintln!("FATAL: sharded runner and engine decisions diverge on {name}");
        std::process::exit(1);
    }

    // Prefilter hit rate: fraction of records the literal prefilter
    // proved NoMatch on the first (decision-checked) pass above.
    let (checked, rejected) = engine.prefilter_stats();
    let prefilter_hit_rate = if checked > 0 {
        rejected as f64 / checked as f64
    } else {
        0.0
    };

    let model_mbps = best_mbps(stream.len(), iters, || {
        black_box(model.filter_stream(black_box(&stream)));
    });
    let mut out = Vec::new();
    let engine_mbps = best_mbps(stream.len(), iters, || {
        out.clear();
        engine.filter_stream_into(black_box(&stream), &mut out);
        black_box(out.len());
    });
    // The block-scan kernel with framing excluded: records pre-split,
    // one `on_block` + separator byte + reset per record.
    let recs: Vec<&[u8]> = split_records(&stream).collect();
    let block_mbps = best_mbps(stream.len(), iters, || {
        let mut accepted = 0usize;
        for r in &recs {
            let last = engine.on_block(black_box(r));
            accepted += usize::from(engine.on_byte(b'\n') || last);
            engine.reset();
        }
        black_box(accepted);
    });
    let parallel_mbps = best_mbps(stream.len(), iters, || {
        out.clear();
        runner.filter_stream_into(black_box(&stream), &mut out);
        black_box(out.len());
    });

    WorkloadResult {
        name: name.to_string(),
        dataset: dataset.name().to_string(),
        records: dataset.len(),
        stream_bytes: stream.len(),
        expr: expr.to_string(),
        accepted: engine_decisions.iter().filter(|m| **m).count(),
        model_mbps,
        engine_mbps,
        block_mbps,
        prefilter_hit_rate,
        // Captured after every timed pass: with enough records the
        // prefilter has left probation and settled on live (it keeps
        // rejecting) or disabled (the stream proved unselective).
        prefilter_state: engine.prefilter_status().to_string(),
        parallel_mbps,
        shards,
        telemetry: telemetry_delta(tele_before),
    }
}

/// Measures one fused multi-query workload: the whole `exprs` batch over
/// `dataset`, serial N-pass engines vs the fused [`MultiEngine`] vs the
/// sharded fused runner, with full decision cross-checks.
fn measure_multi(
    name: &str,
    exprs: &[Expr],
    dataset: &Dataset,
    iters: usize,
    shards: usize,
    telemetry: bool,
) -> MultiWorkloadResult {
    let tele_before = telemetry_before(telemetry);
    let stream = dataset.stream();
    let mut engines: Vec<Engine> = exprs.iter().map(Engine::compile).collect();
    let mut fused = MultiEngine::compile_batch(exprs);
    let mut runner: MultiShardedRunner<MultiEngine> =
        MultiShardedRunner::with_shards(exprs, shards);

    // Cross-check: every fused per-query verdict vector must be
    // byte-identical to the single-query engine's, and the sharded fused
    // plan to the serial fused plan.
    let fused_verdicts = fused.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
    for (q, engine) in engines.iter_mut().enumerate() {
        let single = engine.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
        if fused_verdicts.query_verdicts(q) != single {
            eprintln!("FATAL: fused and single-query decisions diverge on {name} query {q}");
            std::process::exit(1);
        }
    }
    match runner.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED) {
        Ok(v) if v == fused_verdicts => {}
        _ => {
            eprintln!("FATAL: sharded fused and serial fused decisions diverge on {name}");
            std::process::exit(1);
        }
    }

    // Serial baseline: the same N queries as N independent full passes
    // (reusing one decision buffer — the honest cost of serving the
    // batch without scan sharing).
    let mut out = Vec::new();
    let serial_mbps = best_mbps(stream.len(), iters, || {
        for engine in &mut engines {
            out.clear();
            engine.filter_stream_into(black_box(&stream), &mut out);
            black_box(out.len());
        }
    });
    let mut batch_out = fused_verdicts.clone();
    let fused_mbps = best_mbps(stream.len(), iters, || {
        batch_out.clear();
        fused.filter_stream_verdicts_into(
            black_box(&stream),
            IngestLimits::UNLIMITED,
            &mut batch_out,
        );
        black_box(batch_out.num_records());
    });
    let parallel_fused_mbps = best_mbps(stream.len(), iters, || {
        let v = runner
            .filter_stream_verdicts(black_box(&stream), IngestLimits::UNLIMITED)
            .expect("no faults injected");
        black_box(v.num_records());
    });

    let stats = fused.share_stats();
    MultiWorkloadResult {
        name: name.to_string(),
        dataset: dataset.name().to_string(),
        records: dataset.len(),
        stream_bytes: stream.len(),
        queries: exprs.len(),
        serial_mbps,
        fused_mbps,
        parallel_fused_mbps,
        shards,
        units_total: stats.total_units(),
        units_pool: stats.pool.total(),
        units_shared: stats.shared_units(),
        telemetry: telemetry_delta(tele_before),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Re-indents a multi-line JSON value so it nests at `pad` (the first
/// line stays in place after its `"key": ` prefix).
fn indent_json(json: &str, pad: &str) -> String {
    let mut lines = json.lines();
    let mut s = lines.next().unwrap_or("{}").to_string();
    for line in lines {
        s.push('\n');
        s.push_str(pad);
        s.push_str(line);
    }
    s
}

fn to_json(
    pr: u32,
    quick: bool,
    threads: usize,
    telemetry: bool,
    results: &[WorkloadResult],
    multi: &[MultiWorkloadResult],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pr\": {pr},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"telemetry_enabled\": {telemetry},");
    let _ = writeln!(s, "  \"threads_available\": {threads},");
    s.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(s, "      \"dataset\": \"{}\",", json_escape(&r.dataset));
        let _ = writeln!(s, "      \"records\": {},", r.records);
        let _ = writeln!(s, "      \"stream_bytes\": {},", r.stream_bytes);
        let _ = writeln!(s, "      \"expr\": \"{}\",", json_escape(&r.expr));
        let _ = writeln!(s, "      \"accepted\": {},", r.accepted);
        let _ = writeln!(s, "      \"model_mbps\": {:.3},", r.model_mbps);
        let _ = writeln!(s, "      \"engine_mbps\": {:.3},", r.engine_mbps);
        let _ = writeln!(s, "      \"block_mbps\": {:.3},", r.block_mbps);
        let _ = writeln!(
            s,
            "      \"prefilter_hit_rate\": {:.4},",
            r.prefilter_hit_rate
        );
        let _ = writeln!(
            s,
            "      \"prefilter_state\": \"{}\",",
            json_escape(&r.prefilter_state)
        );
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.engine_speedup());
        let _ = writeln!(s, "      \"parallel_mbps\": {:.3},", r.parallel_mbps);
        let _ = writeln!(s, "      \"parallel_shards\": {},", r.shards);
        let _ = writeln!(
            s,
            "      \"parallel_speedup\": {:.3},",
            r.parallel_speedup()
        );
        if let Some(t) = &r.telemetry {
            let _ = writeln!(
                s,
                "      \"telemetry\": {},",
                indent_json(&t.to_json(), "      ")
            );
        }
        s.push_str("      \"decisions_agree\": true\n");
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"multi_workloads\": [\n");
    for (i, r) in multi.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(s, "      \"dataset\": \"{}\",", json_escape(&r.dataset));
        let _ = writeln!(s, "      \"records\": {},", r.records);
        let _ = writeln!(s, "      \"stream_bytes\": {},", r.stream_bytes);
        let _ = writeln!(s, "      \"queries\": {},", r.queries);
        let _ = writeln!(s, "      \"serial_mbps\": {:.3},", r.serial_mbps);
        let _ = writeln!(s, "      \"fused_mbps\": {:.3},", r.fused_mbps);
        let _ = writeln!(
            s,
            "      \"scan_sharing_factor\": {:.3},",
            r.scan_sharing_factor()
        );
        let _ = writeln!(
            s,
            "      \"parallel_fused_mbps\": {:.3},",
            r.parallel_fused_mbps
        );
        let _ = writeln!(s, "      \"parallel_shards\": {},", r.shards);
        let _ = writeln!(
            s,
            "      \"parallel_speedup\": {:.3},",
            r.parallel_speedup()
        );
        let _ = writeln!(s, "      \"units_total\": {},", r.units_total);
        let _ = writeln!(s, "      \"units_pool\": {},", r.units_pool);
        let _ = writeln!(s, "      \"units_shared\": {},", r.units_shared);
        if let Some(t) = &r.telemetry {
            let _ = writeln!(
                s,
                "      \"telemetry\": {},",
                indent_json(&t.to_json(), "      ")
            );
        }
        s.push_str("      \"decisions_agree\": true\n");
        s.push_str(if i + 1 == multi.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    arg_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("FATAL: {flag} expects a number, got {v:?}");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let pr: u32 = parse_flag(&args, "--pr").unwrap_or(DEFAULT_PR);
    // `--threads` overrides the detected parallelism (and thereby the
    // default lane count); `--shards` pins the lane count directly.
    let threads: usize = parse_flag(&args, "--threads")
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1);
    let shards: usize = parse_flag(&args, "--shards").unwrap_or(threads).max(1);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| format!("BENCH_PR{pr}.json"));

    // Best-of-N timing needs enough iterations to catch a clean
    // scheduling window on a shared box: transient neighbour load
    // throttles multi-second spans, so the XL workloads get extra
    // repetitions rather than longer single passes.
    let (records, iters, xl_bytes, xl_iters) = if quick {
        (300, 3, 512 * 1024, 3)
    } else {
        (1500, 9, 6 * 1024 * 1024, 7)
    };
    let smartcity = smartcity_corpus(records);
    let taxi = taxi_corpus(records);
    let twitter = twitter_corpus(records);
    // The §IV-B "inflated JSON data" construction: the multi-MB stream
    // where sharding matters.
    let taxi_xl = taxi.inflated_to(xl_bytes);

    // The paper's Table VIII queries in their most accurate structural
    // form, plus a string-heavy Twitter workload (no Table VIII query
    // exists for Twitter; favourites_count is a flat member, so the
    // member-scoped pair mirrors the taxi construction).
    let qtw = Expr::context_scoped(
        StructScope::Member,
        [
            Expr::substring(b"favourites_count", 2).expect("valid needle"),
            Expr::int_range(100, 50_000),
        ],
    );
    let qs0 = query_to_exprs(&Query::qs0(), 1).expect("query converts");
    let qs1 = query_to_exprs(&Query::qs1(), 1).expect("query converts");
    let qt_b1 = query_to_exprs(&Query::qt(), 1).expect("query converts");
    let qt_b2 = query_to_exprs(&Query::qt(), 2).expect("query converts");
    // A query whose required literal never occurs in the corpus
    // (smartcity sensors report temperature/humidity/light/dust/
    // airquality_raw — never wind_speed): the literal prefilter proves
    // every record NoMatch and stays live, demonstrating the fast-reject
    // path the RiotBench queries can never trigger (their attribute
    // names appear in every record, so their prefilters self-disable).
    let q_miss = Expr::context([
        Expr::substring(b"wind_speed", 1).expect("valid needle"),
        Expr::float_range("0.0", "99.0").expect("valid range"),
    ]);
    // All five RiotBench query expressions as one resident batch — the
    // fused multi-query workload.
    let batch = vec![
        qs0.clone(),
        qs1.clone(),
        qt_b1.clone(),
        qt_b2.clone(),
        qtw.clone(),
    ];
    let workloads: Vec<(&str, Expr, &Dataset, usize)> = vec![
        ("QS0", qs0, &smartcity, iters),
        ("QS1", qs1, &smartcity, iters),
        ("QT", qt_b1, &taxi, iters),
        ("QT-B2", qt_b2.clone(), &taxi, iters),
        ("QTW", qtw, &twitter, iters),
        ("QT-XL", qt_b2, &taxi_xl, xl_iters),
        ("Q-MISS", q_miss, &smartcity, iters),
    ];

    println!(
        "perf trajectory (PR {pr}){} — model vs engine vs sharded runner ({shards} shards, {threads} threads available)\n",
        if quick { " [quick]" } else { "" }
    );
    println!(
        "{:<6} {:<10} {:>8} {:>12} {:>13} {:>12} {:>8} {:>9} {:>15} {:>10}",
        "query",
        "dataset",
        "records",
        "model MB/s",
        "engine MB/s",
        "block MB/s",
        "prefilt",
        "speedup",
        "parallel MB/s",
        "par/eng"
    );
    let mut results = Vec::new();
    for (name, expr, dataset, w_iters) in &workloads {
        let r = measure(name, expr, dataset, *w_iters, shards, telemetry);
        println!(
            "{:<6} {:<10} {:>8} {:>12.1} {:>13.1} {:>12.1} {:>7.1}% {:>8.2}x {:>15.1} {:>9.2}x  [prefilter {}]",
            r.name,
            r.dataset,
            r.records,
            r.model_mbps,
            r.engine_mbps,
            r.block_mbps,
            r.prefilter_hit_rate * 100.0,
            r.engine_speedup(),
            r.parallel_mbps,
            r.parallel_speedup(),
            r.prefilter_state
        );
        results.push(r);
    }

    println!(
        "\nfused multi-query ({} resident queries) — serial N passes vs one fused scan\n",
        batch.len()
    );
    println!(
        "{:<9} {:<10} {:>8} {:>13} {:>12} {:>9} {:>15} {:>10} {:>16}",
        "workload",
        "dataset",
        "records",
        "serial MB/s",
        "fused MB/s",
        "sharing",
        "par-fused MB/s",
        "par/fused",
        "units (pool/Σ)"
    );
    let multi_workloads: Vec<(&str, &Dataset, usize)> = vec![
        ("MQ-QS0", &smartcity, iters),
        ("MQ-QT", &taxi, iters),
        ("MQ-QT-XL", &taxi_xl, xl_iters),
    ];
    let mut multi_results = Vec::new();
    for (name, dataset, w_iters) in &multi_workloads {
        let r = measure_multi(name, &batch, dataset, *w_iters, shards, telemetry);
        println!(
            "{:<9} {:<10} {:>8} {:>13.1} {:>12.1} {:>8.2}x {:>15.1} {:>9.2}x {:>11}/{}",
            r.name,
            r.dataset,
            r.records,
            r.serial_mbps,
            r.fused_mbps,
            r.scan_sharing_factor(),
            r.parallel_fused_mbps,
            r.parallel_speedup(),
            r.units_pool,
            r.units_total
        );
        multi_results.push(r);
    }

    let json = to_json(pr, quick, threads, telemetry, &results, &multi_results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}

//! Performance trajectory: software filtering throughput (MB/s) of the
//! cosim-faithful byte-serial model vs the flat batch engine, on the
//! paper's query workloads, written as machine-readable JSON.
//!
//! Each PR that touches a hot path reruns this and checks in a
//! `BENCH_PR<N>.json` at the repo root; the sequence of files is the
//! repo's perf trajectory and future PRs are held to it.
//!
//! ```text
//! cargo run -p rfjson-bench --bin perf_trajectory --release -- \
//!     [--quick] [--pr N] [--out BENCH_PRN.json]
//! ```
//!
//! `--quick` shrinks the corpora and iteration count for CI smoke use;
//! `--pr N` stamps the measurement (and the default output filename) for
//! PR N. The binary always cross-checks that engine and model produce
//! identical per-record decisions and exits non-zero on any divergence.

use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::query::query_to_exprs;
use rfjson_riotbench::{smartcity_corpus, taxi_corpus, twitter_corpus, Dataset, Query};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Schema identifier for `BENCH_*.json` consumers.
const SCHEMA: &str = "rfjson-perf-trajectory/v1";
/// Default `--pr` value: the PR that last reran the trajectory.
const DEFAULT_PR: u32 = 2;

struct WorkloadResult {
    name: String,
    dataset: String,
    records: usize,
    stream_bytes: usize,
    expr: String,
    accepted: usize,
    model_mbps: f64,
    engine_mbps: f64,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        if self.model_mbps > 0.0 {
            self.engine_mbps / self.model_mbps
        } else {
            0.0
        }
    }
}

/// Best-of-`iters` throughput of one closure over `bytes` input bytes.
fn best_mbps(bytes: usize, iters: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best / 1e6
}

fn measure(name: &str, expr: &Expr, dataset: &Dataset, iters: usize) -> WorkloadResult {
    let stream = dataset.stream();
    let mut model = CompiledFilter::compile(expr);
    let mut engine = Engine::compile(expr);

    let model_decisions = model.filter_stream(&stream);
    let engine_decisions = engine.filter_stream(&stream);
    if model_decisions != engine_decisions {
        eprintln!("FATAL: engine and model decisions diverge on {name}");
        std::process::exit(1);
    }

    let model_mbps = best_mbps(stream.len(), iters, || {
        black_box(model.filter_stream(black_box(&stream)));
    });
    let mut out = Vec::new();
    let engine_mbps = best_mbps(stream.len(), iters, || {
        out.clear();
        engine.filter_stream_into(black_box(&stream), &mut out);
        black_box(out.len());
    });

    WorkloadResult {
        name: name.to_string(),
        dataset: dataset.name().to_string(),
        records: dataset.len(),
        stream_bytes: stream.len(),
        expr: expr.to_string(),
        accepted: engine_decisions.iter().filter(|m| **m).count(),
        model_mbps,
        engine_mbps,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(pr: u32, quick: bool, results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pr\": {pr},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    s.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(s, "      \"dataset\": \"{}\",", json_escape(&r.dataset));
        let _ = writeln!(s, "      \"records\": {},", r.records);
        let _ = writeln!(s, "      \"stream_bytes\": {},", r.stream_bytes);
        let _ = writeln!(s, "      \"expr\": \"{}\",", json_escape(&r.expr));
        let _ = writeln!(s, "      \"accepted\": {},", r.accepted);
        let _ = writeln!(s, "      \"model_mbps\": {:.3},", r.model_mbps);
        let _ = writeln!(s, "      \"engine_mbps\": {:.3},", r.engine_mbps);
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.speedup());
        s.push_str("      \"decisions_agree\": true\n");
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pr: u32 = args
        .iter()
        .position(|a| a == "--pr")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("FATAL: --pr expects a number, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_PR);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_PR{pr}.json"));

    let (records, iters) = if quick { (300, 2) } else { (1500, 7) };
    let smartcity = smartcity_corpus(records);
    let taxi = taxi_corpus(records);
    let twitter = twitter_corpus(records);

    // The paper's Table VIII queries in their most accurate structural
    // form, plus a string-heavy Twitter workload (no Table VIII query
    // exists for Twitter; favourites_count is a flat member, so the
    // member-scoped pair mirrors the taxi construction).
    let qtw = Expr::context_scoped(
        StructScope::Member,
        [
            Expr::substring(b"favourites_count", 2).expect("valid needle"),
            Expr::int_range(100, 50_000),
        ],
    );
    let workloads: Vec<(&str, Expr, &Dataset)> = vec![
        (
            "QS0",
            query_to_exprs(&Query::qs0(), 1).expect("query converts"),
            &smartcity,
        ),
        (
            "QS1",
            query_to_exprs(&Query::qs1(), 1).expect("query converts"),
            &smartcity,
        ),
        (
            "QT",
            query_to_exprs(&Query::qt(), 2).expect("query converts"),
            &taxi,
        ),
        ("QTW", qtw, &twitter),
    ];

    println!(
        "perf trajectory (PR {pr}){} — byte-serial model vs batch engine\n",
        if quick { " [quick]" } else { "" }
    );
    println!(
        "{:<6} {:<10} {:>8} {:>12} {:>13} {:>9}",
        "query", "dataset", "records", "model MB/s", "engine MB/s", "speedup"
    );
    let mut results = Vec::new();
    for (name, expr, dataset) in &workloads {
        let r = measure(name, expr, dataset, iters);
        println!(
            "{:<6} {:<10} {:>8} {:>12.1} {:>13.1} {:>8.2}x",
            r.name,
            r.dataset,
            r.records,
            r.model_mbps,
            r.engine_mbps,
            r.speedup()
        );
        results.push(r);
    }

    let json = to_json(pr, quick, &results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}

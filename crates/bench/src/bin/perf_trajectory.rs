//! Performance trajectory: software filtering throughput (MB/s) of the
//! cosim-faithful byte-serial model, the flat batch engine, and the
//! sharded parallel runtime, on the paper's query workloads, written as
//! machine-readable JSON.
//!
//! Each PR that touches a hot path reruns this and checks in a
//! `BENCH_PR<N>.json` at the repo root; the sequence of files is the
//! repo's perf trajectory and future PRs are held to it.
//!
//! ```text
//! cargo run -p rfjson-bench --bin perf_trajectory --release -- \
//!     [--quick] [--pr N] [--shards N] [--out BENCH_PRN.json]
//! ```
//!
//! `--quick` shrinks the corpora and iteration count for CI smoke use;
//! `--pr N` stamps the measurement (and the default output filename) for
//! PR N; `--shards N` pins the parallel runner's lane count (default:
//! available parallelism). The binary always cross-checks that engine,
//! model, and sharded runner produce identical per-record decisions and
//! exits non-zero on any divergence.
//!
//! Besides the PR 2 workloads (QS0/QS1/QT/QTW at standard corpus size),
//! a multi-MB inflated workload (`QT-XL`, the paper's §IV-B "inflated
//! JSON data" construction) exercises the sharded path at the stream
//! sizes where fan-out matters.

use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::{Expr, StructScope};
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_jsonstream::frame::split_records;
use rfjson_riotbench::{smartcity_corpus, taxi_corpus, twitter_corpus, Dataset, Query};
use rfjson_runtime::ShardedRunner;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Schema identifier for `BENCH_*.json` consumers (v3 adds the SWAR
/// block-scan fields: `block_mbps` — the record-at-a-time
/// [`Engine::on_block`] kernel with stream framing excluded — and
/// `prefilter_hit_rate` — the fraction of records the literal prefilter
/// proved NoMatch without a scan).
const SCHEMA: &str = "rfjson-perf-trajectory/v3";
/// Default `--pr` value: the PR that last reran the trajectory.
const DEFAULT_PR: u32 = 8;

struct WorkloadResult {
    name: String,
    dataset: String,
    records: usize,
    stream_bytes: usize,
    expr: String,
    accepted: usize,
    model_mbps: f64,
    engine_mbps: f64,
    block_mbps: f64,
    prefilter_hit_rate: f64,
    parallel_mbps: f64,
    shards: usize,
}

impl WorkloadResult {
    fn engine_speedup(&self) -> f64 {
        ratio(self.engine_mbps, self.model_mbps)
    }

    fn parallel_speedup(&self) -> f64 {
        ratio(self.parallel_mbps, self.engine_mbps)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Best-of-`iters` throughput of one closure over `bytes` input bytes.
fn best_mbps(bytes: usize, iters: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best / 1e6
}

fn measure(
    name: &str,
    expr: &Expr,
    dataset: &Dataset,
    iters: usize,
    shards: usize,
) -> WorkloadResult {
    let stream = dataset.stream();
    let mut model = CompiledFilter::compile(expr);
    let mut engine = Engine::compile(expr);
    let mut runner: ShardedRunner<Engine> = ShardedRunner::with_shards(expr, shards);

    let model_decisions = model.filter_stream(&stream);
    let engine_decisions = engine.filter_stream(&stream);
    let parallel_decisions = runner.filter_stream(&stream);
    if model_decisions != engine_decisions {
        eprintln!("FATAL: engine and model decisions diverge on {name}");
        std::process::exit(1);
    }
    if parallel_decisions != engine_decisions {
        eprintln!("FATAL: sharded runner and engine decisions diverge on {name}");
        std::process::exit(1);
    }

    // Prefilter hit rate: fraction of records the literal prefilter
    // proved NoMatch on the first (decision-checked) pass above.
    let (checked, rejected) = engine.prefilter_stats();
    let prefilter_hit_rate = if checked > 0 {
        rejected as f64 / checked as f64
    } else {
        0.0
    };

    let model_mbps = best_mbps(stream.len(), iters, || {
        black_box(model.filter_stream(black_box(&stream)));
    });
    let mut out = Vec::new();
    let engine_mbps = best_mbps(stream.len(), iters, || {
        out.clear();
        engine.filter_stream_into(black_box(&stream), &mut out);
        black_box(out.len());
    });
    // The block-scan kernel with framing excluded: records pre-split,
    // one `on_block` + separator byte + reset per record.
    let recs: Vec<&[u8]> = split_records(&stream).collect();
    let block_mbps = best_mbps(stream.len(), iters, || {
        let mut accepted = 0usize;
        for r in &recs {
            let last = engine.on_block(black_box(r));
            accepted += usize::from(engine.on_byte(b'\n') || last);
            engine.reset();
        }
        black_box(accepted);
    });
    let parallel_mbps = best_mbps(stream.len(), iters, || {
        out.clear();
        runner.filter_stream_into(black_box(&stream), &mut out);
        black_box(out.len());
    });

    WorkloadResult {
        name: name.to_string(),
        dataset: dataset.name().to_string(),
        records: dataset.len(),
        stream_bytes: stream.len(),
        expr: expr.to_string(),
        accepted: engine_decisions.iter().filter(|m| **m).count(),
        model_mbps,
        engine_mbps,
        block_mbps,
        prefilter_hit_rate,
        parallel_mbps,
        shards,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(pr: u32, quick: bool, threads: usize, results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pr\": {pr},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"threads_available\": {threads},");
    s.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(s, "      \"dataset\": \"{}\",", json_escape(&r.dataset));
        let _ = writeln!(s, "      \"records\": {},", r.records);
        let _ = writeln!(s, "      \"stream_bytes\": {},", r.stream_bytes);
        let _ = writeln!(s, "      \"expr\": \"{}\",", json_escape(&r.expr));
        let _ = writeln!(s, "      \"accepted\": {},", r.accepted);
        let _ = writeln!(s, "      \"model_mbps\": {:.3},", r.model_mbps);
        let _ = writeln!(s, "      \"engine_mbps\": {:.3},", r.engine_mbps);
        let _ = writeln!(s, "      \"block_mbps\": {:.3},", r.block_mbps);
        let _ = writeln!(
            s,
            "      \"prefilter_hit_rate\": {:.4},",
            r.prefilter_hit_rate
        );
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.engine_speedup());
        let _ = writeln!(s, "      \"parallel_mbps\": {:.3},", r.parallel_mbps);
        let _ = writeln!(s, "      \"parallel_shards\": {},", r.shards);
        let _ = writeln!(
            s,
            "      \"parallel_speedup\": {:.3},",
            r.parallel_speedup()
        );
        s.push_str("      \"decisions_agree\": true\n");
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    arg_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("FATAL: {flag} expects a number, got {v:?}");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pr: u32 = parse_flag(&args, "--pr").unwrap_or(DEFAULT_PR);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards: usize = parse_flag(&args, "--shards").unwrap_or(threads).max(1);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| format!("BENCH_PR{pr}.json"));

    let (records, iters, xl_bytes, xl_iters) = if quick {
        (300, 2, 512 * 1024, 2)
    } else {
        (1500, 7, 6 * 1024 * 1024, 3)
    };
    let smartcity = smartcity_corpus(records);
    let taxi = taxi_corpus(records);
    let twitter = twitter_corpus(records);
    // The §IV-B "inflated JSON data" construction: the multi-MB stream
    // where sharding matters.
    let taxi_xl = taxi.inflated_to(xl_bytes);

    // The paper's Table VIII queries in their most accurate structural
    // form, plus a string-heavy Twitter workload (no Table VIII query
    // exists for Twitter; favourites_count is a flat member, so the
    // member-scoped pair mirrors the taxi construction).
    let qtw = Expr::context_scoped(
        StructScope::Member,
        [
            Expr::substring(b"favourites_count", 2).expect("valid needle"),
            Expr::int_range(100, 50_000),
        ],
    );
    let qt_b1 = query_to_exprs(&Query::qt(), 1).expect("query converts");
    let qt_b2 = query_to_exprs(&Query::qt(), 2).expect("query converts");
    let workloads: Vec<(&str, Expr, &Dataset, usize)> = vec![
        (
            "QS0",
            query_to_exprs(&Query::qs0(), 1).expect("query converts"),
            &smartcity,
            iters,
        ),
        (
            "QS1",
            query_to_exprs(&Query::qs1(), 1).expect("query converts"),
            &smartcity,
            iters,
        ),
        ("QT", qt_b1, &taxi, iters),
        ("QT-B2", qt_b2.clone(), &taxi, iters),
        ("QTW", qtw, &twitter, iters),
        ("QT-XL", qt_b2, &taxi_xl, xl_iters),
    ];

    println!(
        "perf trajectory (PR {pr}){} — model vs engine vs sharded runner ({shards} shards, {threads} threads available)\n",
        if quick { " [quick]" } else { "" }
    );
    println!(
        "{:<6} {:<10} {:>8} {:>12} {:>13} {:>12} {:>8} {:>9} {:>15} {:>10}",
        "query",
        "dataset",
        "records",
        "model MB/s",
        "engine MB/s",
        "block MB/s",
        "prefilt",
        "speedup",
        "parallel MB/s",
        "par/eng"
    );
    let mut results = Vec::new();
    for (name, expr, dataset, w_iters) in &workloads {
        let r = measure(name, expr, dataset, *w_iters, shards);
        println!(
            "{:<6} {:<10} {:>8} {:>12.1} {:>13.1} {:>12.1} {:>7.1}% {:>8.2}x {:>15.1} {:>9.2}x",
            r.name,
            r.dataset,
            r.records,
            r.model_mbps,
            r.engine_mbps,
            r.block_mbps,
            r.prefilter_hit_rate * 100.0,
            r.engine_speedup(),
            r.parallel_mbps,
            r.parallel_speedup()
        );
        results.push(r);
    }

    let json = to_json(pr, quick, threads, &results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}

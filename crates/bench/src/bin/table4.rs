//! Table IV: substrings of the "temperature" search string for different
//! block lengths B, duplicates in parentheses.
//!
//! `cargo run -p rfjson-bench --bin table4`

use rfjson_core::primitive::substrings;

fn main() {
    println!("Table IV — substrings of \"temperature\" (duplicates in parentheses)\n");
    println!("{:>2}  sub-strings", "B");
    let needle = b"temperature";
    for b in [1usize, 2, 3] {
        let row: Vec<String> = substrings(needle, b)
            .iter()
            .map(|s| {
                let text = String::from_utf8_lossy(&s.bytes).into_owned();
                if s.duplicate {
                    format!("('{text}')")
                } else {
                    format!("'{text}'")
                }
            })
            .collect();
        println!("{b:>2}  {}", row.join(", "));
    }
    println!(" .   ...");
    println!("{:>2}  'temperature'", needle.len());

    // Comparator counts: duplicates share logic.
    println!("\ndistinct comparator blocks per B:");
    for b in 1..=4usize {
        let all = substrings(needle, b);
        let distinct = all.iter().filter(|s| !s.duplicate).count();
        println!("  B={b}: {} of {} windows distinct", distinct, all.len());
    }
}

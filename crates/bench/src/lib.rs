//! # rfjson-bench — regeneration harness for every table and figure
//!
//! One binary per artefact of the paper's evaluation:
//!
//! | artefact | binary |
//! |---|---|
//! | Tables I–III (string matcher FPR/LUTs) | `table1_2_3` |
//! | Table IV (substring blocks) | `table4` |
//! | Fig. 1 (B = 2 matcher RTL) | `fig1_rtl` |
//! | Fig. 2 (range → regex → DFA) | `fig2_dfa` |
//! | Tables V–VII + Fig. 3 (design space, Pareto fronts, scatter CSVs) | `tables5_6_7` |
//! | Table VIII (query selectivities) | `table8` |
//! | §IV-B system throughput | `system_throughput` |
//!
//! Criterion benches (`benches/`): primitive byte throughput, raw-filter
//! vs full parse, and construction/mapping times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rfjson_riotbench::{corpus, Dataset};

/// Standard seed for all benchmark datasets (reproducibility) — the
/// workspace-wide [`corpus::CORPUS_SEED`].
pub const SEED: u64 = corpus::CORPUS_SEED;

/// Standard record count for FPR evaluation.
pub const RECORDS: usize = 2000;

/// The three evaluation datasets at standard size.
pub fn standard_datasets() -> (Dataset, Dataset, Dataset) {
    (
        corpus::smartcity_corpus(RECORDS),
        corpus::taxi_corpus(RECORDS),
        corpus::twitter_corpus(RECORDS),
    )
}

/// Needles of Table I (SmartCity).
pub const SMARTCITY_NEEDLES: [&str; 5] =
    ["light", "temperature", "dust", "humidity", "airquality_raw"];

/// Needles of Table II (Taxi).
pub const TAXI_NEEDLES: [&str; 5] = [
    "tolls_amount",
    "trip_distance",
    "fare_amount",
    "trip_time_in_secs",
    "tip_amount",
];

/// Needles of Table III (Twitter).
pub const TWITTER_NEEDLES: [&str; 5] =
    ["created_at", "user", "location", "lang", "favourites_count"];

/// Renders one FPR/LUT cell pair like the paper's tables.
pub fn cell(fpr: f64, luts: usize) -> String {
    format!("{fpr:.3} {luts:>4}")
}

/// Simple fixed-width table printer.
pub fn print_row(cols: &[String], widths: &[usize]) {
    use std::fmt::Write;
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        let _ = write!(line, "{c:<w$}  ");
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_reproducible() {
        let (a, _, _) = standard_datasets();
        let (b, _, _) = standard_datasets();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.len(), RECORDS);
    }

    #[test]
    fn cell_format() {
        assert_eq!(cell(0.0215, 81), "0.021   81");
    }
}

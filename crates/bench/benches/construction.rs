//! Criterion: construction-time costs — range-DFA derivation, filter
//! elaboration and LUT mapping. These bound how fast the design flow can
//! iterate (the paper's outlook calls the brute-force exploration "too
//! time-consuming"; these numbers are the per-point cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rfjson_core::cost::{exact_cost, option_cost};
use rfjson_core::elaborate::elaborate_filter;
use rfjson_core::expr::Expr;
use rfjson_redfa::NumberBounds;
use std::hint::black_box;

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(20);

    group.bench_function("range_dfa_12_49", |b| {
        b.iter(|| black_box(NumberBounds::int_range(12, 49).to_dfa()));
    });
    group.bench_function("range_dfa_1345_26282", |b| {
        b.iter(|| black_box(NumberBounds::int_range(1345, 26282).to_dfa()));
    });
    group.bench_function("range_dfa_float", |b| {
        b.iter(|| {
            let bounds = NumberBounds::new(
                "83.36".parse().expect("lit"),
                "3322.67".parse().expect("lit"),
                rfjson_redfa::range::NumberKind::Float,
            )
            .expect("valid");
            black_box(bounds.to_dfa())
        });
    });

    let pair = Expr::context([
        Expr::substring(b"temperature", 1).expect("valid"),
        Expr::float_range("0.7", "35.1").expect("valid"),
    ]);
    group.bench_function("elaborate_struct_pair", |b| {
        b.iter(|| black_box(elaborate_filter(black_box(&pair), "bench")));
    });
    group.bench_function("map_struct_pair_exact", |b| {
        b.iter(|| black_box(exact_cost(black_box(&pair))));
    });
    group.bench_function("map_struct_pair_option", |b| {
        b.iter(|| black_box(option_cost(black_box(&pair))));
    });
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);

//! Criterion: the SWAR word-at-a-time kernels against their byte-serial
//! counterparts — the newline hop, the per-word classifier + string-mask
//! resolution, literal containment, and the end-to-end engine block scan
//! ([`Engine::on_block`]) versus the per-byte loop on the same stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rfjson_core::engine::Engine;
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_jsonstream::swar::{
    self, classify_word, load_word, string_mask_word, StringState, WORD_BYTES,
};
use rfjson_jsonstream::{classify, ByteClass, StringMask};
use rfjson_riotbench::{smartcity_corpus, Query};
use std::hint::black_box;

fn swar_scan(c: &mut Criterion) {
    let stream = smartcity_corpus(2000).stream();
    let mut group = c.benchmark_group("swar_scan");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(15);

    group.bench_function("newline_hop/byte", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let mut rest = black_box(&stream[..]);
            while let Some(p) = rest.iter().position(|&x| x == b'\n') {
                n += 1;
                rest = &rest[p + 1..];
            }
            black_box(n)
        });
    });
    group.bench_function("newline_hop/swar", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let mut rest = black_box(&stream[..]);
            while let Some(p) = swar::find_byte(rest, b'\n') {
                n += 1;
                rest = &rest[p + 1..];
            }
            black_box(n)
        });
    });

    group.bench_function("string_mask/byte", |b| {
        b.iter(|| {
            let mut mask = StringMask::new();
            let mut acc = 0u32;
            for &byte in black_box(&stream[..]) {
                acc += u32::from(mask.on_byte(byte)) + u32::from(classify(byte) == ByteClass::Open);
            }
            black_box(acc)
        });
    });
    group.bench_function("string_mask/swar", |b| {
        b.iter(|| {
            let mut state = StringState::default();
            let mut acc = 0u32;
            for chunk in black_box(&stream[..]).chunks_exact(WORD_BYTES) {
                let m = classify_word(load_word(chunk.try_into().unwrap()));
                let (masked, next) = string_mask_word(m.quotes, m.backslashes, state);
                state = next;
                acc += masked.count_ones() + (m.opens & !masked).count_ones();
            }
            black_box(acc)
        });
    });

    group.bench_function("contains/swar", |b| {
        b.iter(|| black_box(swar::contains(black_box(&stream), b"airquality_raw")));
    });

    // End-to-end: the same compiled program through the byte-serial
    // reference driver vs the record-at-a-time block driver.
    let expr = query_to_exprs(&Query::qs0(), 1).unwrap();
    let mut engine = Engine::compile(&expr);
    assert!(engine.block_scan_ready());
    let mut out = Vec::new();
    group.bench_function("engine_qs0/byte", |b| {
        b.iter(|| {
            out.clear();
            rfjson_core::backend::run_verdict_driver(
                &mut engine,
                black_box(&stream),
                rfjson_core::IngestLimits::UNLIMITED,
                &mut out,
            );
            black_box(out.len())
        });
    });
    group.bench_function("engine_qs0/block", |b| {
        b.iter(|| {
            out.clear();
            engine.filter_stream_verdicts_into(
                black_box(&stream),
                rfjson_core::IngestLimits::UNLIMITED,
                &mut out,
            );
            black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(benches, swar_scan);
criterion_main!(benches);

//! Criterion: the motivating comparison of §I — parsing everything vs
//! raw-filtering first and parsing only the survivors. The win scales
//! with query selectivity (QS1 keeps ~5 %, QS0 keeps ~64 %). Filtering
//! runs on the batch [`Engine`]; the byte-serial cosim model is kept as
//! `filter_then_parse_model` to track the fast path's own speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_jsonstream::parse;
use rfjson_riotbench::{smartcity_corpus, Query};
use std::hint::black_box;

fn raw_vs_parse(c: &mut Criterion) {
    let dataset = smartcity_corpus(1500);
    let bytes: u64 = dataset.payload_bytes() as u64;

    for query in [Query::qs0(), Query::qs1()] {
        let mut group = c.benchmark_group(format!("raw_vs_parse_{}", query.name));
        group.throughput(Throughput::Bytes(bytes));
        group.sample_size(12);

        group.bench_function("parse_everything", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for record in dataset.records() {
                    let v = parse(black_box(record)).expect("valid json");
                    if query.matches(&v) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });

        let expr = query_to_exprs(&query, 1).expect("query converts");
        let mut engine = Engine::compile(&expr);
        group.bench_function("filter_then_parse", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for record in dataset.records() {
                    if engine.accepts_record(black_box(record)) {
                        let v = parse(record).expect("valid json");
                        if query.matches(&v) {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            });
        });

        let mut model = CompiledFilter::compile(&expr);
        group.bench_function("filter_then_parse_model", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for record in dataset.records() {
                    if model.accepts_record(black_box(record)) {
                        let v = parse(record).expect("valid json");
                        if query.matches(&v) {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            });
        });

        // The hardware-relevant variant: filtering is free (happens in the
        // PL between NIC and CPU); the CPU only parses survivors.
        let mut filter2 = Engine::compile(&expr);
        let survivors: Vec<&Vec<u8>> = dataset
            .records()
            .iter()
            .filter(|r| filter2.accepts_record(r))
            .collect();
        group.bench_function("parse_survivors_only", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for record in &survivors {
                    let v = parse(black_box(record)).expect("valid json");
                    if query.matches(&v) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
        group.finish();
    }
}

criterion_group!(benches, raw_vs_parse);
criterion_main!(benches);

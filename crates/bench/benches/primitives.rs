//! Criterion: byte throughput of each raw-filter expression through both
//! software execution paths — the cosim-faithful byte-serial model
//! (`model/…`) and the flat table-driven batch engine (`engine/…`). The
//! hardware processes exactly one byte per cycle by construction; the
//! engine is the performance floor of bulk software filtering.
//!
//! Expect the engine to win big on composed query filters (multiple
//! primitives amortise its per-byte frame) and roughly tie on bare
//! single primitives, where the model's class-compressed transition
//! tables are more cache-resident than 256-wide dense rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rfjson_core::engine::Engine;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::Expr;
use rfjson_core::query::query_to_exprs;
use rfjson_core::FilterBackend;
use rfjson_riotbench::{smartcity_corpus, Query};
use std::hint::black_box;

fn primitive_throughput(c: &mut Criterion) {
    let stream = smartcity_corpus(2000).stream();
    let mut group = c.benchmark_group("primitive_throughput");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(15);

    let cases: Vec<(&str, Expr)> = vec![
        (
            "s1_temperature",
            Expr::substring(b"temperature", 1).unwrap(),
        ),
        (
            "s2_temperature",
            Expr::substring(b"temperature", 2).unwrap(),
        ),
        ("window_temperature", Expr::window(b"temperature").unwrap()),
        ("dfa_temperature", Expr::dfa_string(b"temperature").unwrap()),
        ("v_12_49", Expr::int_range(12, 49)),
        (
            "ctx_temperature_pair",
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
        ),
        ("full_qs1", query_to_exprs(&Query::qs1(), 1).unwrap()),
    ];
    for (name, expr) in cases {
        let mut filter = CompiledFilter::compile(&expr);
        group.bench_function(format!("model/{name}"), |b| {
            b.iter(|| black_box(filter.filter_stream(black_box(&stream))));
        });
        let mut engine = Engine::compile(&expr);
        let mut out = Vec::new();
        group.bench_function(format!("engine/{name}"), |b| {
            b.iter(|| {
                out.clear();
                engine.filter_stream_into(black_box(&stream), &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, primitive_throughput);
criterion_main!(benches);

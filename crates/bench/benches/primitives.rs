//! Criterion: byte throughput of each raw-filter primitive's software
//! model (the performance floor of the simulation substrate; the hardware
//! processes exactly one byte per cycle by construction).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rfjson_bench::SEED;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::Expr;
use rfjson_core::query::query_to_exprs;
use rfjson_riotbench::{smartcity, Query};
use std::hint::black_box;

fn primitive_throughput(c: &mut Criterion) {
    let stream = smartcity::generate(SEED, 2000).stream();
    let mut group = c.benchmark_group("primitive_throughput");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(15);

    let cases: Vec<(&str, Expr)> = vec![
        (
            "s1_temperature",
            Expr::substring(b"temperature", 1).unwrap(),
        ),
        (
            "s2_temperature",
            Expr::substring(b"temperature", 2).unwrap(),
        ),
        ("window_temperature", Expr::window(b"temperature").unwrap()),
        ("dfa_temperature", Expr::dfa_string(b"temperature").unwrap()),
        ("v_12_49", Expr::int_range(12, 49)),
        (
            "ctx_temperature_pair",
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
        ),
        ("full_qs1", query_to_exprs(&Query::qs1(), 1).unwrap()),
    ];
    for (name, expr) in cases {
        let mut filter = CompiledFilter::compile(&expr);
        group.bench_function(name, |b| {
            b.iter(|| black_box(filter.filter_stream(black_box(&stream))))
        });
    }
    group.finish();
}

criterion_group!(benches, primitive_throughput);
criterion_main!(benches);

//! Filter expressions (§III-C/D): composition of raw-filter primitives by
//! conjunction, disjunction and structural context.
//!
//! The [`Display`](std::fmt::Display) form follows the paper's notation
//! exactly: `s1("temperature")`, `v(0.7 ≤ f ≤ 35.1)`,
//! `{ s1("humidity") & v(20.3 ≤ f ≤ 69.1) } & v(12 ≤ i ≤ 49)`.

use crate::primitive::SubstringError;
use rfjson_redfa::range::{BoundsError, NumberKind, ParseDecimalError};
use rfjson_redfa::{Decimal, NumberBounds};
use std::error::Error;
use std::fmt;

/// Which string-matching technique implements an `s(...)` primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StringTechnique {
    /// Technique (i): DFA, one char per cycle.
    Dfa,
    /// Technique (ii): full N-byte window comparison (B = N).
    Window,
    /// Technique (iii): approximate B-byte substring blocks.
    Substring(usize),
}

/// A string-search primitive specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringSpec {
    /// The search string.
    pub needle: Vec<u8>,
    /// Implementation technique.
    pub technique: StringTechnique,
}

/// The scope within which a structural context `{…}` combines its
/// children (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StructScope {
    /// Same object instance at one nesting level: flags clear when the
    /// instance's level closes. Right for SenML measurement objects.
    #[default]
    Object,
    /// Same member: flags additionally clear at every unmasked comma on
    /// the instance level — the paper's "key RF and value RF both appear
    /// before the same unescaped comma". Right for flat records.
    Member,
}

/// A composed raw-filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String-search primitive.
    Str(StringSpec),
    /// Number-range primitive.
    Num(NumberBounds),
    /// Conjunction: every child must fire somewhere in the record.
    And(Vec<Expr>),
    /// Disjunction: at least one child must fire. Children of an OR can
    /// never be pruned in the design flow (that would allow false
    /// negatives, §III-D rule b).
    Or(Vec<Expr>),
    /// Structural context `{…}`: children must fire within the same
    /// structural instance.
    Ctx(Vec<Expr>, StructScope),
}

/// Errors from the expression smart constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExprError {
    /// Invalid substring-matcher parameters.
    Substring(SubstringError),
    /// Invalid numeric bounds.
    Bounds(BoundsError),
    /// Unparsable decimal literal.
    Decimal(ParseDecimalError),
    /// A combinator was given no children.
    EmptyCombinator,
    /// Needle was empty (for window/DFA variants).
    EmptyNeedle,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Substring(e) => write!(f, "{e}"),
            ExprError::Bounds(e) => write!(f, "{e}"),
            ExprError::Decimal(e) => write!(f, "{e}"),
            ExprError::EmptyCombinator => write!(f, "combinator needs at least one child"),
            ExprError::EmptyNeedle => write!(f, "needle must not be empty"),
        }
    }
}

impl Error for ExprError {}

impl From<SubstringError> for ExprError {
    fn from(e: SubstringError) -> Self {
        ExprError::Substring(e)
    }
}

impl From<BoundsError> for ExprError {
    fn from(e: BoundsError) -> Self {
        ExprError::Bounds(e)
    }
}

impl From<ParseDecimalError> for ExprError {
    fn from(e: ParseDecimalError) -> Self {
        ExprError::Decimal(e)
    }
}

impl Expr {
    /// `sB(needle)` — the approximate substring matcher.
    ///
    /// # Errors
    ///
    /// Propagates [`SubstringError`] for bad parameters.
    pub fn substring(needle: &[u8], b: usize) -> Result<Expr, ExprError> {
        // Validate eagerly through the primitive constructor.
        crate::primitive::SubstringMatcher::new(needle, b)?;
        Ok(Expr::Str(StringSpec {
            needle: needle.to_vec(),
            technique: StringTechnique::Substring(b),
        }))
    }

    /// Full-window exact matcher (technique ii).
    ///
    /// # Errors
    ///
    /// [`ExprError::EmptyNeedle`] for an empty needle.
    pub fn window(needle: &[u8]) -> Result<Expr, ExprError> {
        if needle.is_empty() {
            return Err(ExprError::EmptyNeedle);
        }
        Ok(Expr::Str(StringSpec {
            needle: needle.to_vec(),
            technique: StringTechnique::Window,
        }))
    }

    /// DFA exact matcher (technique i).
    ///
    /// # Errors
    ///
    /// [`ExprError::EmptyNeedle`] for an empty needle.
    pub fn dfa_string(needle: &[u8]) -> Result<Expr, ExprError> {
        if needle.is_empty() {
            return Err(ExprError::EmptyNeedle);
        }
        Ok(Expr::Str(StringSpec {
            needle: needle.to_vec(),
            technique: StringTechnique::Dfa,
        }))
    }

    /// `v(lo ≤ i ≤ hi)` — integer range filter.
    pub fn int_range(lo: i64, hi: i64) -> Expr {
        Expr::Num(NumberBounds::int_range(lo, hi))
    }

    /// `v(lo ≤ f ≤ hi)` — float range filter from decimal literals.
    ///
    /// # Errors
    ///
    /// Propagates decimal-parse and bounds-validation errors.
    pub fn float_range(lo: &str, hi: &str) -> Result<Expr, ExprError> {
        let lo: Decimal = lo.parse()?;
        let hi: Decimal = hi.parse()?;
        Ok(Expr::Num(NumberBounds::new(lo, hi, NumberKind::Float)?))
    }

    /// Conjunction of children.
    pub fn and(children: impl IntoIterator<Item = Expr>) -> Expr {
        let mut v: Vec<Expr> = Vec::new();
        for c in children {
            match c {
                Expr::And(inner) => v.extend(inner),
                other => v.push(other),
            }
        }
        if v.len() == 1 {
            v.into_iter().next().expect("len checked")
        } else {
            Expr::And(v)
        }
    }

    /// Disjunction of children.
    pub fn or(children: impl IntoIterator<Item = Expr>) -> Expr {
        let mut v: Vec<Expr> = Vec::new();
        for c in children {
            match c {
                Expr::Or(inner) => v.extend(inner),
                other => v.push(other),
            }
        }
        if v.len() == 1 {
            v.into_iter().next().expect("len checked")
        } else {
            Expr::Or(v)
        }
    }

    /// `{ … }` structural context with the default [`StructScope::Object`].
    pub fn context(children: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Ctx(children.into_iter().collect(), StructScope::Object)
    }

    /// `{ … }` structural context with an explicit scope.
    pub fn context_scoped(scope: StructScope, children: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Ctx(children.into_iter().collect(), scope)
    }

    /// Number of primitive leaves.
    pub fn num_primitives(&self) -> usize {
        match self {
            Expr::Str(_) | Expr::Num(_) => 1,
            Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
                cs.iter().map(Expr::num_primitives).sum()
            }
        }
    }

    /// Does the expression contain a structural context anywhere?
    pub fn has_context(&self) -> bool {
        match self {
            Expr::Str(_) | Expr::Num(_) => false,
            Expr::Ctx(..) => true,
            Expr::And(cs) | Expr::Or(cs) => cs.iter().any(Expr::has_context),
        }
    }

    /// Validates that the expression is well-formed (non-empty
    /// combinators, valid primitives).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self) -> Result<(), ExprError> {
        match self {
            Expr::Str(spec) => {
                if spec.needle.is_empty() {
                    return Err(ExprError::EmptyNeedle);
                }
                if let StringTechnique::Substring(b) = spec.technique {
                    crate::primitive::SubstringMatcher::new(&spec.needle, b)?;
                }
                Ok(())
            }
            Expr::Num(_) => Ok(()),
            Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
                if cs.is_empty() {
                    return Err(ExprError::EmptyCombinator);
                }
                cs.iter().try_for_each(Expr::validate)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Str(spec) => {
                let needle = String::from_utf8_lossy(&spec.needle);
                match spec.technique {
                    StringTechnique::Dfa => write!(f, "dfa(\"{needle}\")"),
                    StringTechnique::Window => write!(f, "sN(\"{needle}\")"),
                    StringTechnique::Substring(b) => write!(f, "s{b}(\"{needle}\")"),
                }
            }
            Expr::Num(bounds) => write!(f, "v({bounds})"),
            Expr::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    if matches!(c, Expr::Or(_)) {
                        write!(f, "({c})")?;
                    } else {
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
            Expr::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Expr::Ctx(cs, _) => {
                write!(f, "{{ ")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let e = Expr::and([
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::int_range(12, 49),
        ]);
        assert_eq!(
            e.to_string(),
            "{ s1(\"temperature\") & v(0.7 ≤ f ≤ 35.1) } & v(12 ≤ i ≤ 49)"
        );
    }

    #[test]
    fn display_techniques() {
        assert_eq!(
            Expr::substring(b"dust", 2).unwrap().to_string(),
            "s2(\"dust\")"
        );
        assert_eq!(Expr::window(b"dust").unwrap().to_string(), "sN(\"dust\")");
        assert_eq!(
            Expr::dfa_string(b"dust").unwrap().to_string(),
            "dfa(\"dust\")"
        );
    }

    #[test]
    fn or_parenthesised_inside_and() {
        let e = Expr::And(vec![
            Expr::int_range(1, 2),
            Expr::Or(vec![
                Expr::substring(b"a", 1).unwrap(),
                Expr::substring(b"b", 1).unwrap(),
            ]),
        ]);
        assert_eq!(e.to_string(), "v(1 ≤ i ≤ 2) & (s1(\"a\") | s1(\"b\"))");
    }

    #[test]
    fn smart_constructors_flatten() {
        let e = Expr::and([
            Expr::and([Expr::int_range(1, 2), Expr::int_range(3, 4)]),
            Expr::int_range(5, 6),
        ]);
        match e {
            Expr::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let single = Expr::and([Expr::int_range(1, 2)]);
        assert!(matches!(single, Expr::Num(_)));
    }

    #[test]
    fn validation() {
        assert!(Expr::And(vec![]).validate().is_err());
        assert!(Expr::substring(b"", 1).is_err());
        assert!(Expr::substring(b"abc", 9).is_err());
        assert!(Expr::float_range("5", "1").is_err());
        assert!(Expr::float_range("x", "1").is_err());
        let ok = Expr::context([Expr::int_range(0, 1)]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn counting_helpers() {
        let e = Expr::and([
            Expr::context([Expr::substring(b"a", 1).unwrap(), Expr::int_range(0, 1)]),
            Expr::int_range(2, 3),
        ]);
        assert_eq!(e.num_primitives(), 3);
        assert!(e.has_context());
        assert!(!Expr::int_range(0, 1).has_context());
    }
}

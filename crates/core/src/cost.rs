//! Resource costing of raw filters.
//!
//! Two models:
//!
//! * [`exact_cost`] — elaborate the complete filter (shared structure
//!   logic included) and LUT-map it. Used for the Pareto tables.
//! * the **additive model** used during design-space exploration:
//!   per-attribute option cost ([`option_cost`], structure signals as free
//!   inputs) + one [`structure_cost`] if any option is structural + a
//!   small glue term — the same sharing a real multi-context filter has in
//!   hardware. Tested to track the exact model closely.

use crate::elaborate::{build_stream_logic, elaborate_filter, elaborate_option};
use crate::expr::Expr;
use rfjson_rtl::Netlist;
use rfjson_techmap::{map_netlist, ResourceReport};

/// LUT input arity of the target FPGA (Xilinx 7-series, as in the paper).
pub const LUT_K: usize = 6;

/// Exact cost: full elaboration + technology mapping.
pub fn exact_cost(expr: &Expr) -> ResourceReport {
    let netlist = elaborate_filter(expr, "filter");
    map_netlist(&netlist, LUT_K)
}

/// Cost of one per-attribute option with structure signals supplied as
/// inputs (i.e. excluding the shared mask/depth logic).
pub fn option_cost(expr: &Expr) -> ResourceReport {
    let netlist = elaborate_option(expr, "option");
    map_netlist(&netlist, LUT_K)
}

/// Cost of the shared structure block alone (string mask, depth counter,
/// record-boundary detection).
pub fn structure_cost() -> ResourceReport {
    let mut n = Netlist::new("structure");
    let byte = n.input_word("byte", 8);
    let sig = build_stream_logic(&mut n, &byte);
    for (i, &d) in sig.depth.iter().enumerate() {
        n.output(format!("depth[{i}]"), d);
    }
    n.output("is_close", sig.is_close);
    n.output("is_comma", sig.is_comma);
    n.output("record_reset", sig.record_reset);
    map_netlist(&n, LUT_K)
}

/// Additive estimate for a conjunction of per-attribute options: sum of
/// option costs, plus the shared structure block when any option needs
/// structural signals, plus one LUT of glue per 5 extra conjuncts.
pub fn additive_cost(option_costs: &[ResourceReport], any_structural: bool) -> usize {
    let options: usize = option_costs.iter().map(|r| r.luts).sum();
    let structure = if any_structural {
        structure_cost().luts
    } else {
        0
    };
    let glue = if option_costs.len() > 1 {
        1 + (option_costs.len().saturating_sub(2)) / (LUT_K - 1)
    } else {
        0
    };
    options + structure + glue
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_block_cost_is_modest() {
        let r = structure_cost();
        assert!(r.luts >= 5 && r.luts <= 60, "structure block: {r}");
        assert!(r.ffs >= DEPTH_FFS_MIN, "mask + depth registers: {r}");
    }

    const DEPTH_FFS_MIN: usize = 7; // 2 mask bits + 5 depth bits

    #[test]
    fn substring_cheaper_than_window_for_long_strings() {
        // The headline claim of Table I-III: s1 of a long needle costs far
        // less than the full-length window comparison.
        let s1 = option_cost(&Expr::substring(b"favourites_count", 1).unwrap());
        let win = option_cost(&Expr::window(b"favourites_count").unwrap());
        assert!(
            s1.luts < win.luts,
            "s1 {} LUTs vs window {} LUTs",
            s1.luts,
            win.luts
        );
        // And in flip-flops the window pays 8 bits per buffered byte.
        assert!(win.ffs > 8 * 10);
    }

    #[test]
    fn costs_grow_with_block_length() {
        // Table I: LUTs rise from B=1 to B=4 for "temperature".
        let costs: Vec<usize> = [1usize, 2, 4]
            .iter()
            .map(|&b| option_cost(&Expr::substring(b"temperature", b).unwrap()).luts)
            .collect();
        assert!(
            costs[0] < costs[2],
            "B=1 ({}) should be cheaper than B=4 ({})",
            costs[0],
            costs[2]
        );
    }

    #[test]
    fn additive_tracks_exact() {
        // For a two-context conjunction the additive estimate must land
        // within a reasonable band of the exact mapping (sharing effects
        // make it inexact by design).
        let pair_a = Expr::context([
            Expr::substring(b"humidity", 1).unwrap(),
            Expr::float_range("20.3", "69.1").unwrap(),
        ]);
        let pair_b = Expr::context([
            Expr::substring(b"dust", 1).unwrap(),
            Expr::float_range("83.36", "3322.67").unwrap(),
        ]);
        let full = Expr::and([pair_a.clone(), pair_b.clone()]);
        let exact = exact_cost(&full).luts;
        let additive = additive_cost(&[option_cost(&pair_a), option_cost(&pair_b)], true);
        let ratio = additive as f64 / exact as f64;
        assert!(
            (0.6..=1.5).contains(&ratio),
            "additive {additive} vs exact {exact} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn glue_accounting() {
        let r = ResourceReport {
            luts: 10,
            ..Default::default()
        };
        assert_eq!(additive_cost(&[r], false), 10);
        assert_eq!(additive_cost(&[r, r], false), 21);
        assert_eq!(additive_cost(&[r; 5], false), 51);
    }
}

//! String-matching technique (iii): the paper's resource-saving
//! **approximate** matcher (§III-A, Fig. 1, Table IV).
//!
//! Only the last B bytes of the stream are buffered and compared against
//! *all* B-byte substrings of the needle. The OR-reduced comparator output
//! feeds a counter that increments on every matching cycle and resets on a
//! miss; the filter fires once the counter reaches N − B + 1 — i.e. after
//! N − B + 1 consecutive windows that each look like *some* piece of the
//! needle. Any true occurrence produces exactly that run (no false
//! negatives); unrelated text occasionally does too (rare false
//! positives — e.g. `total_amount` vs `s1("tolls_amount")`).

use super::FireFilter;
use std::error::Error;
use std::fmt;

/// A B-byte substring of the needle, with duplicate marking (Table IV
/// prints duplicates in parentheses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Substring {
    /// The block bytes.
    pub bytes: Vec<u8>,
    /// True if an identical block occurred earlier in the needle.
    pub duplicate: bool,
}

/// All B-byte substrings of `needle` in order, duplicates marked — the
/// comparator set of the matcher and the content of Table IV.
///
/// # Panics
///
/// Panics if `b` is zero or exceeds `needle.len()`.
pub fn substrings(needle: &[u8], b: usize) -> Vec<Substring> {
    assert!(b >= 1 && b <= needle.len(), "block length out of range");
    let mut seen: Vec<&[u8]> = Vec::new();
    needle
        .windows(b)
        .map(|w| {
            let duplicate = seen.contains(&w);
            seen.push(w);
            Substring {
                bytes: w.to_vec(),
                duplicate,
            }
        })
        .collect()
}

/// Error constructing a [`SubstringMatcher`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstringError {
    /// Needle was empty.
    EmptyNeedle,
    /// Block length was zero or exceeded the needle length.
    BadBlockLength {
        /// Requested block length.
        b: usize,
        /// Needle length.
        needle_len: usize,
    },
    /// Needle contained a NUL byte (indistinguishable from buffer init).
    NulInNeedle,
}

impl fmt::Display for SubstringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstringError::EmptyNeedle => write!(f, "needle must not be empty"),
            SubstringError::BadBlockLength { b, needle_len } => {
                write!(
                    f,
                    "block length {b} invalid for needle of {needle_len} bytes"
                )
            }
            SubstringError::NulInNeedle => write!(f, "needle must not contain NUL"),
        }
    }
}

impl Error for SubstringError {}

/// The approximate B-block substring matcher, `sB(needle)` in the paper's
/// notation.
///
/// # Example
///
/// The `tolls_amount` / `total_amount` confusion of Table II:
///
/// ```
/// use rfjson_core::primitive::{SubstringMatcher, FireFilter};
///
/// let mut s1 = SubstringMatcher::new(b"tolls_amount", 1)?;
/// assert!(s1.fired_in_record(br#"{"total_amount":5.00}"#), "B=1 false positive");
///
/// let mut s2 = SubstringMatcher::new(b"tolls_amount", 2)?;
/// assert!(!s2.fired_in_record(br#"{"total_amount":5.00}"#), "B=2 fixes it");
/// assert!(s2.fired_in_record(br#"{"tolls_amount":5.00}"#));
/// # Ok::<(), rfjson_core::primitive::SubstringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubstringMatcher {
    needle: Vec<u8>,
    b: usize,
    /// Distinct comparator blocks (duplicates contribute no extra logic).
    blocks: Vec<Vec<u8>>,
    /// Fire threshold: N − B + 1 consecutive matching windows.
    target: u32,
    /// Circular buffer of the last B bytes.
    buffer: Vec<u8>,
    head: usize,
    /// Bytes consumed so far (windows are only valid once B bytes arrived —
    /// the zero-initialised hardware buffer can't match needles anyway, but
    /// mirroring it keeps software/hardware cycle-identical).
    counter: u32,
}

impl SubstringMatcher {
    /// Builds `sB(needle)`.
    ///
    /// # Errors
    ///
    /// See [`SubstringError`].
    pub fn new(needle: &[u8], b: usize) -> Result<Self, SubstringError> {
        if needle.is_empty() {
            return Err(SubstringError::EmptyNeedle);
        }
        if needle.contains(&0) {
            return Err(SubstringError::NulInNeedle);
        }
        if b == 0 || b > needle.len() {
            return Err(SubstringError::BadBlockLength {
                b,
                needle_len: needle.len(),
            });
        }
        let mut blocks: Vec<Vec<u8>> = Vec::new();
        for s in substrings(needle, b) {
            if !s.duplicate {
                blocks.push(s.bytes);
            }
        }
        Ok(SubstringMatcher {
            needle: needle.to_vec(),
            b,
            blocks,
            target: (needle.len() - b + 1) as u32,
            buffer: vec![0; b],
            head: 0,
            counter: 0,
        })
    }

    /// The search string.
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }

    /// Block length B.
    pub fn block_length(&self) -> usize {
        self.b
    }

    /// The distinct comparator blocks.
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Fire threshold N − B + 1.
    pub fn target(&self) -> u32 {
        self.target
    }

    fn window_matches(&self) -> bool {
        let n = self.buffer.len();
        self.blocks
            .iter()
            .any(|blk| (0..n).all(|i| self.buffer[(self.head + i) % n] == blk[i]))
    }
}

impl FireFilter for SubstringMatcher {
    fn on_byte(&mut self, b: u8) -> bool {
        self.buffer[self.head] = b;
        self.head = (self.head + 1) % self.buffer.len();
        if self.window_matches() {
            self.counter = self.counter.saturating_add(1);
        } else {
            self.counter = 0;
        }
        self.counter >= self.target
    }

    fn reset(&mut self) {
        self.buffer.fill(0);
        self.head = 0;
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::exact_end_positions;

    #[test]
    fn table4_substrings_of_temperature() {
        // Table IV, row B=1: duplicates are the second 'e', second 't',
        // second 'r', third 'e'.
        let s1 = substrings(b"temperature", 1);
        let printed: Vec<(String, bool)> = s1
            .iter()
            .map(|s| (String::from_utf8(s.bytes.clone()).unwrap(), s.duplicate))
            .collect();
        assert_eq!(s1.len(), 11);
        let dups: Vec<&str> = printed
            .iter()
            .filter(|(_, d)| *d)
            .map(|(s, _)| s.as_str())
            .collect();
        // Table IV marks the second 'e', second 't', second 'r' and third
        // 'e' as duplicates.
        assert_eq!(dups, vec!["e", "t", "r", "e"]);
        // Exactly the distinct letters remain:
        let distinct: Vec<&str> = printed
            .iter()
            .filter(|(_, d)| !*d)
            .map(|(s, _)| s.as_str())
            .collect();
        assert_eq!(distinct, vec!["t", "e", "m", "p", "r", "a", "u"]);

        // Row B=2: all ten bigrams are distinct.
        let s2 = substrings(b"temperature", 2);
        assert_eq!(s2.len(), 10);
        assert!(s2.iter().all(|s| !s.duplicate));
        assert_eq!(s2[0].bytes, b"te");
        assert_eq!(s2[9].bytes, b"re");

        // Row B=n: the needle itself.
        let sn = substrings(b"temperature", 11);
        assert_eq!(sn.len(), 1);
        assert_eq!(sn[0].bytes, b"temperature");
    }

    #[test]
    fn no_false_negatives_all_blocks() {
        // Property: wherever the needle truly ends, the matcher fires —
        // for every valid block length.
        let needle = b"temperature";
        let record = br#"{"v":"35.2","u":"far","n":"temperature"}"#;
        let ends = exact_end_positions(record, needle);
        assert!(!ends.is_empty());
        for b in 1..=needle.len() {
            let mut m = SubstringMatcher::new(needle, b).unwrap();
            let fires = m.fire_positions(record);
            for e in &ends {
                assert!(fires.contains(e), "B={b} missed end {e}");
            }
        }
    }

    #[test]
    fn b_equals_n_is_exact() {
        use crate::primitive::WindowMatcher;
        let needle = b"dust";
        let mut s = SubstringMatcher::new(needle, needle.len()).unwrap();
        let mut w = WindowMatcher::new(needle);
        for record in [
            &br#"{"n":"dust","v":"1"}"#[..],
            b"ddusst dust dus",
            b"industrial dusty",
        ] {
            assert_eq!(s.fire_positions(record), w.fire_positions(record));
        }
    }

    #[test]
    fn tolls_amount_anagram_false_positive() {
        // The Table II phenomenon: every byte of "total_amount" is a letter
        // of "tolls_amount", and it is 12 bytes long = N, so s1 fires.
        let mut s1 = SubstringMatcher::new(b"tolls_amount", 1).unwrap();
        assert!(s1.fired_in_record(b"\"total_amount\":19.13"));
        // …but the fire position is spurious (no true occurrence).
        let rec = b"\"total_amount\":19.13";
        assert!(exact_end_positions(rec, b"tolls_amount").is_empty());
    }

    #[test]
    fn counter_resets_on_miss() {
        let mut m = SubstringMatcher::new(b"abc", 1).unwrap();
        // "ab" then junk: the run counter must reset on the miss.
        assert!(!m.on_byte(b'a'));
        assert!(!m.on_byte(b'b'));
        assert!(!m.on_byte(b'x'));
        // Any 3-letter run from {a,b,c} then fires on its 3rd byte —
        // approximate matching does not require needle order.
        assert!(!m.on_byte(b'c'));
        assert!(!m.on_byte(b'a'));
        assert!(m.on_byte(b'b'));
    }

    #[test]
    fn prefix_run_fires_continuously() {
        // Runs longer than the needle keep firing — "users" fires at
        // "user" AND at the trailing 's' (the spurious-extension effect).
        let mut m = SubstringMatcher::new(b"user", 1).unwrap();
        assert_eq!(m.fire_positions(b"users"), vec![3, 4]);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            SubstringMatcher::new(b"", 1).unwrap_err(),
            SubstringError::EmptyNeedle
        );
        assert!(matches!(
            SubstringMatcher::new(b"ab", 3).unwrap_err(),
            SubstringError::BadBlockLength { .. }
        ));
        assert!(matches!(
            SubstringMatcher::new(b"ab", 0).unwrap_err(),
            SubstringError::BadBlockLength { .. }
        ));
        assert_eq!(
            SubstringMatcher::new(b"a\0", 1).unwrap_err(),
            SubstringError::NulInNeedle
        );
        let e = SubstringMatcher::new(b"ab", 3).unwrap_err();
        assert!(e.to_string().contains("block length"));
    }

    #[test]
    fn duplicate_blocks_share_comparators() {
        let m = SubstringMatcher::new(b"temperature", 1).unwrap();
        assert_eq!(m.blocks().len(), 7, "7 distinct letters");
        let m2 = SubstringMatcher::new(b"temperature", 2).unwrap();
        assert_eq!(m2.blocks().len(), 10);
    }
}

//! The number / number-range raw filter (§III-B).
//!
//! A range DFA (from `rfjson-redfa`) runs over every **number token** — a
//! maximal run of bytes from `0-9 + - . e E`. The verdict is taken at the
//! first byte *after* the token ("the DFA is evaluated every time a
//! non-numeric character is seen, as it has to mark the end of the
//! number"), then the automaton resets and waits for the next token.

use super::FireFilter;
use rfjson_redfa::range::is_number_byte;
use rfjson_redfa::{Dfa, NumberBounds};

/// Byte-serial number-range filter, `v(ℓ ≤ i|f ≤ u)` in paper notation.
///
/// # Example
///
/// ```
/// use rfjson_core::primitive::{NumberMatcher, FireFilter};
/// use rfjson_redfa::NumberBounds;
///
/// let mut v = NumberMatcher::new(NumberBounds::int_range(12, 49));
/// assert!(v.fired_in_record(br#"{"v":"20","u":"per"}"#));
/// assert!(!v.fired_in_record(br#"{"v":"350","u":"per"}"#));
/// ```
#[derive(Debug, Clone)]
pub struct NumberMatcher {
    bounds: NumberBounds,
    dfa: Dfa,
    state: u16,
    in_token: bool,
}

impl NumberMatcher {
    /// Builds the filter for `bounds` (with the approximate exponent
    /// clause, as synthesised in the paper).
    pub fn new(bounds: NumberBounds) -> Self {
        let dfa = bounds.to_dfa();
        let state = dfa.start();
        NumberMatcher {
            bounds,
            dfa,
            state,
            in_token: false,
        }
    }

    /// The value range.
    pub fn bounds(&self) -> &NumberBounds {
        &self.bounds
    }

    /// The range automaton (for elaboration / resource reports).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }
}

impl FireFilter for NumberMatcher {
    fn on_byte(&mut self, b: u8) -> bool {
        if is_number_byte(b) {
            self.state = self.dfa.step(self.state, b);
            self.in_token = true;
            false
        } else {
            let fire = self.in_token && self.dfa.is_accept(self.state);
            self.state = self.dfa.start();
            self.in_token = false;
            fire
        }
    }

    fn reset(&mut self) {
        self.state = self.dfa.start();
        self.in_token = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_redfa::range::NumberKind;
    use rfjson_redfa::Decimal;

    fn float_bounds(lo: &str, hi: &str) -> NumberBounds {
        NumberBounds::new(
            lo.parse::<Decimal>().unwrap(),
            hi.parse::<Decimal>().unwrap(),
            NumberKind::Float,
        )
        .unwrap()
    }

    #[test]
    fn fires_at_token_boundary() {
        let mut v = NumberMatcher::new(NumberBounds::int_range(10, 20));
        // "15," — fire happens at the comma, not at the digits.
        assert!(!v.on_byte(b'1'));
        assert!(!v.on_byte(b'5'));
        assert!(v.on_byte(b','));
        // And the automaton restarts cleanly.
        assert!(!v.on_byte(b'9'));
        assert!(!v.on_byte(b','));
    }

    #[test]
    fn quoted_senml_values_are_tokens_too() {
        // SenML stores numbers as strings; the raw filter doesn't care.
        let mut v = NumberMatcher::new(float_bounds("0.7", "35.1"));
        assert!(v.fired_in_record(br#"{"v":"21.5","u":"far"}"#));
        assert!(!v.fired_in_record(br#"{"v":"35.2","u":"far"}"#));
    }

    #[test]
    fn letters_with_e_do_not_false_fire() {
        // 'e' is a number byte; "far"/"per" contain no digits though, and
        // keys like "temperature" form letter runs with embedded 'e' —
        // the DFA must reject all of them.
        let mut v = NumberMatcher::new(NumberBounds::int_range(0, 9_999_999));
        assert!(!v.fired_in_record(br#"{"n":"temperature"}"#));
        assert!(!v.fired_in_record(br#"{"u":"per"}"#));
    }

    #[test]
    fn exponent_tokens_accepted_approximately() {
        let mut v = NumberMatcher::new(NumberBounds::int_range(10, 20));
        assert!(v.fired_in_record(b"[999e9]"), "digit+e accepted, may be FP");
        assert!(!v.fired_in_record(b"[999]"), "plain out-of-range rejected");
    }

    #[test]
    fn timestamp_not_in_range() {
        let mut v = NumberMatcher::new(NumberBounds::int_range(12, 49));
        assert!(!v.fired_in_record(br#"{"bt":1422748800000}"#));
        assert!(v.fired_in_record(br#"{"bt":1422748800000,"x":13}"#));
    }

    #[test]
    fn token_at_record_end_fires_via_newline() {
        // fired_in_record appends the newline the hardware sees.
        let mut v = NumberMatcher::new(NumberBounds::int_range(1, 5));
        assert!(v.fired_in_record(b"3"));
    }

    #[test]
    fn negative_values() {
        let mut v = NumberMatcher::new(float_bounds("-12.5", "43.1"));
        assert!(v.fired_in_record(br#"{"v":"-12.5"}"#));
        assert!(v.fired_in_record(br#"{"v":"-0.1"}"#));
        assert!(!v.fired_in_record(br#"{"v":"-12.6"}"#));
    }

    #[test]
    fn reset_mid_token() {
        let mut v = NumberMatcher::new(NumberBounds::int_range(1, 5));
        v.on_byte(b'3');
        v.reset();
        // After reset the pending token is forgotten.
        assert!(!v.on_byte(b','));
    }
}

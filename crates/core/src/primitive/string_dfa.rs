//! String-matching technique (i): a DFA accepting `.*needle`, stepping one
//! character per cycle (§III-A).
//!
//! Determinising `.*needle` yields exactly the classic failure-function
//! (KMP) automaton with N+1 states, so state count grows linearly but the
//! state *register* only logarithmically — the paper's argument for the
//! DFA variant on long strings.

use super::FireFilter;
use rfjson_redfa::{Dfa, Regex};
use rfjson_rtl::components::ByteSet;

/// Exact string matcher backed by a minimised DFA.
///
/// Fires on every byte at which `needle` ends in the stream.
///
/// # Example
///
/// ```
/// use rfjson_core::primitive::{DfaStringMatcher, FireFilter};
///
/// let mut m = DfaStringMatcher::new(b"temperature");
/// assert!(m.fired_in_record(br#"{"n":"temperature"}"#));
/// assert!(!m.fired_in_record(br#"{"n":"temperatur"}"#));
/// ```
#[derive(Debug, Clone)]
pub struct DfaStringMatcher {
    needle: Vec<u8>,
    dfa: Dfa,
    state: u16,
}

impl DfaStringMatcher {
    /// Builds the matcher for `needle`.
    ///
    /// # Panics
    ///
    /// Panics if `needle` is empty.
    pub fn new(needle: &[u8]) -> Self {
        assert!(!needle.is_empty(), "needle must not be empty");
        let re = Regex::concat([Regex::Class(ByteSet::full()).star(), Regex::literal(needle)]);
        let dfa = Dfa::from_regex(&re).minimized();
        let state = dfa.start();
        DfaStringMatcher {
            needle: needle.to_vec(),
            dfa,
            state,
        }
    }

    /// The search string.
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }

    /// The underlying automaton (for elaboration and resource reports).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }
}

impl FireFilter for DfaStringMatcher {
    fn on_byte(&mut self, b: u8) -> bool {
        self.state = self.dfa.step(self.state, b);
        self.dfa.is_accept(self.state)
    }

    fn reset(&mut self) {
        self.state = self.dfa.start();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::exact_end_positions;

    #[test]
    fn automaton_has_n_plus_one_states() {
        // "temperature" has no self-overlap issues that add states: the
        // minimal .*needle automaton has N+1 states.
        let m = DfaStringMatcher::new(b"temperature");
        assert_eq!(m.dfa().num_states(), 12);
        let m2 = DfaStringMatcher::new(b"aa");
        assert_eq!(m2.dfa().num_states(), 3);
    }

    #[test]
    fn fires_exactly_at_ends() {
        let mut m = DfaStringMatcher::new(b"abc");
        let record = b"zabcabcxabc";
        assert_eq!(
            m.fire_positions(record),
            exact_end_positions(record, b"abc")
        );
    }

    #[test]
    fn overlapping_occurrences() {
        let mut m = DfaStringMatcher::new(b"aba");
        // "ababa" contains "aba" ending at 2 and 4 (overlap).
        assert_eq!(m.fire_positions(b"ababa"), vec![2, 4]);
    }

    #[test]
    fn reset_between_records() {
        let mut m = DfaStringMatcher::new(b"ab");
        // Prefix 'a' at end of record 1 must not combine with 'b' at the
        // start of record 2 after a reset.
        for &b in b"xa" {
            m.on_byte(b);
        }
        m.reset();
        assert!(!m.on_byte(b'b'));
    }

    #[test]
    fn never_false_negative_on_random_strings() {
        // Exhaustive over short alphabets: every exact occurrence fires.
        let alphabet = b"ab";
        let needle = b"aab";
        let mut m = DfaStringMatcher::new(needle);
        for len in 0..10usize {
            let combos = (alphabet.len() as u32).pow(len as u32);
            for mut k in 0..combos {
                let mut s = Vec::with_capacity(len);
                for _ in 0..len {
                    s.push(alphabet[(k % 2) as usize]);
                    k /= 2;
                }
                assert_eq!(
                    m.fire_positions(&s),
                    exact_end_positions(&s, needle),
                    "input {:?}",
                    String::from_utf8_lossy(&s)
                );
            }
        }
    }
}

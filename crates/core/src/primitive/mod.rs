//! Raw-filter primitives (§III-A, §III-B).
//!
//! Every primitive is a byte-serial machine emitting a **fire** signal per
//! cycle (the paper's per-cycle match output). Record- or context-level
//! latching happens in the composition layer, not here.

mod number;
mod string_dfa;
mod string_substr;
mod string_window;

pub use number::NumberMatcher;
pub use string_dfa::DfaStringMatcher;
pub use string_substr::{substrings, Substring, SubstringError, SubstringMatcher};
pub use string_window::WindowMatcher;

use std::fmt;

/// A byte-serial filter primitive: consumes one byte per cycle, emits a
/// fire signal, and can be reset at record boundaries.
pub trait FireFilter: fmt::Debug {
    /// Advances one cycle with input `b`; returns the fire signal for this
    /// cycle.
    fn on_byte(&mut self, b: u8) -> bool;

    /// Returns to the power-on state (record boundary).
    fn reset(&mut self);

    /// Convenience: scans a whole record (with its terminating newline,
    /// like the hardware sees) and reports whether the primitive fired at
    /// least once. Resets first.
    fn fired_in_record(&mut self, record: &[u8]) -> bool {
        self.reset();
        let mut fired = false;
        for &b in record {
            fired |= self.on_byte(b);
        }
        fired |= self.on_byte(b'\n');
        self.reset();
        fired
    }

    /// Positions (byte indices) at which the primitive fires within
    /// `record` — used for the positional false-positive measurements of
    /// Tables I–III. The virtual trailing newline is index `record.len()`.
    fn fire_positions(&mut self, record: &[u8]) -> Vec<usize> {
        self.reset();
        let mut out = Vec::new();
        for (i, &b) in record.iter().enumerate() {
            if self.on_byte(b) {
                out.push(i);
            }
        }
        if self.on_byte(b'\n') {
            out.push(record.len());
        }
        self.reset();
        out
    }
}

/// Positions at which `needle` ends as an exact substring of `record` —
/// the exact-match reference against which approximate matchers are
/// scored.
pub fn exact_end_positions(record: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > record.len() {
        return Vec::new();
    }
    (needle.len()..=record.len())
        .filter(|&end| &record[end - needle.len()..end] == needle)
        .map(|end| end - 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_positions() {
        assert_eq!(exact_end_positions(b"xabcabc", b"abc"), vec![3, 6]);
        assert_eq!(exact_end_positions(b"aaa", b"aa"), vec![1, 2]);
        assert_eq!(exact_end_positions(b"abc", b"xyz"), Vec::<usize>::new());
        assert_eq!(exact_end_positions(b"ab", b"abc"), Vec::<usize>::new());
        assert_eq!(exact_end_positions(b"", b"a"), Vec::<usize>::new());
    }
}

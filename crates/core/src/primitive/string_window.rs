//! String-matching technique (ii): buffer the last N bytes and compare all
//! of them against the needle every cycle (§III-A).
//!
//! Exact like the DFA, but trades flip-flops (8·N of them) for simple
//! comparator logic — the paper finds it cheaper for short strings, with
//! cost growing quickly as N grows.

use super::FireFilter;

/// Exact full-length window comparator.
///
/// # Example
///
/// ```
/// use rfjson_core::primitive::{WindowMatcher, FireFilter};
///
/// let mut m = WindowMatcher::new(b"dust");
/// assert!(m.fired_in_record(br#"{"n":"dust"}"#));
/// assert!(!m.fired_in_record(br#"{"n":"dusk"}"#));
/// ```
#[derive(Debug, Clone)]
pub struct WindowMatcher {
    needle: Vec<u8>,
    /// Circular buffer of the last N bytes (zero-initialised, like the
    /// hardware shift register).
    buffer: Vec<u8>,
    head: usize,
}

impl WindowMatcher {
    /// Builds the matcher for `needle`.
    ///
    /// # Panics
    ///
    /// Panics if `needle` is empty or contains a NUL byte (the hardware
    /// zero-initialised buffer makes NUL indistinguishable from "empty").
    pub fn new(needle: &[u8]) -> Self {
        assert!(!needle.is_empty(), "needle must not be empty");
        assert!(
            !needle.contains(&0),
            "needle must not contain NUL (buffer init value)"
        );
        WindowMatcher {
            needle: needle.to_vec(),
            buffer: vec![0; needle.len()],
            head: 0,
        }
    }

    /// The search string.
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }
}

impl FireFilter for WindowMatcher {
    fn on_byte(&mut self, b: u8) -> bool {
        self.buffer[self.head] = b;
        self.head = (self.head + 1) % self.buffer.len();
        // buffer oldest..newest must equal needle
        let n = self.buffer.len();
        (0..n).all(|i| self.buffer[(self.head + i) % n] == self.needle[i])
    }

    fn reset(&mut self) {
        self.buffer.fill(0);
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::exact_end_positions;

    #[test]
    fn fires_exactly_at_ends() {
        let mut m = WindowMatcher::new(b"abc");
        let record = b"zabcabcxabc";
        assert_eq!(
            m.fire_positions(record),
            exact_end_positions(record, b"abc")
        );
    }

    #[test]
    fn agrees_with_dfa_matcher() {
        use crate::primitive::DfaStringMatcher;
        let needles: [&[u8]; 4] = [b"aa", b"aba", b"tolls_amount", b"x"];
        let records: [&[u8]; 4] = [
            b"aaaa",
            b"abababa",
            br#"{"tolls_amount":0.00,"total_amount":5.00}"#,
            b"",
        ];
        for needle in needles {
            let mut w = WindowMatcher::new(needle);
            let mut d = DfaStringMatcher::new(needle);
            for record in records {
                assert_eq!(
                    w.fire_positions(record),
                    d.fire_positions(record),
                    "needle {needle:?} record {record:?}"
                );
            }
        }
    }

    #[test]
    fn single_byte_needle() {
        let mut m = WindowMatcher::new(b"u");
        assert_eq!(m.fire_positions(b"dust"), vec![1]);
    }

    #[test]
    #[should_panic(expected = "NUL")]
    fn nul_needle_rejected() {
        let _ = WindowMatcher::new(b"a\0b");
    }

    #[test]
    fn reset_clears_buffer() {
        let mut m = WindowMatcher::new(b"ab");
        m.on_byte(b'a');
        m.reset();
        assert!(!m.on_byte(b'b'), "prefix must not survive reset");
    }
}

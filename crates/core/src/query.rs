//! Query → primitive extraction (design-flow step i, §III-D).
//!
//! A Table VIII query is a conjunction of attribute range predicates; each
//! predicate yields a string-search primitive (the attribute name), a
//! number-range primitive (the value bounds), and their structural
//! combinations. The structural scope follows the record shape: SenML
//! measurement objects use [`StructScope::Object`], flat records use the
//! comma-scoped [`StructScope::Member`].

use crate::expr::{Expr, ExprError, StringTechnique, StructScope};
use rfjson_redfa::range::NumberKind;
use rfjson_redfa::{Decimal, NumberBounds};
use rfjson_riotbench::{AttrKind, Query, RangePredicate, RecordShape};

/// How one attribute of the query is represented in a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrOption {
    /// `v(range)` — value filter only.
    Value,
    /// `sB(name)` — string filter only.
    Str(StringTechnique),
    /// `{ sB(name) & v(range) }` — structure-aware pair.
    StructPair(StringTechnique),
    /// `sB(name) & v(range)` — plain conjunction, no structure.
    PlainPair(StringTechnique),
}

impl AttrOption {
    /// Does this option use the shared structure block?
    pub fn is_structural(self) -> bool {
        matches!(self, AttrOption::StructPair(_))
    }

    /// Does this option include a string matcher?
    pub fn has_string(self) -> bool {
        !matches!(self, AttrOption::Value)
    }
}

/// The numeric bounds of a predicate as an exact-decimal range.
///
/// # Errors
///
/// Propagates decimal/bounds errors (a malformed predicate literal).
pub fn predicate_bounds(p: &RangePredicate) -> Result<NumberBounds, ExprError> {
    let lo: Decimal = p.lo.parse()?;
    let hi: Decimal = p.hi.parse()?;
    let kind = match p.kind {
        AttrKind::Int => NumberKind::Integer,
        AttrKind::Float => NumberKind::Float,
    };
    Ok(NumberBounds::new(lo, hi, kind)?)
}

/// The structural scope appropriate for a record shape.
pub fn scope_for(shape: RecordShape) -> StructScope {
    match shape {
        RecordShape::SenML => StructScope::Object,
        RecordShape::Flat => StructScope::Member,
    }
}

/// Builds the expression for one attribute under a given option.
///
/// # Errors
///
/// Propagates construction errors (bad needles / bounds).
pub fn attr_expr(
    query: &Query,
    predicate: &RangePredicate,
    option: AttrOption,
) -> Result<Expr, ExprError> {
    let needle = predicate.attribute.as_bytes();
    let string_expr = |t: StringTechnique| -> Result<Expr, ExprError> {
        match t {
            StringTechnique::Dfa => Expr::dfa_string(needle),
            StringTechnique::Window => Expr::window(needle),
            StringTechnique::Substring(b) => Expr::substring(needle, b),
        }
    };
    let value_expr = Expr::Num(predicate_bounds(predicate)?);
    Ok(match option {
        AttrOption::Value => value_expr,
        AttrOption::Str(t) => string_expr(t)?,
        AttrOption::StructPair(t) => {
            Expr::context_scoped(scope_for(query.shape), [string_expr(t)?, value_expr])
        }
        AttrOption::PlainPair(t) => Expr::and([string_expr(t)?, value_expr]),
    })
}

/// The full structure-aware filter for a query: every attribute as
/// `{ sB(name) & v(range) }`, conjoined — the most accurate configuration
/// of the design space (last row of each Pareto table).
///
/// # Errors
///
/// Propagates construction errors.
pub fn query_to_exprs(query: &Query, b: usize) -> Result<Expr, ExprError> {
    let mut parts = Vec::new();
    for p in &query.predicates {
        parts.push(attr_expr(
            query,
            p,
            AttrOption::StructPair(StringTechnique::Substring(b)),
        )?);
    }
    Ok(Expr::and(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::measure;
    use rfjson_riotbench::{smartcity, taxi};

    #[test]
    fn bounds_conversion() {
        let q = Query::qs0();
        let b = predicate_bounds(&q.predicates[0]).unwrap();
        assert_eq!(b.to_string(), "0.7 ≤ f ≤ 35.1");
        let bi = predicate_bounds(&q.predicates[2]).unwrap();
        assert_eq!(bi.to_string(), "0 ≤ i ≤ 5153");
    }

    #[test]
    fn scope_follows_shape() {
        assert_eq!(scope_for(RecordShape::SenML), StructScope::Object);
        assert_eq!(scope_for(RecordShape::Flat), StructScope::Member);
    }

    #[test]
    fn attr_option_expressions() {
        let q = Query::qt();
        let p = &q.predicates[3]; // tolls_amount
        let v = attr_expr(&q, p, AttrOption::Value).unwrap();
        assert_eq!(v.to_string(), "v(2.5 ≤ f ≤ 18)");
        let s = attr_expr(&q, p, AttrOption::Str(StringTechnique::Substring(2))).unwrap();
        assert_eq!(s.to_string(), "s2(\"tolls_amount\")");
        let pair = attr_expr(&q, p, AttrOption::StructPair(StringTechnique::Substring(2))).unwrap();
        assert_eq!(
            pair.to_string(),
            "{ s2(\"tolls_amount\") & v(2.5 ≤ f ≤ 18) }"
        );
        assert!(pair.has_context());
        let plain = attr_expr(&q, p, AttrOption::PlainPair(StringTechnique::Substring(2))).unwrap();
        assert!(!plain.has_context());
    }

    #[test]
    fn full_query_filter_has_no_false_negatives() {
        // The defining invariant, on both dataset shapes.
        let qs0 = Query::qs0();
        let sc = smartcity::generate(11, 300);
        let expr = query_to_exprs(&qs0, 1).unwrap();
        let m = measure(&expr, &sc, &qs0);
        assert_eq!(m.false_negatives, 0);

        let qt = Query::qt();
        let tx = taxi::generate(12, 300);
        let expr_t = query_to_exprs(&qt, 2).unwrap();
        let mt = measure(&expr_t, &tx, &qt);
        assert_eq!(mt.false_negatives, 0);
    }

    #[test]
    fn full_smartcity_filter_is_accurate() {
        // Table V bottom row: the all-attribute structural filter reaches
        // FPR ≈ 0.
        let qs0 = Query::qs0();
        let sc = smartcity::generate(13, 500);
        let expr = query_to_exprs(&qs0, 1).unwrap();
        let m = measure(&expr, &sc, &qs0);
        assert!(m.fpr() < 0.05, "FPR {}", m.fpr());
    }
}

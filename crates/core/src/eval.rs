//! False-positive measurement.
//!
//! Two measurement modes mirror the paper's two uses of "FPR":
//!
//! * [`measure`] — record-level, against query ground truth: of the
//!   records the query does *not* select, which fraction does the raw
//!   filter wrongly pass? (Tables V–VII, Fig. 3.) False negatives are
//!   counted too and must always be zero — that is the defining raw-filter
//!   guarantee.
//! * [`positional_fpr`] — matcher-level, against exact string occurrence
//!   positions: in which fraction of records does an approximate matcher
//!   fire at a position where the needle does not actually end? (Tables
//!   I–III; exact matchers score 0 by construction.)

use crate::backend::FilterBackend;
use crate::evaluator::CompiledFilter;
use crate::expr::Expr;
use crate::primitive::{exact_end_positions, FireFilter};
use rfjson_riotbench::{Dataset, Query};
use std::fmt;

/// Result of measuring a filter against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Total records scanned.
    pub records: usize,
    /// Records the query truly selects.
    pub matching: usize,
    /// Records the raw filter passed.
    pub accepted: usize,
    /// Records passed by the filter but not selected by the query.
    pub false_positives: usize,
    /// Records selected by the query but dropped by the filter.
    /// **Must be zero** for any well-formed raw filter.
    pub false_negatives: usize,
}

impl Measurement {
    /// False-positive rate: false positives over true negatives.
    pub fn fpr(&self) -> f64 {
        let negatives = self.records - self.matching;
        if negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / negatives as f64
        }
    }

    /// Fraction of the stream the filter lets through.
    pub fn pass_rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.accepted as f64 / self.records as f64
        }
    }

    /// Fraction of the raw data removed before the parser (the paper's
    /// headline "up to 94.3 % of the raw data can be filtered").
    pub fn filtered_fraction(&self) -> f64 {
        1.0 - self.pass_rate()
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records: {} match, {} accepted, FPR {:.3}, FN {}",
            self.records,
            self.matching,
            self.accepted,
            self.fpr(),
            self.false_negatives
        )
    }
}

/// Measures `expr` against `query` ground truth over `dataset`.
///
/// # Panics
///
/// Panics if the dataset contains invalid JSON (ground truth would be
/// meaningless).
pub fn measure(expr: &Expr, dataset: &Dataset, query: &Query) -> Measurement {
    let mut filter = CompiledFilter::compile(expr);
    let truth: Vec<bool> = dataset.parsed().iter().map(|r| query.matches(r)).collect();
    let mut m = Measurement {
        records: dataset.len(),
        matching: truth.iter().filter(|t| **t).count(),
        accepted: 0,
        false_positives: 0,
        false_negatives: 0,
    };
    for (record, &matched) in dataset.records().iter().zip(&truth) {
        let accepted = filter.accepts_record(record);
        if accepted {
            m.accepted += 1;
            if !matched {
                m.false_positives += 1;
            }
        } else if matched {
            m.false_negatives += 1;
        }
    }
    m
}

/// Positional FPR of a string matcher (Tables I–III): the fraction of
/// records in which the matcher fires at least once at a byte position
/// where `needle` does not actually end.
pub fn positional_fpr(matcher: &mut dyn FireFilter, needle: &[u8], dataset: &Dataset) -> f64 {
    if dataset.is_empty() {
        return 0.0;
    }
    let spurious_records = dataset
        .records()
        .iter()
        .filter(|record| {
            let fires = matcher.fire_positions(record);
            let exact = exact_end_positions(record, needle);
            fires.iter().any(|p| !exact.contains(p))
        })
        .count();
    spurious_records as f64 / dataset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::{DfaStringMatcher, SubstringMatcher, WindowMatcher};
    use rfjson_riotbench::{smartcity, taxi};

    #[test]
    // Exact 0.0 is the claim under test: zero false-positive events.
    #[allow(clippy::float_cmp)]
    fn exact_matchers_have_zero_positional_fpr() {
        let ds = taxi::generate(1, 100);
        for needle in [&b"tolls_amount"[..], b"trip_distance"] {
            let mut dfa = DfaStringMatcher::new(needle);
            let mut win = WindowMatcher::new(needle);
            assert_eq!(positional_fpr(&mut dfa, needle, &ds), 0.0);
            assert_eq!(positional_fpr(&mut win, needle, &ds), 0.0);
        }
    }

    #[test]
    // Exact 0.0 is the claim under test: zero false-positive events.
    #[allow(clippy::float_cmp)]
    fn tolls_amount_b1_full_positional_fpr() {
        // Table II: s1("tolls_amount") = 1.000 — every record contains
        // "total_amount".
        let ds = taxi::generate(2, 200);
        let mut m = SubstringMatcher::new(b"tolls_amount", 1).unwrap();
        let fpr = positional_fpr(&mut m, b"tolls_amount", &ds);
        assert!(fpr > 0.99, "got {fpr}");
        // And B=2 fixes it completely (Table II).
        let mut m2 = SubstringMatcher::new(b"tolls_amount", 2).unwrap();
        let fpr2 = positional_fpr(&mut m2, b"tolls_amount", &ds);
        assert_eq!(fpr2, 0.0, "got {fpr2}");
    }

    #[test]
    fn smartcity_strings_are_clean_at_b1() {
        // Table I: SmartCity keys produce (near-)zero positional FPR even
        // at B=1 — the records contain little letter material.
        let ds = smartcity::generate(3, 200);
        for needle in [&b"temperature"[..], b"humidity", b"light"] {
            let mut m = SubstringMatcher::new(needle, 1).unwrap();
            let fpr = positional_fpr(&mut m, needle, &ds);
            assert!(
                fpr < 0.05,
                "needle {:?} fpr {fpr}",
                String::from_utf8_lossy(needle)
            );
        }
    }

    #[test]
    fn measurement_record_level() {
        let ds = smartcity::generate(4, 400);
        let q = Query::qs0();
        // Naive single-primitive filter: accepts almost everything.
        let m = measure(&Expr::substring(b"temperature", 1).unwrap(), &ds, &q);
        assert_eq!(m.false_negatives, 0, "raw filters never drop matches");
        assert_eq!(m.records, 400);
        assert!(m.pass_rate() > 0.9);
        // Structural filter on the most selective attribute: lower FPR.
        let structural = Expr::and([
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::float_range("20.3", "69.1").unwrap(),
            ]),
        ]);
        let m2 = measure(&structural, &ds, &q);
        assert_eq!(m2.false_negatives, 0);
        assert!(
            m2.fpr() < m.fpr(),
            "structural {} < naive {}",
            m2.fpr(),
            m.fpr()
        );
    }

    #[test]
    fn measurement_display_and_rates() {
        let m = Measurement {
            records: 100,
            matching: 20,
            accepted: 30,
            false_positives: 10,
            false_negatives: 0,
        };
        assert!((m.fpr() - 0.125).abs() < 1e-12);
        assert!((m.pass_rate() - 0.3).abs() < 1e-12);
        assert!((m.filtered_fraction() - 0.7).abs() < 1e-12);
        assert!(m.to_string().contains("FPR 0.125"));
    }
}

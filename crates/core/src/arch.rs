//! System-architecture model (§IV-B, Fig. 4).
//!
//! The paper's prototype: a Zynq-7000 with N parallel raw-filter
//! pipelines in the programmable logic, each consuming **one byte per
//! cycle** at 200 MHz (theoretical 1.4 GB/s for 7 lanes), fed by DMA; only
//! match signals travel back. The measured 1.33 GB/s (sufficient for a
//! 10 GBit/s NIC at line rate) corresponds to ~95 % DMA efficiency, which
//! the model captures as a per-burst descriptor overhead.

use crate::backend::FilterBackend;
use crate::evaluator::CompiledFilter;
use crate::expr::Expr;
use rfjson_jsonstream::frame::split_records;
use std::fmt;

/// Default clock of the programmable logic (Hz).
pub const DEFAULT_CLOCK_HZ: f64 = 200e6;
/// Default number of parallel raw-filter lanes.
pub const DEFAULT_LANES: usize = 7;
/// Default DMA burst size in bytes.
pub const DEFAULT_DMA_BURST: usize = 4096;
/// Default per-burst descriptor overhead in cycles.
pub const DEFAULT_DMA_OVERHEAD_CYCLES: u64 = 30;

/// A parallel raw-filter subsystem: N identical filter lanes, a DMA feed
/// model, and cycle accounting.
///
/// # Example
///
/// ```
/// use rfjson_core::arch::RawFilterSystem;
/// use rfjson_core::Expr;
///
/// let mut sys = RawFilterSystem::new(&Expr::int_range(1, 5), 2);
/// let (matches, report) = sys.process(b"{\"a\":3}\n{\"a\":9}\n");
/// assert_eq!(matches, vec![true, false]);
/// assert!(report.gigabytes_per_second > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RawFilterSystem {
    lanes: Vec<CompiledFilter>,
    clock_hz: f64,
    dma_burst_bytes: usize,
    dma_overhead_cycles: u64,
}

/// Throughput accounting of one [`RawFilterSystem::process`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Records streamed.
    pub records: usize,
    /// Records whose match signal was raised.
    pub accepted: usize,
    /// Stream bytes processed (including record separators).
    pub bytes: usize,
    /// Simulated cycles until the last lane finished.
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Achieved throughput in GB/s.
    pub gigabytes_per_second: f64,
    /// Upper bound: lanes × clock × 1 B/cycle.
    pub theoretical_gbps: f64,
    /// Number of lanes.
    pub lanes: usize,
}

impl ThroughputReport {
    /// Can this configuration absorb a 10 GBit/s network feed at line
    /// rate (1.25 GB/s)?
    pub fn sustains_10gbe(&self) -> bool {
        self.gigabytes_per_second >= 1.25
    }

    /// DMA efficiency: achieved over theoretical.
    pub fn efficiency(&self) -> f64 {
        self.gigabytes_per_second / self.theoretical_gbps
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lanes: {:.2} GB/s of {:.2} GB/s theoretical ({:.1} % eff.), {} of {} records passed",
            self.lanes,
            self.gigabytes_per_second,
            self.theoretical_gbps,
            self.efficiency() * 100.0,
            self.accepted,
            self.records
        )
    }
}

impl RawFilterSystem {
    /// Builds a system with `lanes` copies of the filter at the default
    /// 200 MHz clock and DMA parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(expr: &Expr, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one lane required");
        let filter = CompiledFilter::compile(expr);
        RawFilterSystem {
            lanes: vec![filter; lanes],
            clock_hz: DEFAULT_CLOCK_HZ,
            dma_burst_bytes: DEFAULT_DMA_BURST,
            dma_overhead_cycles: DEFAULT_DMA_OVERHEAD_CYCLES,
        }
    }

    /// Sets the PL clock frequency.
    #[must_use]
    pub fn with_clock_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "clock must be positive");
        self.clock_hz = hz;
        self
    }

    /// Sets the DMA burst model.
    #[must_use]
    pub fn with_dma(mut self, burst_bytes: usize, overhead_cycles: u64) -> Self {
        assert!(burst_bytes > 0, "burst size must be positive");
        self.dma_burst_bytes = burst_bytes;
        self.dma_overhead_cycles = overhead_cycles;
        self
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Streams a newline-delimited byte stream through the system.
    /// Records are distributed round-robin; returns per-record match
    /// signals in stream order plus the throughput report.
    pub fn process(&mut self, stream: &[u8]) -> (Vec<bool>, ThroughputReport) {
        let num_lanes = self.lanes.len();
        let mut lane_cycles = vec![0u64; num_lanes];
        let mut matches = Vec::new();
        for (i, record) in split_records(stream).enumerate() {
            let lane = i % num_lanes;
            lane_cycles[lane] += record.len() as u64 + 1; // +1 separator byte
            matches.push(self.lanes[lane].accepts_record(record));
        }
        let records = matches.len();
        let accepted = matches.iter().filter(|m| **m).count();
        // DMA: every burst of the source stream pays a descriptor
        // overhead that stalls the feed.
        let bursts = (stream.len() as u64).div_ceil(self.dma_burst_bytes as u64);
        let compute = lane_cycles.iter().copied().max().unwrap_or(0);
        let cycles = compute + bursts * self.dma_overhead_cycles;
        let seconds = cycles as f64 / self.clock_hz;
        let gbps = if seconds > 0.0 {
            stream.len() as f64 / seconds / 1e9
        } else {
            0.0
        };
        let report = ThroughputReport {
            records,
            accepted,
            bytes: stream.len(),
            cycles,
            seconds,
            gigabytes_per_second: gbps,
            theoretical_gbps: self.clock_hz * num_lanes as f64 / 1e9,
            lanes: num_lanes,
        };
        (matches, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_riotbench::smartcity;

    fn toy_stream(n: usize) -> Vec<u8> {
        let mut s = Vec::new();
        for i in 0..n {
            s.extend_from_slice(format!("{{\"a\":{}}}\n", i % 10).as_bytes());
        }
        s
    }

    #[test]
    fn filtering_decisions_match_single_filter() {
        let expr = Expr::int_range(3, 6);
        let stream = toy_stream(100);
        let mut sys = RawFilterSystem::new(&expr, 7);
        let (matches, report) = sys.process(&stream);
        assert_eq!(matches.len(), 100);
        assert_eq!(report.records, 100);
        // Ground truth: digits 3..=6 of the repeating 0..9 pattern.
        for (i, m) in matches.iter().enumerate() {
            assert_eq!(*m, (3..=6).contains(&(i % 10)), "record {i}");
        }
        assert_eq!(report.accepted, 40);
    }

    #[test]
    // theoretical_gbps is computed from the same constants the assertion
    // uses, so bit-exact equality is well-defined here.
    #[allow(clippy::float_cmp)]
    fn lanes_divide_work() {
        let expr = Expr::int_range(0, 9);
        let stream = toy_stream(700);
        let mut one = RawFilterSystem::new(&expr, 1);
        let mut seven = RawFilterSystem::new(&expr, 7);
        let (_, r1) = one.process(&stream);
        let (_, r7) = seven.process(&stream);
        assert!(r7.cycles < r1.cycles);
        assert!(r7.gigabytes_per_second > 5.0 * r1.gigabytes_per_second);
        assert_eq!(r7.theoretical_gbps, 1.4, "7 × 200 MHz = 1.4 GB/s");
    }

    #[test]
    fn paper_efficiency_regime() {
        // With default DMA parameters the 7-lane system lands near the
        // paper's 1.33 GB/s (95 % of 1.4 GB/s).
        let ds = smartcity::generate(31, 200);
        let stream = ds.inflated_to(2_000_000).stream();
        let mut sys = RawFilterSystem::new(&Expr::int_range(12, 49), 7);
        let (_, report) = sys.process(&stream);
        assert!(
            (1.25..1.40).contains(&report.gigabytes_per_second),
            "achieved {:.3} GB/s",
            report.gigabytes_per_second
        );
        assert!(report.sustains_10gbe(), "{report}");
        assert!((0.90..0.99).contains(&report.efficiency()));
    }

    #[test]
    fn display_report() {
        let mut sys = RawFilterSystem::new(&Expr::int_range(0, 1), 2);
        let (_, r) = sys.process(b"{\"a\":1}\n");
        let text = r.to_string();
        assert!(text.contains("lanes") && text.contains("GB/s"));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = RawFilterSystem::new(&Expr::int_range(0, 1), 0);
    }
}

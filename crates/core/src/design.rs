//! Design-space exploration (§III-D, §IV-A).
//!
//! The design flow: (i) extract search strings and value ranges from the
//! query; (ii) pick candidate primitives and parameters (block lengths
//! B ∈ {1, 2, N}); (iii) form combinations — per attribute, a value filter,
//! a string filter, or their structural / plain pairing, with AND-clause
//! attributes freely omittable (OR-clauses may never be pruned); (iv)
//! evaluate every configuration's FPR and LUT cost and extract the Pareto
//! front.
//!
//! FPR evaluation is shared-work: each per-attribute option is scanned over
//! the dataset once (bit-packed accept vectors), configurations then reduce
//! to bitwise ANDs, which is what makes the 10⁵-point spaces of Fig. 3
//! tractable in software.

use crate::backend::FilterBackend;
use crate::cost::{additive_cost, option_cost, structure_cost};
use crate::eval::Measurement;
use crate::expr::{Expr, StringTechnique};
use crate::query::{attr_expr, AttrOption};
use crate::CompiledFilter;
use rfjson_riotbench::{Dataset, Query};
use rfjson_techmap::ResourceReport;
use std::fmt;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// String techniques to consider (paper default: B ∈ {1, 2, N}).
    pub techniques: Vec<StringTechnique>,
    /// Include string-only attribute options.
    pub include_string_only: bool,
    /// Include non-structural `s & v` pairs.
    pub include_plain_pairs: bool,
    /// Cap on records used for FPR evaluation (0 = all).
    pub max_records: usize,
    /// Worker threads for the evaluation phases.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            techniques: vec![
                StringTechnique::Substring(1),
                StringTechnique::Substring(2),
                StringTechnique::Window,
            ],
            include_string_only: true,
            include_plain_pairs: true,
            max_records: 0,
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
        }
    }
}

/// One evaluated configuration: which option (if any) each query attribute
/// uses, with its measured FPR and estimated LUT cost.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Per-attribute choice, aligned with `query.predicates`; `None` means
    /// the attribute was omitted (allowed for AND-clauses).
    pub options: Vec<Option<AttrOption>>,
    /// Record-level false-positive rate against query ground truth.
    pub fpr: f64,
    /// LUT cost (additive model over option costs + shared structure).
    pub luts: usize,
    /// Number of attributes filtered (Fig. 3's colour axis).
    pub num_attributes: usize,
}

impl DesignPoint {
    /// The configuration as a filter expression.
    ///
    /// # Panics
    ///
    /// Panics if the stored options mismatch the query (wrong query given).
    pub fn expr(&self, query: &Query) -> Expr {
        let parts: Vec<Expr> = self
            .options
            .iter()
            .zip(&query.predicates)
            .filter_map(|(opt, pred)| {
                opt.map(|o| attr_expr(query, pred, o).expect("options came from this query"))
            })
            .collect();
        Expr::and(parts)
    }

    /// Paper-notation description of the configuration.
    pub fn notation(&self, query: &Query) -> String {
        self.expr(query).to_string()
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fpr={:.3} luts={} attrs={}",
            self.fpr, self.luts, self.num_attributes
        )
    }
}

/// Bit-packed per-record accept vector.
#[derive(Debug, Clone)]
struct AcceptBits {
    words: Vec<u64>,
}

impl AcceptBits {
    fn from_bools(bits: &[bool]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        AcceptBits { words }
    }

    fn and_assign(&mut self, other: &AcceptBits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn ones(n: usize) -> Self {
        let mut words = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        AcceptBits { words }
    }

    /// Records matched by ground truth but rejected by this vector.
    fn false_negatives(&self, truth: &AcceptBits) -> usize {
        self.words
            .iter()
            .zip(&truth.words)
            .map(|(a, t)| (t & !a).count_ones() as usize)
            .sum()
    }
}

/// Per-(attribute, option) evaluation artifacts.
struct OptionEval {
    attr: usize,
    option: AttrOption,
    accepts: AcceptBits,
    cost: ResourceReport,
}

/// Explores the design space of `query` over `dataset`.
///
/// Returns every evaluated configuration (the Fig. 3 point cloud). Use
/// [`pareto`] to extract the fronts of Tables V–VII.
///
/// # Panics
///
/// Panics if any configuration produces a false negative — that would be a
/// raw-filter correctness bug, not a data property.
pub fn explore(query: &Query, dataset: &Dataset, opts: &ExploreOptions) -> Vec<DesignPoint> {
    let records: Vec<&[u8]> = {
        let all = dataset.records();
        let n = if opts.max_records == 0 {
            all.len()
        } else {
            all.len().min(opts.max_records)
        };
        all[..n].iter().map(Vec::as_slice).collect()
    };
    let truth_bools: Vec<bool> = {
        let parsed = dataset.parsed();
        parsed[..records.len()]
            .iter()
            .map(|r| query.matches(r))
            .collect()
    };
    let truth = AcceptBits::from_bools(&truth_bools);
    let negatives = records.len() - truth.count();

    // Option menu per attribute.
    let mut menu: Vec<AttrOption> = vec![AttrOption::Value];
    for &t in &opts.techniques {
        if opts.include_string_only {
            menu.push(AttrOption::Str(t));
        }
        menu.push(AttrOption::StructPair(t));
        if opts.include_plain_pairs {
            menu.push(AttrOption::PlainPair(t));
        }
    }

    // Evaluate every (attribute, option) pair once, in parallel.
    let tasks: Vec<(usize, AttrOption)> = (0..query.predicates.len())
        .flat_map(|a| menu.iter().map(move |&o| (a, o)))
        .collect();
    let evals: Vec<OptionEval> = parallel_map(&tasks, opts.threads, |&(attr, option)| {
        let expr = attr_expr(query, &query.predicates[attr], option)
            .expect("query predicates are well-formed");
        let mut filter = CompiledFilter::compile(&expr);
        let bools: Vec<bool> = records.iter().map(|r| filter.accepts_record(r)).collect();
        OptionEval {
            attr,
            option,
            accepts: AcceptBits::from_bools(&bools),
            cost: option_cost(&expr),
        }
    });

    let shared_structure = structure_cost().luts;
    let _ = shared_structure; // additive_cost re-derives it; kept for clarity

    // Enumerate configurations: per attribute, None or an index into menu.
    let num_attrs = query.predicates.len();
    let radix = menu.len() + 1;
    let total: usize = radix.pow(num_attrs as u32);
    let eval_of =
        |attr: usize, opt_idx: usize| -> &OptionEval { &evals[attr * menu.len() + opt_idx] };
    // Verify the eval table layout.
    debug_assert!(evals
        .iter()
        .enumerate()
        .all(|(i, e)| e.attr == i / menu.len() && e.option == menu[i % menu.len()]));

    let configs: Vec<usize> = (1..total).collect();
    let points: Vec<DesignPoint> = parallel_map(&configs, opts.threads, |&code| {
        let mut options: Vec<Option<AttrOption>> = Vec::with_capacity(num_attrs);
        let mut accepts = AcceptBits::ones(records.len());
        let mut costs: Vec<ResourceReport> = Vec::new();
        let mut any_structural = false;
        let mut c = code;
        for attr in 0..num_attrs {
            let digit = c % radix;
            c /= radix;
            if digit == 0 {
                options.push(None);
                continue;
            }
            let ev = eval_of(attr, digit - 1);
            options.push(Some(ev.option));
            accepts.and_assign(&ev.accepts);
            costs.push(ev.cost);
            any_structural |= ev.option.is_structural();
        }
        let fn_count = accepts.false_negatives(&truth);
        assert_eq!(
            fn_count, 0,
            "raw filter produced false negatives — correctness bug"
        );
        let accepted = accepts.count();
        let matching = truth.count();
        let false_positives = accepted - matching; // FN == 0
        let fpr = if negatives == 0 {
            0.0
        } else {
            false_positives as f64 / negatives as f64
        };
        DesignPoint {
            num_attributes: options.iter().filter(|o| o.is_some()).count(),
            luts: additive_cost(&costs, any_structural),
            options,
            fpr,
        }
    });
    points
}

/// Extracts the Pareto-optimal points (minimal FPR for their LUT budget),
/// sorted by ascending LUT cost.
pub fn pareto(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.luts
            .cmp(&b.luts)
            .then(a.fpr.partial_cmp(&b.fpr).expect("fpr is finite"))
    });
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_fpr = f64::INFINITY;
    for p in sorted {
        if p.fpr < best_fpr {
            best_fpr = p.fpr;
            front.push(p.clone());
        }
    }
    front
}

/// Summarises a design point into a [`Measurement`]-style record count
/// (convenience for reports).
pub fn point_measurement(point: &DesignPoint, query: &Query, dataset: &Dataset) -> Measurement {
    crate::eval::measure(&point.expr(query), dataset, query)
}

/// Simple scoped-thread parallel map preserving input order.
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [Option<R>] = &mut results;
        let mut offset = 0;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let items_slice = &items[offset..offset + take];
            handles.push(scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(items_slice) {
                    *slot = Some(f(item));
                }
            }));
            rest = tail;
            offset += take;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled by workers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfjson_riotbench::smartcity;

    fn small_opts() -> ExploreOptions {
        ExploreOptions {
            techniques: vec![StringTechnique::Substring(1)],
            include_string_only: false,
            include_plain_pairs: false,
            max_records: 200,
            threads: 2,
        }
    }

    #[test]
    fn explore_small_space() {
        // 5 attributes × {None, v, {s1&v}} = 3^5 − 1 = 242 configs.
        let ds = smartcity::generate(21, 200);
        let q = Query::qs1();
        let points = explore(&q, &ds, &small_opts());
        assert_eq!(points.len(), 242);
        // All FPRs in [0,1], LUTs positive, attribute counts in 1..=5.
        for p in &points {
            assert!((0.0..=1.0).contains(&p.fpr), "{p}");
            assert!(p.luts > 0);
            assert!((1..=5).contains(&p.num_attributes));
        }
    }

    #[test]
    fn pareto_front_is_nondominated_and_sorted() {
        let ds = smartcity::generate(22, 200);
        let q = Query::qs1();
        let points = explore(&q, &ds, &small_opts());
        let front = pareto(&points);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].luts <= w[1].luts);
            assert!(w[0].fpr > w[1].fpr, "strictly improving FPR");
        }
        // No point in the cloud dominates a front point.
        for fp in &front {
            assert!(!points.iter().any(|p| p.luts <= fp.luts && p.fpr < fp.fpr));
        }
    }

    #[test]
    fn structural_filtering_improves_fpr_for_more_luts() {
        // The QS1 story: the full structural config has (near-)zero FPR;
        // the cheapest config has high FPR.
        let ds = smartcity::generate(23, 300);
        let q = Query::qs1();
        let points = explore(&q, &ds, &small_opts());
        let front = pareto(&points);
        let cheapest = front.first().unwrap();
        let best = front.last().unwrap();
        assert!(best.fpr <= cheapest.fpr);
        assert!(best.luts > cheapest.luts);
        assert!(best.fpr < 0.05, "full filter FPR {}", best.fpr);
    }

    #[test]
    fn notation_renders() {
        let ds = smartcity::generate(24, 100);
        let q = Query::qs1();
        let points = explore(&q, &ds, &small_opts());
        let front = pareto(&points);
        let text = front.last().unwrap().notation(&q);
        assert!(text.contains("v("), "{text}");
    }

    #[test]
    fn parallel_map_order_preserved() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let single = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(single[99], 100);
    }
}

//! Elaboration of composed raw filters into `rfjson-rtl` netlists.
//!
//! This is the "synthesis" step of the paper: every [`Expr`] becomes the
//! streaming circuit that would run on the FPGA — shared string-mask and
//! nesting-level logic (§III-C), per-primitive fire logic (§III-A/B),
//! per-node match latches and context flag registers, all clocked one byte
//! per cycle. The co-simulation tests hold these netlists bit-for-bit
//! equal to the software evaluator; `rfjson-techmap` turns them into the
//! LUT numbers of the evaluation tables.

use crate::expr::{Expr, StringSpec, StringTechnique, StructScope};
use crate::primitive::SubstringMatcher;
use rfjson_redfa::elaborate::elaborate_dfa;
use rfjson_redfa::range::is_number_byte;
use rfjson_redfa::{Dfa, NumberBounds, Regex};
use rfjson_rtl::components::{
    and_reduce, bits_for, byte_in_set, byte_shift_buffer, dec_word_saturate, eq_const, eq_word,
    ge_const, inc_word, le_word, mux_word, or_reduce, ByteSet,
};
use rfjson_rtl::netlist::{Netlist, NodeId};

/// Width of the nesting-depth counter. 31 levels is far beyond any record
/// in the evaluated workloads; deeper records would saturate (documented
/// deviation from the unbounded software counter).
pub const DEPTH_BITS: usize = 5;

/// The shared per-byte stream signals every filter node consumes
/// (the hardware form of [`crate::evaluator::ByteInfo`]).
#[derive(Debug, Clone)]
pub struct StreamSignals {
    /// Input byte word (8 bits).
    pub byte: Vec<NodeId>,
    /// Depth the current byte belongs to (DEPTH_BITS wide).
    pub depth: Vec<NodeId>,
    /// Unmasked `}` / `]`.
    pub is_close: NodeId,
    /// Unmasked `,`.
    pub is_comma: NodeId,
    /// Record separator (`\n`) — the global synchronous reset.
    pub record_reset: NodeId,
}

/// Builds the shared structure block (string mask + depth counter +
/// record-boundary detection) on top of a byte input word.
pub fn build_stream_logic(n: &mut Netlist, byte: &[NodeId]) -> StreamSignals {
    debug_assert_eq!(byte.len(), 8);
    let is_quote = eq_const(n, byte, u64::from(b'"'));
    let is_backslash = eq_const(n, byte, u64::from(b'\\'));
    let record_reset = eq_const(n, byte, u64::from(b'\n'));

    // String mask: two state bits (§III-C).
    let in_string = n.dff_placeholder(false);
    let escaped = n.dff_placeholder(false);
    let not_escaped = n.not(escaped);
    let live_quote = n.and_gate(not_escaped, is_quote); // unescaped quote
    let live_backslash = n.and_gate(not_escaped, is_backslash);
    // escaped' = in_string & !escaped & '\'
    let esc_set = n.and_gate(in_string, live_backslash);
    let esc_next = gated_reset(n, esc_set, record_reset);
    n.connect_dff(escaped, esc_next);
    // in_string' = in_string ? !(unescaped quote) : (byte == '"')
    let leave = n.and_gate(in_string, live_quote);
    let not_leave = n.not(leave);
    let stay = n.and_gate(in_string, not_leave);
    let not_in = n.not(in_string);
    let enter = n.and_gate(not_in, is_quote);
    let in_next_raw = n.or_gate(stay, enter);
    let in_next = gated_reset(n, in_next_raw, record_reset);
    n.connect_dff(in_string, in_next);
    let masked = n.or_gate(in_string, is_quote);
    let unmasked = n.not(masked);

    // Bracket / comma classification.
    let open_set = ByteSet::from_bytes(b"{[");
    let close_set = ByteSet::from_bytes(b"}]");
    let open_raw = byte_in_set(n, byte, &open_set);
    let close_raw = byte_in_set(n, byte, &close_set);
    let comma_raw = eq_const(n, byte, u64::from(b','));
    let is_open = n.and_gate(open_raw, unmasked);
    let is_close = n.and_gate(close_raw, unmasked);
    let is_comma = n.and_gate(comma_raw, unmasked);

    // Depth counter; the reported depth includes the effect of an opening
    // bracket and still includes a closing bracket's level.
    let depth_reg: Vec<NodeId> = (0..DEPTH_BITS).map(|_| n.dff_placeholder(false)).collect();
    let inc = inc_word(n, &depth_reg);
    let dec = dec_word_saturate(n, &depth_reg);
    let byte_depth = mux_word(n, is_open, &inc, &depth_reg);
    let after_close = mux_word(n, is_close, &dec, &byte_depth);
    for (i, &ff) in depth_reg.iter().enumerate() {
        let held = after_close[i];
        let next = gated_reset(n, held, record_reset);
        n.connect_dff(ff, next);
    }

    StreamSignals {
        byte: byte.to_vec(),
        depth: byte_depth,
        is_close,
        is_comma,
        record_reset,
    }
}

/// Produces stream signals as primary inputs instead of logic — used by
/// the additive cost model so per-attribute options can be costed without
/// re-counting the shared structure block.
pub fn stream_signals_as_inputs(n: &mut Netlist) -> StreamSignals {
    let byte = n.input_word("byte", 8);
    let depth = n.input_word("depth", DEPTH_BITS);
    StreamSignals {
        byte,
        depth,
        is_close: n.input("is_close"),
        is_comma: n.input("is_comma"),
        record_reset: n.input("record_reset"),
    }
}

/// `reset ? 0 : v`
fn gated_reset(n: &mut Netlist, v: NodeId, reset: NodeId) -> NodeId {
    let nr = n.not(reset);
    n.and_gate(v, nr)
}

/// A deferred match-latch: the flip-flop exists, the latched (`ff | set`)
/// signal exists, but the clear condition is accumulated while unwinding
/// the expression tree (each enclosing context ORs in its instance-end).
#[derive(Debug, Clone)]
struct LatchReq {
    ff: NodeId,
    latched: NodeId,
    clear: NodeId,
}

/// Elaboration result of one expression node.
struct NodeOut {
    /// Satisfaction including this cycle's events (`ff | set` shape).
    latched: NodeId,
    /// Satisfaction from registers only (previous cycles) — the
    /// `pending_before` view a context needs.
    before: NodeId,
    /// Latches awaiting their clear wiring.
    pending: Vec<LatchReq>,
}

/// Elaborates `expr` against `sig`, returning the record-accept signal
/// (latched, cleared at record boundaries).
pub fn elaborate_filter_with(n: &mut Netlist, expr: &Expr, sig: &StreamSignals) -> NodeId {
    let out = build_node(n, expr, sig);
    for req in out.pending {
        let clear = n.or_gate(req.clear, sig.record_reset);
        let next = gated_reset(n, req.latched, clear);
        n.connect_dff(req.ff, next);
    }
    out.latched
}

/// Standalone elaboration: a netlist with input `byte[0..8]` and output
/// `match` (the record-accept signal; sample it at each `\n` cycle).
///
/// # Example
///
/// ```
/// use rfjson_core::{elaborate::elaborate_filter, Expr};
/// use rfjson_techmap::map_netlist;
///
/// let expr = Expr::substring(b"dust", 1)?;
/// let netlist = elaborate_filter(&expr, "s1_dust");
/// let report = map_netlist(&netlist, 6);
/// assert!(report.luts > 0 && report.luts < 60);
/// # Ok::<(), rfjson_core::expr::ExprError>(())
/// ```
pub fn elaborate_filter(expr: &Expr, name: &str) -> Netlist {
    let mut n = Netlist::new(name);
    let byte = n.input_word("byte", 8);
    let sig = build_stream_logic(&mut n, &byte);
    let accept = elaborate_filter_with(&mut n, expr, &sig);
    n.output("match", accept);
    assert_netlist_sane(&n, expr);
    n
}

/// Static self-verification of a freshly elaborated netlist: no dangling
/// flip-flop data inputs, no combinational cycles. The full diagnostic
/// pass (multi-driver ports, dead nets, fanout statistics) lives in
/// `rfjson-verify`; this debug-only gate catches elaboration bugs at the
/// point of creation.
fn assert_netlist_sane(n: &Netlist, expr: &Expr) {
    let _ = (n, expr);
    #[cfg(debug_assertions)]
    {
        debug_assert!(
            n.check_connected().is_ok(),
            "elaboration of `{expr}` left an unconnected flip-flop"
        );
        debug_assert!(
            n.comb_topo_order().is_ok(),
            "elaboration of `{expr}` created a combinational cycle"
        );
    }
}

/// Elaborates only the option-specific logic, taking structure signals as
/// inputs (for the additive cost model).
pub fn elaborate_option(expr: &Expr, name: &str) -> Netlist {
    let mut n = Netlist::new(name);
    let sig = stream_signals_as_inputs(&mut n);
    let accept = elaborate_filter_with(&mut n, expr, &sig);
    n.output("match", accept);
    assert_netlist_sane(&n, expr);
    n
}

fn build_node(n: &mut Netlist, expr: &Expr, sig: &StreamSignals) -> NodeOut {
    match expr {
        Expr::Str(spec) => {
            let fire = build_string_fire(n, spec, sig);
            latch_prim(n, fire)
        }
        Expr::Num(bounds) => {
            let fire = build_number_fire(n, bounds, sig);
            latch_prim(n, fire)
        }
        Expr::And(children) => {
            let outs: Vec<NodeOut> = children.iter().map(|c| build_node(n, c, sig)).collect();
            combine(n, outs, and_reduce)
        }
        Expr::Or(children) => {
            let outs: Vec<NodeOut> = children.iter().map(|c| build_node(n, c, sig)).collect();
            combine(n, outs, or_reduce)
        }
        Expr::Ctx(children, scope) => build_ctx(n, children, *scope, sig),
    }
}

fn latch_prim(n: &mut Netlist, fire: NodeId) -> NodeOut {
    let ff = n.dff_placeholder(false);
    let latched = n.or_gate(ff, fire);
    NodeOut {
        latched,
        before: ff,
        pending: vec![LatchReq {
            ff,
            latched,
            clear: n.constant(false),
        }],
    }
}

fn combine(
    n: &mut Netlist,
    outs: Vec<NodeOut>,
    reduce: fn(&mut Netlist, &[NodeId]) -> NodeId,
) -> NodeOut {
    let latched_sigs: Vec<NodeId> = outs.iter().map(|o| o.latched).collect();
    let before_sigs: Vec<NodeId> = outs.iter().map(|o| o.before).collect();
    let latched = reduce(n, &latched_sigs);
    let before = reduce(n, &before_sigs);
    let pending = outs.into_iter().flat_map(|o| o.pending).collect();
    NodeOut {
        latched,
        before,
        pending,
    }
}

fn build_ctx(
    n: &mut Netlist,
    children: &[Expr],
    scope: StructScope,
    sig: &StreamSignals,
) -> NodeOut {
    let outs: Vec<NodeOut> = children.iter().map(|c| build_node(n, c, sig)).collect();
    let latched_sigs: Vec<NodeId> = outs.iter().map(|o| o.latched).collect();
    let before_sigs: Vec<NodeId> = outs.iter().map(|o| o.before).collect();
    let any_latched = or_reduce(n, &latched_sigs);
    let all_latched = and_reduce(n, &latched_sigs);
    let pending_before = or_reduce(n, &before_sigs);

    // Instance level register: loaded at the first fire of a fresh
    // instance.
    let fl_reg: Vec<NodeId> = (0..DEPTH_BITS).map(|_| n.dff_placeholder(false)).collect();
    let not_pending = n.not(pending_before);
    let load = n.and_gate(not_pending, any_latched);
    let fl_eff = mux_word(n, load, &sig.depth, &fl_reg);
    for (i, &ff) in fl_reg.iter().enumerate() {
        let next = gated_reset(n, fl_eff[i], sig.record_reset);
        n.connect_dff(ff, next);
    }

    // Instance end: closing bracket at (or below) the instance level, or —
    // member scope — an unmasked comma exactly on the instance level.
    let depth_le = le_word(n, &sig.depth, &fl_eff);
    let close_end = n.and_gate(sig.is_close, depth_le);
    let end_raw = match scope {
        StructScope::Object => close_end,
        StructScope::Member => {
            let depth_eq = eq_word(n, &sig.depth, &fl_eff);
            let comma_end = n.and_gate(sig.is_comma, depth_eq);
            n.or_gate(close_end, comma_end)
        }
    };
    let end = n.and_gate(any_latched, end_raw);

    // Own fired latch (persists across instances, cleared by the parent
    // domain / record reset).
    let ff = n.dff_placeholder(false);
    let latched = n.or_gate(ff, all_latched);

    // Children latches additionally clear at this instance end.
    let mut pending: Vec<LatchReq> = Vec::new();
    for o in outs {
        for mut req in o.pending {
            req.clear = n.or_gate(req.clear, end);
            pending.push(req);
        }
    }
    pending.push(LatchReq {
        ff,
        latched,
        clear: n.constant(false),
    });

    NodeOut {
        latched,
        before: ff,
        pending,
    }
}

fn build_string_fire(n: &mut Netlist, spec: &StringSpec, sig: &StreamSignals) -> NodeId {
    match spec.technique {
        StringTechnique::Dfa => {
            let re = Regex::concat([
                Regex::Class(ByteSet::full()).star(),
                Regex::literal(&spec.needle),
            ]);
            let dfa = Dfa::from_regex(&re).minimized();
            let advance = n.constant(true);
            let ports = elaborate_dfa(n, &dfa, &sig.byte, advance, sig.record_reset);
            ports.accept_next
        }
        StringTechnique::Window => build_window_fire(n, &spec.needle, sig),
        StringTechnique::Substring(b) => build_substring_fire(n, spec, b, sig),
    }
}

/// The Fig. 1 architecture: B−1 byte registers + current byte, compared
/// against every distinct block, OR-reduced into a saturating counter.
fn build_substring_fire(
    n: &mut Netlist,
    spec: &StringSpec,
    b: usize,
    sig: &StreamSignals,
) -> NodeId {
    let matcher = SubstringMatcher::new(&spec.needle, b).expect("expression was validated before");
    let window_match = if b == 1 {
        // B = 1: the whole comparator bank is one byte-set membership —
        // the "entire logic combined in one LUT" effect of §III-A.
        let set = ByteSet::from_bytes(
            &matcher
                .blocks()
                .iter()
                .map(|blk| blk[0])
                .collect::<Vec<u8>>(),
        );
        byte_in_set(n, &sig.byte, &set)
    } else {
        let window = window_bytes(n, &sig.byte, b);
        let hits: Vec<NodeId> = matcher
            .blocks()
            .iter()
            .map(|blk| {
                // window[0] is the oldest byte: blk[0] matches window[0].
                let byte_eqs: Vec<NodeId> = blk
                    .iter()
                    .zip(&window)
                    .map(|(&c, w)| eq_const(n, w, u64::from(c)))
                    .collect();
                and_reduce(n, &byte_eqs)
            })
            .collect();
        or_reduce(n, &hits)
    };

    let target = matcher.target();
    if target == 1 {
        return window_match;
    }
    // Counter of consecutive matches (value before this byte).
    let width = bits_for(u64::from(target));
    let count: Vec<NodeId> = (0..width).map(|_| n.dff_placeholder(false)).collect();
    let incd = inc_word(n, &count);
    let at_max = and_reduce(n, &count);
    let inc_sat = mux_word(n, at_max, &count, &incd);
    let zeros = vec![n.constant(false); width];
    let advanced = mux_word(n, window_match, &inc_sat, &zeros);
    let miss_or_reset = {
        let no_match = n.not(window_match);
        n.or_gate(no_match, sig.record_reset)
    };
    for (i, &ff) in count.iter().enumerate() {
        let next = gated_reset(n, advanced[i], miss_or_reset);
        n.connect_dff(ff, next);
    }
    // fire = match this cycle && previous run length ≥ target − 1
    let long_run = ge_const(n, &count, u64::from(target) - 1);
    n.and_gate(window_match, long_run)
}

fn build_window_fire(n: &mut Netlist, needle: &[u8], sig: &StreamSignals) -> NodeId {
    let window = window_bytes(n, &sig.byte, needle.len());
    let eqs: Vec<NodeId> = needle
        .iter()
        .zip(&window)
        .map(|(&c, w)| eq_const(n, w, u64::from(c)))
        .collect();
    and_reduce(n, &eqs)
}

/// The last `len` bytes, oldest first (index 0 = len−1 cycles ago,
/// index len−1 = the current byte).
fn window_bytes(n: &mut Netlist, byte: &[NodeId], len: usize) -> Vec<Vec<NodeId>> {
    let mut window: Vec<Vec<NodeId>> = byte_shift_buffer(n, byte, len.saturating_sub(1));
    window.reverse(); // stage len-2 is oldest
    window.push(byte.to_vec());
    window
}

fn build_number_fire(n: &mut Netlist, bounds: &NumberBounds, sig: &StreamSignals) -> NodeId {
    let dfa = bounds.to_dfa();
    let num_set = ByteSet::from_bytes(
        &(0u16..256)
            .map(|b| b as u8)
            .filter(|&b| is_number_byte(b))
            .collect::<Vec<u8>>(),
    );
    let is_num = byte_in_set(n, &sig.byte, &num_set);
    let boundary = n.not(is_num);
    let dfa_reset = n.or_gate(boundary, sig.record_reset);
    let ports = elaborate_dfa(n, &dfa, &sig.byte, is_num, dfa_reset);
    // in-token register
    let in_token = n.dff_placeholder(false);
    let in_next = gated_reset(n, is_num, sig.record_reset);
    n.connect_dff(in_token, in_next);
    // fire at the boundary byte if the token was accepted
    let was = n.and_gate(in_token, boundary);
    n.and_gate(was, ports.accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FilterBackend;
    use crate::evaluator::CompiledFilter;
    use rfjson_rtl::{BitVec, Simulator};

    /// Drives a standalone filter netlist over a record (plus newline) and
    /// returns the accept signal observed at the newline cycle.
    fn hw_accepts(netlist: &Netlist, record: &[u8]) -> bool {
        let mut sim = Simulator::new(netlist).unwrap();
        let mut accept = false;
        for &b in record.iter().chain(b"\n") {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.settle();
            accept = sim.output("match").unwrap();
            sim.clock();
        }
        accept
    }

    fn assert_cosim(expr: &Expr, records: &[&[u8]]) {
        let netlist = elaborate_filter(expr, "dut");
        let mut sw = CompiledFilter::compile(expr);
        for &record in records {
            assert_eq!(
                hw_accepts(&netlist, record),
                sw.accepts_record(record),
                "expr `{expr}` record {:?}",
                String::from_utf8_lossy(record)
            );
        }
    }

    const LISTING1: &[u8] = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"}],"bt":1422748800000}"#;

    #[test]
    fn cosim_substring() {
        let expr = Expr::substring(b"temperature", 1).unwrap();
        assert_cosim(
            &expr,
            &[
                LISTING1,
                br#"{"n":"humidity"}"#,
                br#"{"n":"temperatur"}"#,
                br#"{"x":"aretemperature"}"#,
            ],
        );
    }

    #[test]
    fn cosim_substring_b2_and_window() {
        for expr in [
            Expr::substring(b"tolls_amount", 2).unwrap(),
            Expr::window(b"tolls_amount").unwrap(),
        ] {
            assert_cosim(
                &expr,
                &[
                    br#"{"tolls_amount":5.33}"#,
                    br#"{"total_amount":5.33}"#,
                    br#"{"fare":1}"#,
                ],
            );
        }
    }

    #[test]
    fn cosim_dfa_string() {
        let expr = Expr::dfa_string(b"dust").unwrap();
        assert_cosim(
            &expr,
            &[
                br#"{"n":"dust"}"#,
                br#"{"n":"dusk"}"#,
                br#"{"n":"sawdust","v":1}"#,
            ],
        );
    }

    #[test]
    fn cosim_number_range() {
        let expr = Expr::int_range(12, 49);
        assert_cosim(
            &expr,
            &[
                br#"{"v":"20"}"#,
                br#"{"v":"350"}"#,
                br#"{"v":13}"#,
                br#"{"bt":1422748800000}"#,
                br#"{"v":"2.1e3"}"#,
            ],
        );
    }

    #[test]
    fn cosim_structural_context() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        assert_cosim(
            &expr,
            &[
                LISTING1,
                br#"{"e":[{"v":"21.0","u":"far","n":"temperature"}],"bt":0}"#,
                br#"{"e":[{"v":"99","u":"far","n":"temperature"},{"v":"3","u":"x","n":"other"}],"bt":0}"#,
            ],
        );
    }

    #[test]
    fn cosim_member_scope() {
        let expr = Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        );
        assert_cosim(
            &expr,
            &[
                br#"{"fare_amount":11.50,"tolls_amount":0.00}"#,
                br#"{"fare_amount":11.50,"tolls_amount":5.33}"#,
                br#"{"tolls_amount":19.00,"tip_amount":3.00}"#,
            ],
        );
    }

    #[test]
    fn cosim_full_pareto_config() {
        // A Table V shape: two structural pairs AND a bare value filter.
        let expr = Expr::and([
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::float_range("20.3", "69.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::int_range(12, 49),
        ]);
        assert_cosim(
            &expr,
            &[
                LISTING1,
                br#"{"e":[{"v":"21.0","u":"far","n":"temperature"},{"v":"45.1","u":"per","n":"humidity"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1}"#,
            ],
        );
    }

    #[test]
    fn stream_logic_resets_at_newline() {
        // Two records back to back through one netlist instance.
        let expr = Expr::substring(b"ab", 1).unwrap();
        let netlist = elaborate_filter(&expr, "dut");
        let mut sim = Simulator::new(&netlist).unwrap();
        let mut accepts = Vec::new();
        for &b in b"{\"k\":\"a\"}\n{\"k\":\"b\"}\n" {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.settle();
            if b == b'\n' {
                accepts.push(sim.output("match").unwrap());
            }
            sim.clock();
        }
        // 'a' then 'b' span two records: with per-record reset neither
        // fires (needs 2 consecutive letters in ONE record).
        assert_eq!(accepts, vec![false, false]);
    }

    #[test]
    fn option_netlist_has_structure_inputs() {
        let expr = Expr::context([Expr::substring(b"x", 1).unwrap(), Expr::int_range(0, 5)]);
        let n = elaborate_option(&expr, "opt");
        assert!(n.find_input("depth[0]").is_some());
        assert!(n.find_input("is_close").is_some());
        // and the full version computes them internally:
        let full = elaborate_filter(&expr, "full");
        assert!(full.find_input("depth[0]").is_none());
    }
}

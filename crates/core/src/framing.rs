//! Shared NDJSON framing for byte-serial filter execution.
//!
//! Both execution paths ([`CompiledFilter`](crate::evaluator::CompiledFilter)
//! and [`Engine`](crate::engine::Engine)) must frame a newline-delimited
//! stream identically — CR handling, blank lines, trailing partial record —
//! or their decision vectors diverge. The rules live exactly once, here,
//! generic over the per-byte interface.

/// A byte-serial filter: one latched accept signal per byte, plus a
/// record-boundary reset.
pub(crate) trait ByteSerial {
    fn on_byte(&mut self, byte: u8) -> bool;
    fn reset(&mut self);
}

/// Filters a newline-delimited stream, appending one accept decision per
/// record to `out` (the match-signal DMA write-back of the paper's
/// system).
///
/// `\n` separates records; a record that is empty after stripping `\r`
/// (CR before LF, or a stray blank CRLF line — framing, not record
/// content) produces no decision; a trailing record without a separator
/// is closed with the `\n` the hardware would see.
pub(crate) fn filter_stream_into<F: ByteSerial>(f: &mut F, stream: &[u8], out: &mut Vec<bool>) {
    f.reset();
    let mut saw_bytes = false;
    let mut accept = false;
    for &b in stream {
        accept = f.on_byte(b);
        if b == b'\n' {
            if saw_bytes {
                out.push(accept);
            }
            f.reset();
            saw_bytes = false;
            accept = false;
        } else if b != b'\r' {
            saw_bytes = true;
        }
    }
    if saw_bytes {
        accept = f.on_byte(b'\n') || accept;
        out.push(accept);
        f.reset();
    }
}

//! RTL co-simulation as a filter backend: the elaborated gate-level
//! netlist, clocked one byte per cycle, behind the same
//! [`FilterBackend`] interface as the software paths.
//!
//! [`CosimBackend`] is what would run on the FPGA, executed in the
//! cycle-accurate simulator (`rfjson-rtl`): [`elaborate_filter`] builds
//! the netlist (shared string-mask/depth structure block, per-primitive
//! fire logic, match latches), and each [`on_byte`] drives the byte
//! port, settles combinational logic, samples the `match` output, and
//! clocks the flip-flops. It is orders of magnitude slower than the
//! software backends — its value is *fidelity*: driving it through the
//! common interface lets the whole test/bench surface cross-check
//! software decisions against the hardware bit-for-bit without ad-hoc
//! testbench code.
//!
//! [`on_byte`]: FilterBackend::on_byte
//!
//! # Example
//!
//! ```
//! use rfjson_core::backend::FilterBackend;
//! use rfjson_core::cosim::CosimBackend;
//! use rfjson_core::Expr;
//!
//! let expr = Expr::substring(b"dust", 1)?;
//! let mut hw = CosimBackend::compile(&expr);
//! assert!(hw.accepts_record(br#"{"n":"dust","v":"305"}"#));
//! assert!(!hw.accepts_record(br#"{"n":"light","v":"713"}"#));
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```

use crate::backend::{CompileError, FilterBackend};
use crate::elaborate::elaborate_filter;
use crate::expr::Expr;
use rfjson_rtl::{find_byte_port, NodeId, OwnedSimulator};

/// A composed raw filter running as its elaborated netlist in the
/// cycle-accurate RTL simulator.
#[derive(Debug, Clone)]
pub struct CosimBackend {
    expr: Expr,
    sim: OwnedSimulator,
    /// Cached node ids of the `byte[0..8]` input port.
    byte_bits: [NodeId; 8],
    /// Cached node id of the `match` output.
    match_id: NodeId,
}

impl CosimBackend {
    /// Gate count of the underlying netlist (diagnostic).
    pub fn num_gates(&self) -> usize {
        self.sim.netlist().num_gates()
    }

    /// Flip-flop count of the underlying netlist (diagnostic).
    pub fn num_dffs(&self) -> usize {
        self.sim.netlist().num_dffs()
    }
}

impl FilterBackend for CosimBackend {
    fn compile(expr: &Expr) -> Self {
        Self::try_compile(expr).expect("expression must be well-formed")
    }

    fn try_compile(expr: &Expr) -> Result<Self, CompileError> {
        expr.validate()?;
        // Elaboration and simulator setup have their own failure modes
        // (malformed ports, ill-formed netlists); surface them as
        // structured errors rather than aborting the lane.
        let netlist = elaborate_filter(expr, "cosim");
        let backend_err = |reason: String| CompileError::Backend {
            backend: "cosim",
            reason,
        };
        let byte_bits = find_byte_port(&netlist, "byte").map_err(|e| backend_err(e.to_string()))?;
        let match_id = netlist
            .find_output("match")
            .ok_or_else(|| backend_err("elaborated netlist has no `match` output".into()))?;
        let sim = OwnedSimulator::new(netlist).map_err(|e| backend_err(e.to_string()))?;
        Ok(CosimBackend {
            expr: expr.clone(),
            sim,
            byte_bits,
            match_id,
        })
    }

    fn name(&self) -> &'static str {
        "cosim"
    }

    fn expr(&self) -> &Expr {
        &self.expr
    }

    #[inline]
    fn on_byte(&mut self, byte: u8) -> bool {
        for (i, &bit) in self.byte_bits.iter().enumerate() {
            self.sim.set_input_id(bit, (byte >> i) & 1 == 1);
        }
        // Sample after settling, before the clock edge — the paper's
        // per-cycle match signal. `latch` (not `clock`) advances the
        // flip-flops without re-settling the already-settled logic.
        self.sim.settle();
        let m = self.sim.value(self.match_id);
        self.sim.latch();
        m
    }

    fn reset(&mut self) {
        self.sim.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CompiledFilter;
    use crate::expr::StructScope;

    #[test]
    fn cosim_backend_matches_model_on_structural_filter() {
        let expr = Expr::context_scoped(
            StructScope::Member,
            [Expr::substring(b"x", 1).unwrap(), Expr::int_range(1, 5)],
        );
        let mut hw = CosimBackend::compile(&expr);
        let mut sw = CompiledFilter::compile(&expr);
        let stream: &[u8] = b"{\"x\":3,\"y\":99}\n{\"x\":9,\"y\":3}\n{\"x\":4}";
        assert_eq!(hw.filter_stream(stream), sw.filter_stream(stream));
        assert_eq!(hw.filter_stream(stream), vec![true, false, true]);
    }

    #[test]
    fn cosim_backend_exposes_netlist_stats() {
        let hw = CosimBackend::compile(&Expr::substring(b"n", 1).unwrap());
        assert!(hw.num_gates() > 0);
        assert!(hw.num_dffs() > 0);
    }
}

//! Cached handles to the global telemetry counters the engines flush
//! into.
//!
//! The hot paths never touch the registry: [`Engine`](crate::Engine)
//! and [`MultiEngine`](crate::multi::MultiEngine) accumulate per-stream
//! stats in plain `u64` fields and flush them here once per stream
//! (`flush_telemetry`, called by the stream drivers). Each handle
//! struct is resolved once per process; after that a flush is a handful
//! of relaxed atomic adds — and nothing at all under `telemetry-off`.

use rfjson_telemetry::Counter;
use std::sync::OnceLock;

/// `engine.*` counter handles (single-query [`Engine`](crate::Engine)).
pub(crate) struct EngineMetrics {
    /// `engine.records`: records entering `on_block` from a fresh reset.
    pub records: &'static Counter,
    /// `engine.bytes.block`: bytes scanned by the SWAR word loop.
    pub bytes_block: &'static Counter,
    /// `engine.bytes.byte_serial`: bytes through the serial `on_byte`
    /// path (fallback programs, sub-word tails, separators).
    pub bytes_byte_serial: &'static Counter,
    /// `engine.bytes.prefilter_skipped`: bytes never scanned because the
    /// literal prefilter rejected the whole record.
    pub bytes_prefilter_skipped: &'static Counter,
    /// `engine.prefilter.checked`: records the live prefilter examined.
    pub prefilter_checked: &'static Counter,
    /// `engine.prefilter.rejected`: records it proved `NoMatch`.
    pub prefilter_rejected: &'static Counter,
    /// `engine.prefilter.disabled`: probation-end self-disable events.
    pub prefilter_disabled: &'static Counter,
}

pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        records: rfjson_telemetry::counter("engine.records"),
        bytes_block: rfjson_telemetry::counter("engine.bytes.block"),
        bytes_byte_serial: rfjson_telemetry::counter("engine.bytes.byte_serial"),
        bytes_prefilter_skipped: rfjson_telemetry::counter("engine.bytes.prefilter_skipped"),
        prefilter_checked: rfjson_telemetry::counter("engine.prefilter.checked"),
        prefilter_rejected: rfjson_telemetry::counter("engine.prefilter.rejected"),
        prefilter_disabled: rfjson_telemetry::counter("engine.prefilter.disabled"),
    })
}

/// `multi.*` counter handles (fused [`MultiEngine`](crate::multi::MultiEngine)).
pub(crate) struct MultiMetrics {
    /// `multi.records`: records scored by a fused batch scan.
    pub records: &'static Counter,
    /// `multi.bytes.block`: bytes scanned by the fused SWAR word loop.
    pub bytes_block: &'static Counter,
    /// `multi.bytes.byte_serial`: bytes through the fused serial path.
    pub bytes_byte_serial: &'static Counter,
    /// `multi.gate_skips.sub1`: words where the pooled single-byte
    /// substring bank was skipped by the 256-bit any-unit gate.
    pub gate_skips_sub1: &'static Counter,
    /// `multi.gate_skips.subp`: bytes where the pooled packed-substring
    /// scan was skipped by its any-unit gate.
    pub gate_skips_subp: &'static Counter,
}

pub(crate) fn multi_metrics() -> &'static MultiMetrics {
    static METRICS: OnceLock<MultiMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MultiMetrics {
        records: rfjson_telemetry::counter("multi.records"),
        bytes_block: rfjson_telemetry::counter("multi.bytes.block"),
        bytes_byte_serial: rfjson_telemetry::counter("multi.bytes.byte_serial"),
        gate_skips_sub1: rfjson_telemetry::counter("multi.gate_skips.sub1"),
        gate_skips_subp: rfjson_telemetry::counter("multi.gate_skips.subp"),
    })
}

//! # rfjson-core — raw filtering of JSON data, the FPGA way
//!
//! This crate is the primary contribution of *"Raw Filtering of JSON Data
//! on FPGAs"* (Hahn, Becher, Wildermann, Teich — DATE 2022), reproduced in
//! Rust: **raw filters (RFs)** that scan a JSON byte stream one byte per
//! cycle *before* any parser runs, discarding most non-matching records
//! while guaranteeing **no false negatives**.
//!
//! ## The pieces
//!
//! * [`primitive`] — the paper's §III-A/§III-B filter primitives:
//!   * [`primitive::DfaStringMatcher`] — technique (i), an N+1-state DFA;
//!   * [`primitive::WindowMatcher`] — technique (ii), an N-byte compare;
//!   * [`primitive::SubstringMatcher`] — technique (iii), the approximate
//!     B-byte-block matcher with OR-reduced comparators and a run counter;
//!   * [`primitive::NumberMatcher`] — the value/range filter evaluated at
//!     number-token boundaries.
//! * [`expr`] — composition (§III-C/D): conjunction, disjunction, and the
//!   structure-aware context `{RF1 & RF2}` that only combines results found
//!   in the same structural context.
//! * [`backend`] — the execution seam: the [`FilterBackend`] trait every
//!   execution path implements (compile from an expression, one byte per
//!   cycle, shared NDJSON stream framing).
//! * [`evaluator`] — the byte-serial software model, cycle-equivalent to
//!   the hardware.
//! * [`engine`] — the flattened table-driven batch execution engine:
//!   same semantics as [`evaluator`] (held equal by differential tests),
//!   several times faster; the path to use for bulk software filtering.
//! * [`multi`] — the fused multi-query engine: one shared scan answers a
//!   whole batch of queries through a deduplicated matcher-unit pool,
//!   behind the [`MultiBackend`](multi::MultiBackend) surface.
//! * [`cosim`] — the elaborated netlist running in the cycle-accurate
//!   RTL simulator, behind the same backend interface.
//! * [`elaborate`] — elaboration of any composed filter into an
//!   `rfjson-rtl` netlist (what would be synthesised), with
//!   `rfjson-techmap` providing the LUT costs the paper reports.
//! * [`query`], [`design`] — the §III-D design flow: extract primitives
//!   from a query, enumerate configurations, evaluate FPR vs. LUTs, and
//!   extract Pareto-optimal raw filters (Tables V–VII, Fig. 3).
//! * [`arch`] — the §IV-B system architecture model: parallel RF lanes fed
//!   by DMA at one byte per cycle per lane.
//!
//! ## Quickstart
//!
//! The paper's running example — Listing 2's query on Listing 1's record:
//!
//! ```
//! use rfjson_core::expr::Expr;
//! use rfjson_core::evaluator::CompiledFilter;
//! use rfjson_core::FilterBackend;
//!
//! // { s1("temperature") & v(0.7 <= f <= 35.1) }
//! let expr = Expr::context([
//!     Expr::substring(b"temperature", 1)?,
//!     Expr::float_range("0.7", "35.1")?,
//! ]);
//! let mut filter = CompiledFilter::compile(&expr);
//!
//! let listing1 = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},
//!                    {"v":"12","u":"per","n":"humidity"}],"bt":1422748800000}"#;
//! // 35.2 exceeds the range and "12" sits in a different measurement
//! // object: the structure-aware filter correctly rejects the record.
//! assert!(!filter.accepts_record(listing1));
//!
//! let matching = br#"{"e":[{"v":"21.0","u":"far","n":"temperature"}],"bt":0}"#;
//! assert!(filter.accepts_record(matching));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod backend;
pub mod cosim;
pub mod cost;
pub mod design;
pub mod elaborate;
pub mod engine;
pub mod eval;
pub mod evaluator;
pub mod expr;
mod metrics;
pub mod multi;
mod prefilter;
pub mod primitive;
pub mod query;

pub use backend::{CompileError, FilterBackend, IngestLimits, SkipReason, Verdict};
pub use cosim::CosimBackend;
pub use engine::{Engine, PrefilterStatus, ProgramView};
pub use evaluator::CompiledFilter;
pub use expr::{Expr, StructScope};
pub use multi::{BatchVerdicts, MultiBackend, MultiEngine, MultiLanes, ShareStats, UnitCounts};

/// Convenience prelude for downstream users.
pub mod prelude {
    pub use crate::arch::RawFilterSystem;
    pub use crate::backend::{CompileError, FilterBackend, IngestLimits, SkipReason, Verdict};
    pub use crate::cosim::CosimBackend;
    pub use crate::design::{explore, DesignPoint, ExploreOptions};
    pub use crate::elaborate::elaborate_filter;
    pub use crate::engine::Engine;
    pub use crate::eval::{measure, Measurement};
    pub use crate::evaluator::CompiledFilter;
    pub use crate::expr::{Expr, StructScope};
    pub use crate::multi::{BatchVerdicts, MultiBackend, MultiEngine, MultiLanes};
    pub use crate::query::query_to_exprs;
}

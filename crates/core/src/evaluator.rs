//! Byte-serial software model of a composed raw filter.
//!
//! [`CompiledFilter`] executes an [`Expr`] with exactly the hardware's
//! per-cycle semantics (the co-simulation tests in `tests/cosim.rs` hold
//! the two bit-for-bit equal):
//!
//! * primitives emit fire signals;
//! * every node latches its satisfaction until its clearing domain resets;
//! * a structural context tracks the nesting level of its first child fire
//!   and clears its childrens' latches when that instance ends (closing
//!   bracket, or — in [`StructScope::Member`] — an unmasked comma on the
//!   instance level);
//! * the record separator `\n` resets everything.

use crate::expr::{Expr, StringSpec, StringTechnique, StructScope};
use crate::primitive::{
    DfaStringMatcher, FireFilter, NumberMatcher, SubstringMatcher, WindowMatcher,
};
use rfjson_jsonstream::{ByteClass, StringMask, BYTE_CLASS};

/// Per-byte structural facts shared by all nodes of a filter (computed
/// once per cycle by the shared mask/nesting logic, as in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteInfo {
    /// The input byte.
    pub byte: u8,
    /// Nesting depth this byte belongs to (open-bracket bytes already
    /// count inside; close-bracket bytes still count inside).
    pub depth: u32,
    /// Unmasked `}` or `]`.
    pub is_close: bool,
    /// Unmasked `,`.
    pub is_comma: bool,
}

/// Shared streaming tracker producing [`ByteInfo`] (string-mask aware).
#[derive(Debug, Clone, Default)]
pub struct StreamTracker {
    mask: StringMask,
    depth: u32,
}

impl StreamTracker {
    /// Fresh tracker at depth 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one byte.
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> ByteInfo {
        let masked = self.mask.on_byte(byte);
        let mut depth = self.depth;
        let mut is_close = false;
        let mut is_comma = false;
        if !masked {
            match BYTE_CLASS[byte as usize] {
                ByteClass::Open => {
                    // Open-bracket bytes already count inside the new level.
                    self.depth += 1;
                    depth = self.depth;
                }
                ByteClass::Close => {
                    // Close-bracket bytes still count inside the old level.
                    is_close = true;
                    self.depth = depth.saturating_sub(1);
                }
                ByteClass::Comma => is_comma = true,
                _ => {}
            }
        }
        ByteInfo {
            byte,
            depth,
            is_close,
            is_comma,
        }
    }

    /// Record-boundary reset.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Snapshot of the structural state `(in_string, pending_escape,
    /// depth)` — the hand-off point for the engine's SWAR block path,
    /// which resolves whole words of the string mask at once and
    /// re-syncs the byte-serial tracker at word boundaries.
    pub(crate) fn state(&self) -> (bool, bool, u32) {
        (
            self.mask.in_string(),
            self.mask.pending_escape(),
            self.depth,
        )
    }

    /// Restores a snapshot taken (or advanced word-at-a-time) by the
    /// block path.
    pub(crate) fn restore(&mut self, in_string: bool, pending_escape: bool, depth: u32) {
        self.mask.restore(in_string, pending_escape);
        self.depth = depth;
    }
}

#[derive(Debug, Clone)]
enum Prim {
    Dfa(DfaStringMatcher),
    Window(WindowMatcher),
    Substr(SubstringMatcher),
    Num(NumberMatcher),
}

impl Prim {
    fn of_spec(spec: &StringSpec) -> Prim {
        match spec.technique {
            StringTechnique::Dfa => Prim::Dfa(DfaStringMatcher::new(&spec.needle)),
            StringTechnique::Window => Prim::Window(WindowMatcher::new(&spec.needle)),
            StringTechnique::Substring(b) => Prim::Substr(
                SubstringMatcher::new(&spec.needle, b)
                    .expect("expression was validated at compile time"),
            ),
        }
    }

    #[inline]
    fn on_byte(&mut self, b: u8) -> bool {
        match self {
            Prim::Dfa(m) => m.on_byte(b),
            Prim::Window(m) => m.on_byte(b),
            Prim::Substr(m) => m.on_byte(b),
            Prim::Num(m) => m.on_byte(b),
        }
    }

    fn reset(&mut self) {
        match self {
            Prim::Dfa(m) => m.reset(),
            Prim::Window(m) => m.reset(),
            Prim::Substr(m) => m.reset(),
            Prim::Num(m) => m.reset(),
        }
    }
}

#[derive(Debug, Clone)]
enum EvalNode {
    Prim {
        // Boxed: a Prim (matcher state) is ~450 bytes, far larger than the
        // other variants' Vec headers.
        prim: Box<Prim>,
        fired: bool,
    },
    And {
        children: Vec<EvalNode>,
        fired: bool,
    },
    Or {
        children: Vec<EvalNode>,
        fired: bool,
    },
    Ctx {
        children: Vec<EvalNode>,
        scope: StructScope,
        flag_level: u32,
        fired: bool,
    },
}

impl EvalNode {
    fn compile(expr: &Expr) -> EvalNode {
        match expr {
            Expr::Str(spec) => EvalNode::Prim {
                prim: Box::new(Prim::of_spec(spec)),
                fired: false,
            },
            Expr::Num(bounds) => EvalNode::Prim {
                prim: Box::new(Prim::Num(NumberMatcher::new(bounds.clone()))),
                fired: false,
            },
            Expr::And(cs) => EvalNode::And {
                children: cs.iter().map(EvalNode::compile).collect(),
                fired: false,
            },
            Expr::Or(cs) => EvalNode::Or {
                children: cs.iter().map(EvalNode::compile).collect(),
                fired: false,
            },
            Expr::Ctx(cs, scope) => EvalNode::Ctx {
                children: cs.iter().map(EvalNode::compile).collect(),
                scope: *scope,
                flag_level: 0,
                fired: false,
            },
        }
    }

    /// Latched satisfaction after this cycle.
    fn on_byte(&mut self, info: ByteInfo) -> bool {
        match self {
            EvalNode::Prim { prim, fired } => {
                *fired |= prim.on_byte(info.byte);
                *fired
            }
            EvalNode::And { children, fired } => {
                let mut all = true;
                for c in children.iter_mut() {
                    all &= c.on_byte(info);
                }
                *fired |= all;
                *fired
            }
            EvalNode::Or { children, fired } => {
                let mut any = false;
                for c in children.iter_mut() {
                    any |= c.on_byte(info);
                }
                *fired |= any;
                *fired
            }
            EvalNode::Ctx {
                children,
                scope,
                flag_level,
                fired,
            } => {
                let pending_before = children.iter().any(EvalNode::is_latched);
                let mut all = true;
                let mut any = false;
                for c in children.iter_mut() {
                    let l = c.on_byte(info);
                    all &= l;
                    any |= l;
                }
                // First fire of a fresh instance records the level.
                if !pending_before && any {
                    *flag_level = info.depth;
                }
                *fired |= all;
                // Instance end: clear pending child latches.
                if any {
                    let fl = *flag_level;
                    let end = (info.is_close && info.depth <= fl)
                        || (*scope == StructScope::Member && info.is_comma && info.depth == fl);
                    if end {
                        for c in children.iter_mut() {
                            c.clear_latches();
                        }
                    }
                }
                *fired
            }
        }
    }

    #[inline]
    fn is_latched(&self) -> bool {
        match self {
            EvalNode::Prim { fired, .. }
            | EvalNode::And { fired, .. }
            | EvalNode::Or { fired, .. }
            | EvalNode::Ctx { fired, .. } => *fired,
        }
    }

    /// Clears satisfaction latches (context instance end) without touching
    /// primitive streaming state (DFA states, buffers, counters keep
    /// running — exactly like the hardware registers).
    fn clear_latches(&mut self) {
        match self {
            EvalNode::Prim { fired, .. } => *fired = false,
            EvalNode::And { children, fired } | EvalNode::Or { children, fired } => {
                *fired = false;
                for c in children {
                    c.clear_latches();
                }
            }
            EvalNode::Ctx {
                children,
                fired,
                flag_level,
                ..
            } => {
                *fired = false;
                *flag_level = 0;
                for c in children {
                    c.clear_latches();
                }
            }
        }
    }

    /// Full record-boundary reset (latches + primitive state).
    fn reset(&mut self) {
        match self {
            EvalNode::Prim { prim, fired } => {
                prim.reset();
                *fired = false;
            }
            EvalNode::And { children, fired } | EvalNode::Or { children, fired } => {
                *fired = false;
                for c in children {
                    c.reset();
                }
            }
            EvalNode::Ctx {
                children,
                fired,
                flag_level,
                ..
            } => {
                *fired = false;
                *flag_level = 0;
                for c in children {
                    c.reset();
                }
            }
        }
    }
}

/// An executable raw filter compiled from an [`Expr`] — the
/// cosim-faithful [`FilterBackend`](crate::backend::FilterBackend)
/// (`name() == "model"`). Batch record/stream filtering comes from the
/// backend trait's provided methods.
///
/// # Example
///
/// ```
/// use rfjson_core::{CompiledFilter, Expr, FilterBackend};
///
/// let expr = Expr::and([
///     Expr::substring(b"humidity", 1)?,
///     Expr::int_range(10, 90),
/// ]);
/// let mut f = CompiledFilter::compile(&expr);
/// assert!(f.accepts_record(br#"{"n":"humidity","v":"55"}"#));
/// assert!(!f.accepts_record(br#"{"n":"humidity","v":"95"}"#));
/// # Ok::<(), rfjson_core::expr::ExprError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    root: EvalNode,
    tracker: StreamTracker,
    expr: Expr,
}

impl CompiledFilter {
    /// Compiles an expression into its executable form.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails [`Expr::validate`] — construct
    /// expressions through the smart constructors to avoid this.
    pub fn compile(expr: &Expr) -> CompiledFilter {
        expr.validate().expect("expression must be well-formed");
        CompiledFilter {
            root: EvalNode::compile(expr),
            tracker: StreamTracker::new(),
            expr: expr.clone(),
        }
    }

    /// The source expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Advances one cycle; returns the current (latched) record-accept
    /// signal.
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> bool {
        let info = self.tracker.on_byte(byte);
        self.root.on_byte(info)
    }

    /// Record-boundary reset.
    pub fn reset(&mut self) {
        self.root.reset();
        self.tracker.reset();
    }
}

impl crate::backend::FilterBackend for CompiledFilter {
    fn compile(expr: &Expr) -> Self {
        CompiledFilter::compile(expr)
    }

    fn name(&self) -> &'static str {
        "model"
    }

    fn expr(&self) -> &Expr {
        &self.expr
    }

    #[inline]
    fn on_byte(&mut self, byte: u8) -> bool {
        CompiledFilter::on_byte(self, byte)
    }

    fn reset(&mut self) {
        CompiledFilter::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FilterBackend;

    const LISTING1: &[u8] = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"},{"v":"713","u":"per","n":"light"},{"v":"305.01","u":"per","n":"dust"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1422748800000}"#;

    fn ctx_temp_filter() -> CompiledFilter {
        CompiledFilter::compile(&Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]))
    }

    #[test]
    fn naive_conjunction_false_positive_on_listing1() {
        // §I: the plain AND of s("temperature") and v(0.7..35.1) wrongly
        // accepts Listing 1 — "12" and "20" are in range even though the
        // temperature itself (35.2) is not.
        let mut f = CompiledFilter::compile(&Expr::and([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]));
        assert!(f.accepts_record(LISTING1), "the motivating false positive");
    }

    #[test]
    fn structural_context_rejects_listing1() {
        // §III-C: requiring both to fire in the same measurement object
        // eliminates the false positive.
        let mut f = ctx_temp_filter();
        assert!(!f.accepts_record(LISTING1));
    }

    #[test]
    fn structural_context_accepts_true_match() {
        let mut f = ctx_temp_filter();
        let rec = br#"{"e":[{"v":"21.4","u":"far","n":"temperature"},{"v":"99","u":"per","n":"humidity"}],"bt":1}"#;
        assert!(f.accepts_record(rec));
    }

    #[test]
    fn member_scope_key_value() {
        // Flat record: value fires only within the same member as the key.
        let e = Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        );
        let mut f = CompiledFilter::compile(&e);
        // tolls out of range, but fare in range: member scoping must reject.
        assert!(
            !f.accepts_record(br#"{"fare_amount":11.50,"tolls_amount":0.00,"total_amount":12.00}"#)
        );
        // tolls genuinely in range: accept.
        assert!(
            f.accepts_record(br#"{"fare_amount":11.50,"tolls_amount":5.33,"total_amount":17.33}"#)
        );
        // Object scope, by contrast, produces the false positive:
        let e2 = Expr::context_scoped(
            StructScope::Object,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        );
        let mut f2 = CompiledFilter::compile(&e2);
        assert!(
            f2.accepts_record(br#"{"fare_amount":11.50,"tolls_amount":0.00,"total_amount":12.00}"#)
        );
    }

    #[test]
    fn value_fire_at_member_terminating_comma_counts() {
        // The value token ends exactly at the comma that also ends the
        // member: the fire must be credited to the member *before* the
        // clear (set → evaluate → clear ordering).
        let e = Expr::context_scoped(
            StructScope::Member,
            [Expr::substring(b"x", 1).unwrap(), Expr::int_range(1, 5)],
        );
        let mut f = CompiledFilter::compile(&e);
        assert!(f.accepts_record(br#"{"x":3,"y":99}"#));
        assert!(!f.accepts_record(br#"{"x":9,"y":3}"#));
    }

    #[test]
    fn or_composition() {
        let e = Expr::or([
            Expr::substring(b"cat", 2).unwrap(),
            Expr::substring(b"dog", 2).unwrap(),
        ]);
        let mut f = CompiledFilter::compile(&e);
        assert!(f.accepts_record(br#"{"pet":"dog"}"#));
        assert!(f.accepts_record(br#"{"pet":"cat"}"#));
        assert!(!f.accepts_record(br#"{"pet":"cow"}"#));
    }

    #[test]
    fn nested_context_in_and() {
        // Pareto-table shape: { s & v } & v(...)
        let e = Expr::and([
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::float_range("20.3", "69.1").unwrap(),
            ]),
            Expr::int_range(12, 49),
        ]);
        let mut f = CompiledFilter::compile(&e);
        let rec = br#"{"e":[{"v":"45.0","u":"per","n":"humidity"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1}"#;
        assert!(f.accepts_record(rec));
        let rec2 = br#"{"e":[{"v":"75.0","u":"per","n":"humidity"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1}"#;
        assert!(!f.accepts_record(rec2), "humidity out of range");
    }

    #[test]
    fn filter_stream_per_record_decisions() {
        let mut f = CompiledFilter::compile(&Expr::int_range(1, 5));
        let stream = b"{\"a\":3}\n{\"a\":9}\n{\"a\":4}";
        assert_eq!(f.filter_stream(stream), vec![true, false, true]);
    }

    #[test]
    fn state_does_not_leak_across_records() {
        let mut f = CompiledFilter::compile(&Expr::and([
            Expr::substring(b"alpha", 2).unwrap(),
            Expr::substring(b"beta", 2).unwrap(),
        ]));
        // "alpha" in record 1, "beta" in record 2 — neither record has both.
        let stream = b"{\"k\":\"alpha\"}\n{\"k\":\"beta\"}\n";
        assert_eq!(f.filter_stream(stream), vec![false, false]);
    }

    #[test]
    fn tracker_depth_and_commas() {
        let mut t = StreamTracker::new();
        let infos: Vec<ByteInfo> = br#"{"a":[1,2],"b":3}"#.iter().map(|&b| t.on_byte(b)).collect();
        // The comma between 1 and 2 is at depth 2; the one after ']' is at
        // depth 1.
        let commas: Vec<u32> = infos
            .iter()
            .filter(|i| i.is_comma)
            .map(|i| i.depth)
            .collect();
        assert_eq!(commas, vec![2, 1]);
        let closes: Vec<u32> = infos
            .iter()
            .filter(|i| i.is_close)
            .map(|i| i.depth)
            .collect();
        assert_eq!(closes, vec![2, 1]);
    }
}

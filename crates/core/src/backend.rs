//! The execution seam: every way of running a raw filter implements
//! [`FilterBackend`].
//!
//! The paper's system is a many-lane filter: identical hardware filter
//! instances consume the raw byte stream and DMA back one match bit per
//! record. This crate has three software incarnations of that lane —
//! the cosim-faithful [`CompiledFilter`](crate::evaluator::CompiledFilter)
//! model, the table-driven [`Engine`](crate::engine::Engine), and the
//! gate-level [`CosimBackend`](crate::cosim::CosimBackend) — and the
//! sharded parallel runtime (`rfjson-runtime`) replicates any of them
//! across threads. They are interchangeable because they all speak this
//! one interface: compile from an [`Expr`], one latched accept signal
//! per byte, a record-boundary reset, and batch stream filtering whose
//! NDJSON framing rules come from **one** place
//! ([`rfjson_jsonstream::frame`], re-exported here).
//!
//! # Choosing a backend
//!
//! ```
//! use rfjson_core::backend::FilterBackend;
//! use rfjson_core::cosim::CosimBackend;
//! use rfjson_core::{CompiledFilter, Engine, Expr};
//!
//! let expr = Expr::and([Expr::substring(b"humidity", 1)?, Expr::int_range(10, 90)]);
//! let stream = b"{\"n\":\"humidity\",\"v\":\"55\"}\n{\"n\":\"humidity\",\"v\":\"95\"}\n";
//!
//! // Any backend, same decisions:
//! let mut backends: Vec<Box<dyn FilterBackend>> = vec![
//!     Box::new(CompiledFilter::compile(&expr)),
//!     Box::new(Engine::compile(&expr)),
//!     Box::new(CosimBackend::compile(&expr)),
//! ];
//! for b in &mut backends {
//!     assert_eq!(b.filter_stream(stream), vec![true, false], "{}", b.name());
//! }
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```

use crate::expr::Expr;
pub use rfjson_jsonstream::frame::{ChunkFramer, FrameAction};

/// A byte-serial raw-filter execution path.
///
/// Semantics (identical across implementations, held equal by the
/// differential and co-simulation test suites):
///
/// * [`on_byte`](FilterBackend::on_byte) consumes one byte and returns
///   the **latched** record-accept signal — once a record satisfies the
///   filter, the signal stays high until the next record boundary;
/// * [`reset`](FilterBackend::reset) returns the filter to its
///   record-boundary state (hardware: the synchronous `\n` reset);
/// * the provided batch methods frame newline-delimited streams with
///   the shared [`ChunkFramer`] rules, so every backend emits exactly
///   one decision per (non-blank) record — the match-signal DMA
///   write-back of the paper's system.
///
/// The trait is object-safe: heterogeneous backends can sit behind
/// `Box<dyn FilterBackend>` (only [`compile`](FilterBackend::compile)
/// is `Self: Sized`).
pub trait FilterBackend {
    /// Compiles an expression into this execution form.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails [`Expr::validate`] — construct
    /// expressions through the smart constructors to avoid this.
    fn compile(expr: &Expr) -> Self
    where
        Self: Sized;

    /// Short stable identifier for reports and benchmarks
    /// (`"model"`, `"engine"`, `"cosim"`, …).
    fn name(&self) -> &'static str;

    /// The source expression.
    fn expr(&self) -> &Expr;

    /// Advances one cycle; returns the current (latched) record-accept
    /// signal.
    fn on_byte(&mut self, byte: u8) -> bool;

    /// Record-boundary reset.
    fn reset(&mut self);

    /// Scans one record (appending the `\n` separator the hardware
    /// sees) and returns the accept decision. Resets on entry, so
    /// repeated calls are independent.
    fn accepts_record(&mut self, record: &[u8]) -> bool {
        self.reset();
        let mut accept = false;
        for &b in record {
            accept = self.on_byte(b);
        }
        self.on_byte(b'\n') || accept
    }

    /// Filters a newline-delimited stream, appending one accept
    /// decision per record to `out` (allocation-reusing form of
    /// [`filter_stream`](FilterBackend::filter_stream)).
    ///
    /// Framing — CR handling, blank lines, the trailing record without
    /// a separator — follows the workspace-wide rules of
    /// [`rfjson_jsonstream::frame`], identically for every backend.
    fn filter_stream_into(&mut self, stream: &[u8], out: &mut Vec<bool>) {
        self.reset();
        let mut framer = ChunkFramer::new();
        let mut accept = false;
        for &b in stream {
            accept = self.on_byte(b);
            match framer.on_byte(b) {
                FrameAction::Feed => {}
                FrameAction::EndRecord => {
                    out.push(accept);
                    self.reset();
                }
                FrameAction::EndBlank => self.reset(),
            }
        }
        if framer.finish() {
            // Close the trailing record with the `\n` the hardware
            // would see.
            accept = self.on_byte(b'\n') || accept;
            out.push(accept);
            self.reset();
        }
    }

    /// Filters a newline-delimited stream, returning the per-record
    /// accept decisions.
    fn filter_stream(&mut self, stream: &[u8]) -> Vec<bool> {
        let mut out = Vec::new();
        self.filter_stream_into(stream, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::CosimBackend;
    use crate::engine::Engine;
    use crate::evaluator::CompiledFilter;

    fn all_backends(expr: &Expr) -> Vec<Box<dyn FilterBackend>> {
        vec![
            Box::new(CompiledFilter::compile(expr)),
            Box::new(Engine::compile(expr)),
            Box::new(CosimBackend::compile(expr)),
        ]
    }

    #[test]
    fn backends_agree_behind_trait_objects() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let stream: &[u8] = b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\r\n\r\n{\"e\":[{\"v\":\"99.0\",\"n\":\"temperature\"}]}\n{\"e\":[{\"v\":\"1.0\",\"n\":\"temperature\"}]}";
        let mut expected: Option<Vec<bool>> = None;
        for b in &mut all_backends(&expr) {
            let got = b.filter_stream(stream);
            assert_eq!(got.len(), 3, "{}", b.name());
            match &expected {
                None => expected = Some(got),
                Some(e) => assert_eq!(&got, e, "{} diverges", b.name()),
            }
        }
    }

    #[test]
    fn backend_names_are_distinct() {
        let expr = Expr::int_range(1, 5);
        let names: Vec<&str> = all_backends(&expr).iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["model", "engine", "cosim"]);
        for b in &mut all_backends(&expr) {
            assert_eq!(b.expr().to_string(), expr.to_string());
        }
    }

    #[test]
    fn provided_accepts_record_is_reentrant() {
        let mut e: Box<dyn FilterBackend> = Box::new(Engine::compile(&Expr::int_range(1, 5)));
        assert!(e.accepts_record(br#"{"a":3}"#));
        assert!(!e.accepts_record(br#"{"a":9}"#));
        assert!(e.accepts_record(br#"{"a":3}"#), "reset on entry");
    }
}

//! The execution seam: every way of running a raw filter implements
//! [`FilterBackend`].
//!
//! The paper's system is a many-lane filter: identical hardware filter
//! instances consume the raw byte stream and DMA back one match bit per
//! record. This crate has three software incarnations of that lane —
//! the cosim-faithful [`CompiledFilter`](crate::evaluator::CompiledFilter)
//! model, the table-driven [`Engine`](crate::engine::Engine), and the
//! gate-level [`CosimBackend`](crate::cosim::CosimBackend) — and the
//! sharded parallel runtime (`rfjson-runtime`) replicates any of them
//! across threads. They are interchangeable because they all speak this
//! one interface: compile from an [`Expr`], one latched accept signal
//! per byte, a record-boundary reset, and batch stream filtering whose
//! NDJSON framing rules come from **one** place
//! ([`rfjson_jsonstream::frame`], re-exported here).
//!
//! # Choosing a backend
//!
//! ```
//! use rfjson_core::backend::FilterBackend;
//! use rfjson_core::cosim::CosimBackend;
//! use rfjson_core::{CompiledFilter, Engine, Expr};
//!
//! let expr = Expr::and([Expr::substring(b"humidity", 1)?, Expr::int_range(10, 90)]);
//! let stream = b"{\"n\":\"humidity\",\"v\":\"55\"}\n{\"n\":\"humidity\",\"v\":\"95\"}\n";
//!
//! // Any backend, same decisions:
//! let mut backends: Vec<Box<dyn FilterBackend>> = vec![
//!     Box::new(CompiledFilter::compile(&expr)),
//!     Box::new(Engine::compile(&expr)),
//!     Box::new(CosimBackend::compile(&expr)),
//! ];
//! for b in &mut backends {
//!     assert_eq!(b.filter_stream(stream), vec![true, false], "{}", b.name());
//! }
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```

use crate::expr::{Expr, ExprError};
use std::error::Error;
use std::fmt;

pub use rfjson_jsonstream::frame::{
    ChunkFramer, FrameAction, IngestLimits, LimitedAction, LimitedFramer, SkipReason, Verdict,
};

/// Why a backend could not be compiled from an expression — the fallible
/// half of the construction API ([`FilterBackend::try_compile`]).
///
/// The panicking [`FilterBackend::compile`] remains for expressions the
/// caller built through the smart constructors (which cannot produce
/// invalid trees); anything compiled from **user-supplied** input should
/// go through `try_compile` so an ill-formed expression degrades to an
/// error value instead of aborting the lane.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The expression failed [`Expr::validate`].
    InvalidExpr(ExprError),
    /// A backend-specific construction step failed (elaboration,
    /// netlist checks, simulator setup, …).
    Backend {
        /// Which backend refused ([`FilterBackend::name`] of the target).
        backend: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidExpr(e) => write!(f, "invalid expression: {e}"),
            CompileError::Backend { backend, reason } => {
                write!(f, "{backend} backend failed to compile: {reason}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::InvalidExpr(e) => Some(e),
            CompileError::Backend { .. } => None,
        }
    }
}

impl From<ExprError> for CompileError {
    fn from(e: ExprError) -> Self {
        CompileError::InvalidExpr(e)
    }
}

/// A byte-serial raw-filter execution path.
///
/// Semantics (identical across implementations, held equal by the
/// differential and co-simulation test suites):
///
/// * [`on_byte`](FilterBackend::on_byte) consumes one byte and returns
///   the **latched** record-accept signal — once a record satisfies the
///   filter, the signal stays high until the next record boundary;
/// * [`reset`](FilterBackend::reset) returns the filter to its
///   record-boundary state (hardware: the synchronous `\n` reset);
/// * the provided batch methods frame newline-delimited streams with
///   the shared [`ChunkFramer`] rules, so every backend emits exactly
///   one decision per (non-blank) record — the match-signal DMA
///   write-back of the paper's system.
///
/// The trait is object-safe: heterogeneous backends can sit behind
/// `Box<dyn FilterBackend>` (only [`compile`](FilterBackend::compile)
/// is `Self: Sized`).
pub trait FilterBackend {
    /// Compiles an expression into this execution form.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails [`Expr::validate`] — construct
    /// expressions through the smart constructors to avoid this.
    fn compile(expr: &Expr) -> Self
    where
        Self: Sized;

    /// Fallible form of [`compile`](FilterBackend::compile): validates
    /// the expression first and returns a [`CompileError`] instead of
    /// panicking, so user-supplied expressions can never abort a lane.
    ///
    /// The default implementation is `validate` + `compile`; backends
    /// whose construction has further failure modes (e.g. elaboration)
    /// override it to surface those as [`CompileError::Backend`].
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidExpr`] if the expression fails
    /// [`Expr::validate`]; backend-specific errors per implementation.
    fn try_compile(expr: &Expr) -> Result<Self, CompileError>
    where
        Self: Sized,
    {
        expr.validate()?;
        Ok(Self::compile(expr))
    }

    /// Short stable identifier for reports and benchmarks
    /// (`"model"`, `"engine"`, `"cosim"`, …).
    fn name(&self) -> &'static str;

    /// The source expression.
    fn expr(&self) -> &Expr;

    /// Advances one cycle; returns the current (latched) record-accept
    /// signal.
    fn on_byte(&mut self, byte: u8) -> bool;

    /// Advances a whole slice of record content at once; returns the
    /// latched record-accept signal after the last byte (`false` for an
    /// empty block — what a loop that never ran would leave behind).
    ///
    /// The default implementation is the plain byte loop, so every
    /// backend gets the block API for free; backends with a faster bulk
    /// path (the SWAR block-scan engine) override it. Decisions must be
    /// identical to the byte loop — the differential suites drive every
    /// backend through [`filter_stream_into`](FilterBackend::filter_stream_into),
    /// which routes whole records through this method.
    fn on_block(&mut self, block: &[u8]) -> bool {
        let mut accept = false;
        for &b in block {
            accept = self.on_byte(b);
        }
        accept
    }

    /// Record-boundary reset.
    fn reset(&mut self);

    /// Flushes any internally accumulated telemetry into the global
    /// [`rfjson_telemetry`] registry.
    ///
    /// Backends that keep per-stream counters (the SWAR engines tally
    /// bytes-by-path and prefilter events in plain locals — no atomics
    /// on the byte path) override this; the stream drivers call it once
    /// per stream, after the last record. The default is a no-op, and
    /// under the `telemetry-off` feature even the overrides compile to
    /// nothing.
    fn flush_telemetry(&mut self) {}

    /// Scans one record (appending the `\n` separator the hardware
    /// sees) and returns the accept decision. Resets on entry, so
    /// repeated calls are independent.
    fn accepts_record(&mut self, record: &[u8]) -> bool {
        self.reset();
        let mut accept = false;
        for &b in record {
            accept = self.on_byte(b);
        }
        self.on_byte(b'\n') || accept
    }

    /// Filters a newline-delimited stream, appending one accept
    /// decision per record to `out` (allocation-reusing form of
    /// [`filter_stream`](FilterBackend::filter_stream)).
    ///
    /// Framing — CR handling, blank lines, the trailing record without
    /// a separator — follows the workspace-wide rules of
    /// [`rfjson_jsonstream::frame`], identically for every backend.
    ///
    /// This is a thin wrapper over the quarantine-aware
    /// [`filter_stream_verdicts_into`](FilterBackend::filter_stream_verdicts_into)
    /// with [`IngestLimits::UNLIMITED`], under which every verdict is a
    /// plain match/no-match decision.
    fn filter_stream_into(&mut self, stream: &[u8], out: &mut Vec<bool>) {
        let mut verdicts = Vec::new();
        self.filter_stream_verdicts_into(stream, IngestLimits::UNLIMITED, &mut verdicts);
        out.extend(verdicts.iter().map(Verdict::matched));
    }

    /// Filters a newline-delimited stream, returning the per-record
    /// accept decisions.
    fn filter_stream(&mut self, stream: &[u8]) -> Vec<bool> {
        let mut out = Vec::new();
        self.filter_stream_into(stream, &mut out);
        out
    }

    /// Quarantine-aware stream filtering: appends one [`Verdict`] per
    /// record to `out`. Records violating `limits` are
    /// [`Verdict::Skipped`] — reported, never silently dropped, and
    /// never allowed to poison the lane (the per-record reset restores
    /// the filter regardless of how much of a quarantined record was
    /// actually scanned).
    ///
    /// With [`IngestLimits::UNLIMITED`] the match/no-match verdicts are
    /// byte-identical to [`filter_stream_into`](FilterBackend::filter_stream_into)
    /// decisions; under limits, the non-skipped verdicts still are.
    fn filter_stream_verdicts_into(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
        out: &mut Vec<Verdict>,
    ) {
        run_verdict_driver_blocks(self, stream, limits, out);
    }

    /// Quarantine-aware stream filtering, returning one [`Verdict`] per
    /// record (see
    /// [`filter_stream_verdicts_into`](FilterBackend::filter_stream_verdicts_into)).
    fn filter_stream_verdicts(&mut self, stream: &[u8], limits: IngestLimits) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.filter_stream_verdicts_into(stream, limits, &mut out);
        out
    }
}

/// The byte-serial reference form of the quarantine-aware stream driver —
/// every byte goes through [`LimitedFramer`] and [`FilterBackend::on_byte`]
/// individually. The provided batch methods now default to the
/// decision-equivalent [`run_verdict_driver_blocks`]; this form remains
/// public as the framing oracle and for wrappers that need per-byte
/// interception (e.g. fault-injection harnesses).
///
/// Every content byte of a non-quarantined record reaches
/// [`FilterBackend::on_byte`] in stream order, followed by the `\n`
/// separator the hardware would see; bytes of records already destined
/// for quarantine are skipped (their verdict no longer depends on the
/// filter, and the record-boundary [`FilterBackend::reset`] restores the
/// lane either way).
pub fn run_verdict_driver<B: FilterBackend + ?Sized>(
    backend: &mut B,
    stream: &[u8],
    limits: IngestLimits,
    out: &mut Vec<Verdict>,
) {
    use rfjson_jsonstream::telemetry::FramingTally;

    backend.reset();
    let mut framer = LimitedFramer::new(limits);
    let mut tally = FramingTally::new();
    let mut accept = false;
    // Whether the last content byte (fed or quarantined) was a CR the
    // framer will trim — tracked for the `framing.cr_records` tally.
    let mut prev_cr = false;
    for &b in stream {
        match framer.on_byte(b) {
            LimitedAction::Feed { quarantined } => {
                prev_cr = b == b'\r';
                if !quarantined {
                    accept = backend.on_byte(b);
                }
            }
            LimitedAction::EndRecord(end) => {
                tally.records += 1;
                tally.cr_records += u64::from(prev_cr);
                prev_cr = false;
                out.push(match end.skip {
                    Some(reason) => {
                        tally.quarantine(&reason);
                        Verdict::Skipped(reason)
                    }
                    None => {
                        // Feed the separator the hardware would see.
                        accept = backend.on_byte(b);
                        Verdict::from_decision(accept)
                    }
                });
                backend.reset();
            }
            LimitedAction::EndBlank => {
                tally.blank_lines += 1;
                prev_cr = false;
                backend.reset();
            }
        }
    }
    if let Some(end) = framer.finish() {
        tally.records += 1;
        tally.cr_records += u64::from(prev_cr);
        out.push(match end.skip {
            Some(reason) => {
                tally.quarantine(&reason);
                Verdict::Skipped(reason)
            }
            None => {
                // Close the trailing record with the `\n` the hardware
                // would see.
                accept = backend.on_byte(b'\n') || accept;
                Verdict::from_decision(accept)
            }
        });
        backend.reset();
    }
    tally.flush();
    backend.flush_telemetry();
}

/// Record-at-a-time driver behind the provided batch methods: hops from
/// separator to separator with the SWAR newline search and hands each
/// record's content to [`FilterBackend::on_block`] in one call, instead
/// of framing byte-by-byte.
///
/// Decision-equivalent to [`run_verdict_driver`] for every backend:
///
/// * the bytes reaching the filter for a scored record are identical —
///   the whole line (framing CR included, exactly what the byte-serial
///   driver feeds) followed by the `\n` separator;
/// * a **non-trailing** record's decision is the separator's return value
///   alone (the byte-serial driver overwrites `accept` on the `\n`), so
///   skipping the per-content-byte returns changes nothing;
/// * the **trailing** record ORs the last content byte's latched signal
///   (which [`FilterBackend::on_block`] returns) with the synthetic
///   separator's, exactly like the byte-serial EOF close;
/// * blank lines feed nothing and reset nothing — the lane is already at
///   its reset state, which is where the byte-serial driver's explicit
///   reset would put it;
/// * quarantined records feed nothing; the byte-serial driver feeds some
///   prefix of them, but its per-record reset erases that state before
///   the next decision, so verdicts cannot differ.
pub fn run_verdict_driver_blocks<B: FilterBackend + ?Sized>(
    backend: &mut B,
    stream: &[u8],
    limits: IngestLimits,
    out: &mut Vec<Verdict>,
) {
    use rfjson_jsonstream::frame::{is_blank_line, trim_cr};
    use rfjson_jsonstream::swar;
    use rfjson_jsonstream::telemetry::FramingTally;

    backend.reset();
    let mut tally = FramingTally::new();
    let mut records_seen = 0usize;
    let mut rest = stream;
    let mut trailing = false;
    while !trailing {
        let line = match swar::find_byte(rest, b'\n') {
            Some(nl) => {
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                line
            }
            None => {
                trailing = true;
                rest
            }
        };
        if is_blank_line(line) {
            // Only separator-terminated blanks count: the empty tail a
            // `\n`-terminated stream leaves behind is not a line the
            // byte-serial framer ever sees.
            tally.blank_lines += u64::from(!trailing);
            continue; // no verdict, lane already at reset state
        }
        let content = trim_cr(line).len();
        tally.records += 1;
        tally.cr_records += u64::from(content < line.len());
        let index = records_seen;
        records_seen += 1;
        // Same quarantine rules and precedence as `LimitedFramer`.
        let skip = match limits.max_records {
            Some(m) if index >= m => Some(SkipReason::RecordLimit { limit: m }),
            _ => match limits.max_record_bytes {
                Some(m) if content > m => Some(SkipReason::TooLong {
                    limit: m,
                    actual: content,
                }),
                _ => None,
            },
        };
        out.push(match skip {
            Some(reason) => {
                tally.quarantine(&reason);
                Verdict::Skipped(reason)
            }
            None => {
                let last = backend.on_block(line);
                let sep = backend.on_byte(b'\n');
                Verdict::from_decision(if trailing { sep || last } else { sep })
            }
        });
        backend.reset();
    }
    tally.flush();
    backend.flush_telemetry();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::CosimBackend;
    use crate::engine::Engine;
    use crate::evaluator::CompiledFilter;

    fn all_backends(expr: &Expr) -> Vec<Box<dyn FilterBackend>> {
        vec![
            Box::new(CompiledFilter::compile(expr)),
            Box::new(Engine::compile(expr)),
            Box::new(CosimBackend::compile(expr)),
        ]
    }

    #[test]
    fn backends_agree_behind_trait_objects() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let stream: &[u8] = b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\r\n\r\n{\"e\":[{\"v\":\"99.0\",\"n\":\"temperature\"}]}\n{\"e\":[{\"v\":\"1.0\",\"n\":\"temperature\"}]}";
        let mut expected: Option<Vec<bool>> = None;
        for b in &mut all_backends(&expr) {
            let got = b.filter_stream(stream);
            assert_eq!(got.len(), 3, "{}", b.name());
            match &expected {
                None => expected = Some(got),
                Some(e) => assert_eq!(&got, e, "{} diverges", b.name()),
            }
        }
    }

    #[test]
    fn backend_names_are_distinct() {
        let expr = Expr::int_range(1, 5);
        let names: Vec<&str> = all_backends(&expr).iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["model", "engine", "cosim"]);
        for b in &mut all_backends(&expr) {
            assert_eq!(b.expr().to_string(), expr.to_string());
        }
    }

    #[test]
    fn provided_accepts_record_is_reentrant() {
        let mut e: Box<dyn FilterBackend> = Box::new(Engine::compile(&Expr::int_range(1, 5)));
        assert!(e.accepts_record(br#"{"a":3}"#));
        assert!(!e.accepts_record(br#"{"a":9}"#));
        assert!(e.accepts_record(br#"{"a":3}"#), "reset on entry");
    }

    #[test]
    fn try_compile_rejects_ill_formed_expressions_on_every_backend() {
        let bad = Expr::And(vec![]);
        assert!(matches!(
            CompiledFilter::try_compile(&bad),
            Err(CompileError::InvalidExpr(_))
        ));
        assert!(matches!(
            Engine::try_compile(&bad),
            Err(CompileError::InvalidExpr(_))
        ));
        assert!(matches!(
            CosimBackend::try_compile(&bad),
            Err(CompileError::InvalidExpr(_))
        ));
        let err = Engine::try_compile(&bad).unwrap_err();
        assert!(err.to_string().contains("invalid expression"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn try_compile_accepts_what_compile_accepts() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        for mut b in [
            Box::new(CompiledFilter::try_compile(&expr).unwrap()) as Box<dyn FilterBackend>,
            Box::new(Engine::try_compile(&expr).unwrap()),
            Box::new(CosimBackend::try_compile(&expr).unwrap()),
        ] {
            assert!(b.accepts_record(br#"{"e":[{"v":"21.0","n":"temperature"}]}"#));
        }
    }

    #[test]
    fn verdicts_match_boolean_decisions_when_unlimited() {
        let expr = Expr::int_range(1, 5);
        let stream: &[u8] = b"{\"a\":3}\r\n\r\n{\"a\":9}\n{\"a\":4}";
        for b in &mut all_backends(&expr) {
            let bools = b.filter_stream(stream);
            let verdicts = b.filter_stream_verdicts(stream, IngestLimits::UNLIMITED);
            assert_eq!(
                verdicts.iter().map(Verdict::matched).collect::<Vec<_>>(),
                bools,
                "{}",
                b.name()
            );
            assert!(verdicts.iter().all(|v| v.decision().is_some()));
        }
    }

    #[test]
    fn oversized_record_is_quarantined_not_dropped() {
        let expr = Expr::int_range(1, 5);
        let long = format!("{{\"a\":3,\"pad\":\"{}\"}}", "x".repeat(64));
        let stream = format!("{{\"a\":3}}\n{long}\n{{\"a\":9}}\n");
        let limits = IngestLimits::max_record_bytes(32);
        for b in &mut all_backends(&expr) {
            let verdicts = b.filter_stream_verdicts(stream.as_bytes(), limits);
            assert_eq!(
                verdicts.len(),
                3,
                "{}: skipped records still counted",
                b.name()
            );
            assert_eq!(verdicts[0], Verdict::Match);
            assert_eq!(
                verdicts[1],
                Verdict::Skipped(SkipReason::TooLong {
                    limit: 32,
                    actual: long.len()
                })
            );
            assert_eq!(
                verdicts[2],
                Verdict::NoMatch,
                "{}: lane not poisoned",
                b.name()
            );
        }
    }

    #[test]
    fn record_limit_quarantines_the_tail() {
        let mut e = Engine::compile(&Expr::int_range(1, 5));
        let verdicts = e.filter_stream_verdicts(
            b"{\"a\":3}\n{\"a\":4}\n{\"a\":9}\n",
            IngestLimits::max_records(2),
        );
        assert_eq!(
            verdicts,
            vec![
                Verdict::Match,
                Verdict::Match,
                Verdict::Skipped(SkipReason::RecordLimit { limit: 2 })
            ]
        );
    }

    #[test]
    fn quarantined_trailing_record_without_newline() {
        // EOF + limit: the unclosed trailing record is metered too.
        let mut e = Engine::compile(&Expr::int_range(1, 5));
        let verdicts = e.filter_stream_verdicts(
            b"{\"a\":3}\n{\"a\":4,\"pad\":\"xxxxxxxxxxxxxxxxxxx\"}",
            IngestLimits::max_record_bytes(10),
        );
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0], Verdict::Match);
        assert!(matches!(
            verdicts[1],
            Verdict::Skipped(SkipReason::TooLong { .. })
        ));
    }
}

//! Flat batch execution engine: the table-driven fast path for composed
//! raw filters.
//!
//! [`CompiledFilter`](crate::evaluator::CompiledFilter) is the
//! co-simulation model: it walks an [`EvalNode`](crate::evaluator) tree
//! with enum dispatch for every input byte and steps DFAs through a
//! class-indirection lookup. That is faithful to the hardware but nowhere
//! near as fast as software allows. [`Engine`] executes the *same*
//! semantics — bit-for-bit, byte-for-byte, held equal by differential
//! property tests — from flattened, allocation-free state:
//!
//! * every DFA-backed primitive (exact string matchers and number-range
//!   automata) becomes a **dense 256-wide row-major transition table**
//!   ([`Dfa::dense_table`]) with the accept flag folded into the state
//!   word, so one load per byte replaces two dependent loads plus an
//!   accept lookup;
//! * window and substring matchers keep **struct-of-arrays** state (packed
//!   `u64` windows, run counters) stepped in a flat loop instead of
//!   `Box<Prim>` dispatch;
//! * the AND/OR/CTX combinator tree becomes a **post-order flat program**
//!   whose satisfaction latches live in `u64` bitsets and are evaluated
//!   and cleared with bitwise mask operations;
//! * the string mask, nesting depth and comma/close classification come
//!   from **one shared structural scan** (the byte-class-LUT
//!   [`StreamTracker`]), run once per byte and skipped wholesale for
//!   context-free filters.
//!
//! The full-window matcher (technique ii) compiles to the `.*needle`
//! automaton: firing "buffer == needle" is exactly "stream ends with
//! needle", and NUL-free needles can never match the zero-initialised
//! buffer early, so the table-driven walk is fire-identical to the
//! hardware shift register (the differential tests include window
//! expressions).

use crate::evaluator::StreamTracker;
use crate::expr::{Expr, StringTechnique, StructScope};
use crate::prefilter::Prefilter;
use crate::primitive::{DfaStringMatcher, FireFilter, SubstringMatcher, WindowMatcher};
use rfjson_jsonstream::swar;
use rfjson_redfa::range::is_number_byte;
use rfjson_redfa::DENSE_ACCEPT_BIT;

/// State-index part of a dense state word.
const STATE_MASK: u16 = !DENSE_ACCEPT_BIT;

/// Combinator kind of one [`OpView`] — the public mirror of the engine's
/// internal op encoding, exposed for static verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKindView {
    /// All direct children latched.
    And,
    /// Any direct child latched.
    Or,
    /// Structural context: children must latch within one instance.
    Ctx {
        /// Mask offset of the strict-descendant clear mask.
        clear_off: u32,
        /// Flag-level register slot of this context.
        ctx_id: u32,
        /// First flag-level slot inside this context's subtree.
        ctx_lo: u32,
        /// Member scope (clears on instance-level commas too).
        member: bool,
    },
}

/// One combinator of the flat node program, as seen by the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpView {
    /// Bit index of this node in the latch bitset.
    pub node: u32,
    /// Mask offset of the direct-children mask.
    pub mask_off: u32,
    /// Combinator kind.
    pub kind: OpKindView,
}

/// One table-backed DFA unit (exact-string or number-range automaton).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfaUnitView {
    /// Offset of this unit's dense table inside [`ProgramView::tables`].
    pub table_off: u32,
    /// Dense-encoded start state (accept bit folded in).
    pub start: u16,
    /// Latch-bit index this unit fires.
    pub node: u32,
}

/// Immutable snapshot of a compiled [`Engine`]'s flat node program — the
/// input of the `rfjson-verify` static analyses. All invariants the hot
/// loop relies on without checking (post-order evaluation, in-range mask
/// offsets, latch-clear coverage) are observable here; [`ProgramView::check`]
/// re-proves the structural ones and is `debug_assert!`ed at compile time.
#[derive(Debug, Clone)]
pub struct ProgramView {
    /// Total node count (primitives + combinators).
    pub num_nodes: u32,
    /// Latch bitset width in 64-bit words.
    pub words: usize,
    /// Bit index of the root (record-accept) node.
    pub root: u32,
    /// Post-order combinator program.
    pub ops: Vec<OpView>,
    /// All child/clear masks, [`ProgramView::words`] u64s per mask.
    pub masks: Vec<u64>,
    /// Number of context flag-level registers.
    pub num_ctxs: u32,
    /// Concatenated dense DFA transition tables.
    pub tables: Vec<u16>,
    /// Exact-string DFA units, in compile (post-)order.
    pub string_dfas: Vec<DfaUnitView>,
    /// Number-range DFA units, in compile order.
    pub number_dfas: Vec<DfaUnitView>,
    /// Latch-bit indices of single-byte substring units.
    pub sub1_nodes: Vec<u32>,
    /// Latch-bit indices of packed substring units (2 ≤ B ≤ 8).
    pub subp_nodes: Vec<u32>,
    /// Latch-bit indices of wide substring units (B > 8).
    pub wide_nodes: Vec<u32>,
}

/// One structural defect found by [`ProgramView::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramFault {
    /// `words` is not `num_nodes.div_ceil(64)`.
    WordWidth {
        /// Declared width.
        words: usize,
        /// Width the node count requires.
        expected: usize,
    },
    /// The root bit index is outside the node range or not the final node.
    BadRoot {
        /// Declared root.
        root: u32,
    },
    /// A mask offset reaches past the mask pool.
    MaskOutOfRange {
        /// Node whose op referenced the mask.
        node: u32,
        /// Offending offset.
        mask_off: u32,
    },
    /// A mask references a bit ≥ `num_nodes`.
    MaskBitOutOfRange {
        /// Node whose op owns the mask.
        node: u32,
        /// Offending bit.
        bit: u32,
    },
    /// Ops are not in strictly increasing (post-order) node order.
    NotPostOrder {
        /// Node that broke the order.
        node: u32,
    },
    /// A node is defined both as a primitive and as a combinator, or by
    /// two combinators.
    DoubleDefinition {
        /// The doubly defined node.
        node: u32,
    },
    /// An operand bit is used before (or without) being defined.
    UseBeforeDef {
        /// The combinator using the operand.
        node: u32,
        /// The undefined operand bit.
        operand: u32,
    },
    /// A non-root node feeds no parent mask.
    DanglingNode {
        /// The unread node.
        node: u32,
    },
    /// A node feeds more than one parent mask (the program is a tree).
    SharedOperand {
        /// The multiply used node.
        node: u32,
    },
    /// A context's clear mask does not cover exactly its strict
    /// descendants — a latch inside the context would never reset at
    /// instance end (or an unrelated latch would be clobbered).
    LatchClearMismatch {
        /// The context node.
        node: u32,
        /// A descendant missing from (or an outsider present in) the
        /// clear mask.
        bit: u32,
    },
    /// Context flag-level slots are out of range or not nested properly.
    BadCtxSlots {
        /// The context node.
        node: u32,
    },
}

impl std::fmt::Display for ProgramFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramFault::WordWidth { words, expected } => {
                write!(f, "bitset width {words} words, node count needs {expected}")
            }
            ProgramFault::BadRoot { root } => write!(f, "root node {root} out of place"),
            ProgramFault::MaskOutOfRange { node, mask_off } => {
                write!(f, "node {node}: mask offset {mask_off} out of range")
            }
            ProgramFault::MaskBitOutOfRange { node, bit } => {
                write!(f, "node {node}: mask bit {bit} exceeds node count")
            }
            ProgramFault::NotPostOrder { node } => {
                write!(f, "node {node} breaks post-order op sequence")
            }
            ProgramFault::DoubleDefinition { node } => write!(f, "node {node} defined twice"),
            ProgramFault::UseBeforeDef { node, operand } => {
                write!(f, "node {node} uses operand {operand} before definition")
            }
            ProgramFault::DanglingNode { node } => write!(f, "node {node} feeds no parent"),
            ProgramFault::SharedOperand { node } => {
                write!(f, "node {node} feeds more than one parent")
            }
            ProgramFault::LatchClearMismatch { node, bit } => {
                write!(f, "context {node}: latch {bit} not covered by clear mask")
            }
            ProgramFault::BadCtxSlots { node } => {
                write!(f, "context {node}: flag-level slots inconsistent")
            }
        }
    }
}

impl ProgramView {
    /// The bits set in the mask at `off` (empty if out of range).
    fn mask_bits(&self, off: u32) -> Vec<u32> {
        let lo = off as usize;
        let hi = lo + self.words;
        if hi > self.masks.len() {
            return Vec::new();
        }
        let mut bits = Vec::new();
        for (w, word) in self.masks[lo..hi].iter().enumerate() {
            let mut word = *word;
            while word != 0 {
                let b = word.trailing_zeros();
                bits.push(w as u32 * 64 + b);
                word &= word - 1;
            }
        }
        bits
    }

    /// Latch-bit indices of all primitive units, in compile order of
    /// their unit arrays.
    pub fn primitive_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .string_dfas
            .iter()
            .chain(&self.number_dfas)
            .map(|u| u.node)
            .chain(self.sub1_nodes.iter().copied())
            .chain(self.subp_nodes.iter().copied())
            .chain(self.wide_nodes.iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// Re-proves the structural invariants of the flat program: post-order
    /// well-formedness, operand defined-before-use, single-use tree shape,
    /// latch clear-mask coverage, flag-slot nesting, and bitset-width
    /// consistency. Returns every fault found (empty = well-formed).
    ///
    /// This is the check `Engine::compile` runs under `debug_assert!`;
    /// `rfjson-verify` maps the same faults into its diagnostic model and
    /// layers the cross-artifact analyses on top.
    pub fn check(&self) -> Vec<ProgramFault> {
        let mut faults = Vec::new();
        let expected_words = (self.num_nodes as usize).div_ceil(64);
        if self.words != expected_words {
            faults.push(ProgramFault::WordWidth {
                words: self.words,
                expected: expected_words,
            });
        }
        if self.root + 1 != self.num_nodes {
            faults.push(ProgramFault::BadRoot { root: self.root });
        }

        // Definition sweep: primitives first, then ops in post-order.
        let n = self.num_nodes as usize;
        let mut defined = vec![false; n];
        for p in self.primitive_nodes() {
            if (p as usize) < n {
                if defined[p as usize] {
                    faults.push(ProgramFault::DoubleDefinition { node: p });
                }
                defined[p as usize] = true;
            } else {
                faults.push(ProgramFault::MaskBitOutOfRange { node: p, bit: p });
            }
        }
        let mut used_by = vec![0u32; n];
        let mut prev_node: Option<u32> = None;
        let mut prev_ctx: Option<u32> = None;
        for op in &self.ops {
            if prev_node.is_some_and(|p| op.node <= p) {
                faults.push(ProgramFault::NotPostOrder { node: op.node });
            }
            prev_node = Some(op.node);
            if (op.mask_off as usize) + self.words > self.masks.len() {
                faults.push(ProgramFault::MaskOutOfRange {
                    node: op.node,
                    mask_off: op.mask_off,
                });
                continue;
            }
            for bit in self.mask_bits(op.mask_off) {
                if bit as usize >= n {
                    faults.push(ProgramFault::MaskBitOutOfRange { node: op.node, bit });
                    continue;
                }
                if bit >= op.node || !defined[bit as usize] {
                    faults.push(ProgramFault::UseBeforeDef {
                        node: op.node,
                        operand: bit,
                    });
                }
                used_by[bit as usize] += 1;
            }
            if (op.node as usize) < n {
                if defined[op.node as usize] {
                    faults.push(ProgramFault::DoubleDefinition { node: op.node });
                }
                defined[op.node as usize] = true;
            } else {
                faults.push(ProgramFault::MaskBitOutOfRange {
                    node: op.node,
                    bit: op.node,
                });
            }
            if let OpKindView::Ctx {
                clear_off,
                ctx_id,
                ctx_lo,
                ..
            } = op.kind
            {
                if ctx_id >= self.num_ctxs
                    || ctx_lo > ctx_id
                    || prev_ctx.is_some_and(|p| ctx_id <= p)
                {
                    faults.push(ProgramFault::BadCtxSlots { node: op.node });
                }
                prev_ctx = Some(ctx_id);
                if (clear_off as usize) + self.words > self.masks.len() {
                    faults.push(ProgramFault::MaskOutOfRange {
                        node: op.node,
                        mask_off: clear_off,
                    });
                } else {
                    // Latch reset coverage: the clear mask must be exactly
                    // the strict descendants of this context node.
                    let descendants = self.subtree_bits(op);
                    let clear = self.mask_bits(clear_off);
                    for &d in &descendants {
                        if !clear.contains(&d) {
                            faults.push(ProgramFault::LatchClearMismatch {
                                node: op.node,
                                bit: d,
                            });
                        }
                    }
                    for &c in &clear {
                        if !descendants.contains(&c) {
                            faults.push(ProgramFault::LatchClearMismatch {
                                node: op.node,
                                bit: c,
                            });
                        }
                    }
                }
            }
        }
        for (i, &uses) in used_by.iter().enumerate() {
            let node = i as u32;
            let is_defined = defined[i];
            if node == self.root {
                if uses > 0 {
                    faults.push(ProgramFault::SharedOperand { node });
                }
                continue;
            }
            if is_defined && uses == 0 {
                faults.push(ProgramFault::DanglingNode { node });
            }
            if uses > 1 {
                faults.push(ProgramFault::SharedOperand { node });
            }
        }
        faults
    }

    /// The strict descendants of an op: transitive closure of its direct
    /// children through the combinator masks.
    fn subtree_bits(&self, op: &OpView) -> Vec<u32> {
        let mut seen = vec![false; self.num_nodes as usize];
        let mut work = self.mask_bits(op.mask_off);
        let mut out = Vec::new();
        while let Some(bit) = work.pop() {
            let i = bit as usize;
            if i >= seen.len() || seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(bit);
            if let Some(child_op) = self.ops.iter().find(|o| o.node == bit) {
                work.extend(self.mask_bits(child_op.mask_off));
            }
        }
        out.sort_unstable();
        out
    }
}

#[derive(Debug, Clone)]
pub(crate) enum OpKind {
    And,
    Or,
    Ctx {
        /// Mask offset of the strict-descendant clear mask.
        clear_off: u32,
        /// This context's flag-level slot.
        ctx_id: u32,
        /// First flag-level slot inside this context's subtree (slots
        /// `ctx_lo..ctx_id` are the descendant contexts to reset).
        ctx_lo: u32,
        /// [`StructScope::Member`]: clear on instance-level commas too.
        member: bool,
    },
}

/// One combinator of the post-order node program. Primitive leaves need
/// no op: their fire bits are ORed into the latch bitset during the
/// primitive sweep, before the program runs.
#[derive(Debug, Clone)]
pub(crate) struct Op {
    /// Bit index of this node in the latch bitset.
    pub(crate) node: u32,
    /// Mask offset of the direct-children mask.
    pub(crate) mask_off: u32,
    pub(crate) kind: OpKind,
}

impl Op {
    /// The public verification-facing mirror of this op.
    pub(crate) fn view(&self) -> OpView {
        OpView {
            node: self.node,
            mask_off: self.mask_off,
            kind: match &self.kind {
                OpKind::And => OpKindView::And,
                OpKind::Or => OpKindView::Or,
                OpKind::Ctx {
                    clear_off,
                    ctx_id,
                    ctx_lo,
                    member,
                } => OpKindView::Ctx {
                    clear_off: *clear_off,
                    ctx_id: *ctx_id,
                    ctx_lo: *ctx_lo,
                    member: *member,
                },
            },
        }
    }
}

/// A rare substring matcher with a block length beyond the packed-`u64`
/// window (B > 8); the reference primitive is stepped directly (concrete
/// type, no dispatch) in the same flat loop.
#[derive(Debug, Clone)]
pub(crate) struct WideSub {
    pub(crate) matcher: SubstringMatcher,
    pub(crate) node: u32,
}

/// The record-level literal prefilter plus its adaptive bookkeeping:
/// `live` drops to `false` once a probation window of records rejects
/// nothing, so unselective streams stop paying the scan.
#[derive(Debug, Clone)]
struct PrefilterState {
    filter: Prefilter,
    live: bool,
    checked: u64,
    rejected: u64,
}

/// Adaptive status of the record-level literal prefilter, as reported by
/// [`Engine::prefilter_status`]. A zero hit rate in the benchmark output
/// is only meaningful together with this state: `Disabled` means the
/// stream proved unselective during probation (every record contains the
/// required literals, so the scan can never reject — the RiotBench range
/// queries are all in this class) and the engine stopped paying for the
/// scan, not that the prefilter is broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterStatus {
    /// The expression yields no usable necessary-condition literal set
    /// (e.g. the root is a disjunction), so no prefilter was built.
    Absent,
    /// Active, still inside the probation window of
    /// [`Engine::PREFILTER_PROBATION`] records.
    Probation,
    /// Active past probation: the scan rejected records and keeps
    /// earning its keep.
    Live,
    /// Self-disabled: a full probation window rejected nothing, so the
    /// scan is skipped from then on.
    Disabled,
}

impl std::fmt::Display for PrefilterStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PrefilterStatus::Absent => "absent",
            PrefilterStatus::Probation => "probation",
            PrefilterStatus::Live => "live",
            PrefilterStatus::Disabled => "disabled",
        })
    }
}

/// The structural facts of one input byte, as the node program sees
/// them: nesting depth plus whether the byte is an unmasked close or
/// comma.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ByteEvent {
    pub(crate) depth: u32,
    pub(crate) is_close: bool,
    pub(crate) is_comma: bool,
}

/// One cycle of the node program for the one-word case (≤ 64 nodes),
/// shared by the serial per-byte path and the block-scan fast path. `l`
/// is the latch word with this cycle's primitive fires already ORed in;
/// `p` is the pre-cycle latch snapshot (context pending-before checks).
/// Returns the updated latch word.
#[inline]
pub(crate) fn run_program_word(
    ops: &[Op],
    masks: &[u64],
    flag_level: &mut [u32],
    mut l: u64,
    p: u64,
    ev: ByteEvent,
) -> u64 {
    let ByteEvent {
        depth,
        is_close,
        is_comma,
    } = ev;
    for op in ops {
        let m = masks[op.mask_off as usize];
        match &op.kind {
            OpKind::And => {
                if l & m == m {
                    l |= 1u64 << op.node;
                }
            }
            OpKind::Or => {
                if l & m != 0 {
                    l |= 1u64 << op.node;
                }
            }
            OpKind::Ctx {
                clear_off,
                ctx_id,
                ctx_lo,
                member,
            } => {
                let v = l & m;
                let any = v != 0;
                if !any && p & m == 0 {
                    continue; // nothing pending, nothing fired
                }
                if p & m == 0 {
                    flag_level[*ctx_id as usize] = depth;
                }
                if v == m {
                    l |= 1u64 << op.node;
                }
                if any {
                    let fl = flag_level[*ctx_id as usize];
                    let end = (is_close && depth <= fl) || (*member && is_comma && depth == fl);
                    if end {
                        l &= !masks[*clear_off as usize];
                        for fl in &mut flag_level[*ctx_lo as usize..*ctx_id as usize] {
                            *fl = 0;
                        }
                    }
                }
            }
        }
    }
    l
}

/// One cycle of the node program for multi-word latch bitsets (> 64
/// nodes), shared by [`Engine`] and the fused multi-query lanes. `latch`
/// already holds this cycle's primitive fires; `prev` is the pre-cycle
/// snapshot the context pending-before checks read.
pub(crate) fn run_program_multi(
    ops: &[Op],
    masks: &[u64],
    words: usize,
    latch: &mut [u64],
    prev: &[u64],
    flag_level: &mut [u32],
    ev: ByteEvent,
) {
    let set_bit = |v: &mut [u64], i: u32| {
        v[i as usize / 64] |= 1u64 << (i % 64);
    };
    for op in ops {
        let mask = &masks[op.mask_off as usize..op.mask_off as usize + words];
        match &op.kind {
            OpKind::And => {
                let all = mask.iter().zip(latch.iter()).all(|(m, l)| l & m == *m);
                if all {
                    set_bit(latch, op.node);
                }
            }
            OpKind::Or => {
                let any = mask.iter().zip(latch.iter()).any(|(m, l)| l & m != 0);
                if any {
                    set_bit(latch, op.node);
                }
            }
            OpKind::Ctx {
                clear_off,
                ctx_id,
                ctx_lo,
                member,
            } => {
                let mut any = false;
                let mut all = true;
                let mut pending_before = false;
                for (w, m) in mask.iter().enumerate() {
                    let v = latch[w] & m;
                    any |= v != 0;
                    all &= v == *m;
                    pending_before |= prev[w] & m != 0;
                }
                // First fire of a fresh instance records the level.
                if !pending_before && any {
                    flag_level[*ctx_id as usize] = ev.depth;
                }
                if all {
                    set_bit(latch, op.node);
                }
                // Instance end: clear pending descendant latches.
                if any {
                    let fl = flag_level[*ctx_id as usize];
                    let end = (ev.is_close && ev.depth <= fl)
                        || (*member && ev.is_comma && ev.depth == fl);
                    if end {
                        let clear = &masks[*clear_off as usize..*clear_off as usize + words];
                        for (l, c) in latch.iter_mut().zip(clear) {
                            *l &= !c;
                        }
                        for fl in &mut flag_level[*ctx_lo as usize..*ctx_id as usize] {
                            *fl = 0;
                        }
                    }
                }
            }
        }
    }
}

/// The flattened, allocation-free batch execution engine.
///
/// Compile once, then stream any number of records through it; per-byte
/// work is table lookups and bitset arithmetic with no heap traffic.
///
/// # Example
///
/// ```
/// use rfjson_core::{Engine, Expr, FilterBackend};
///
/// let expr = Expr::context([
///     Expr::substring(b"temperature", 1)?,
///     Expr::float_range("0.7", "35.1")?,
/// ]);
/// let mut engine = Engine::compile(&expr);
/// assert!(engine.accepts_record(br#"{"e":[{"v":"21.0","n":"temperature"}]}"#));
/// assert!(!engine.accepts_record(br#"{"e":[{"v":"99.0","n":"temperature"}]}"#));
/// # Ok::<(), rfjson_core::expr::ExprError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    expr: Expr,

    // ---- node program (immutable after compile) ----
    /// Bitset width in 64-bit words.
    words: usize,
    /// Bit index of the root node (accept signal).
    root: u32,
    /// Whether any context op exists — without one, no node reads the
    /// structural facts and the whole scan (and the latch snapshot it
    /// feeds) is skipped.
    has_ctx: bool,
    ops: Vec<Op>,
    /// All child/clear masks, `words` u64s per mask, indexed by offset.
    masks: Vec<u64>,

    // ---- dense DFA units (exact strings and windows) ----
    /// Concatenated dense tables (`states × 256` words each).
    tables: Vec<u16>,
    sdfa_off: Vec<u32>,
    sdfa_start: Vec<u16>,
    sdfa_node: Vec<u32>,

    // ---- number-range units ----
    num_off: Vec<u32>,
    num_start: Vec<u16>,
    num_node: Vec<u32>,

    // ---- single-byte substring units (B = 1): 256-bit membership set ----
    /// Four `u64` words per unit — bit `b` set iff byte `b` is one of the
    /// needle's letters (the OR-reduced comparator bank of the paper,
    /// collapsed into a bitmap).
    sub1_bitmap: Vec<u64>,
    sub1_target: Vec<u32>,
    sub1_node: Vec<u32>,

    // ---- packed substring units (2 ≤ B ≤ 8) ----
    subp_win_mask: Vec<u64>,
    subp_blocks_off: Vec<u32>,
    subp_blocks_len: Vec<u32>,
    subp_blocks: Vec<u64>,
    subp_target: Vec<u32>,
    subp_node: Vec<u32>,

    wide_subs: Vec<WideSub>,

    // ---- block-scan fast path (immutable after compile) ----
    /// Whether [`Engine::on_block`] may take the SWAR word loop: one latch
    /// word, no wide substring units, ≤ 8 single-byte substring units, and
    /// run targets that fit the packed saturating counters.
    block_ready: bool,
    /// 256-entry packed hit table for the B = 1 substring units: entry
    /// `b` holds `0xFF` in lane `i` iff byte `b` is in unit `i`'s
    /// membership set. Empty unless `block_ready` with sub1 units.
    sub1_hits: Vec<u64>,
    /// Per-lane run targets of the sub1 units, packed one byte per lane
    /// (unused lanes hold 127, unreachable by the saturating counters).
    sub1_targets_packed: u64,
    /// 256-bit last-byte bitmap per packed substring unit — a cheap gate
    /// in front of the linear block-list search.
    subp_gate: Vec<u64>,
    /// Record-level literal prefilter (necessary-condition checks),
    /// with its live/checked/rejected bookkeeping.
    prefilter: Option<PrefilterState>,

    // ---- mutable per-stream state ----
    /// Telemetry accumulated in plain locals on the hot path and flushed
    /// to the global registry once per stream (`flush_telemetry`).
    stats: EngineStats,
    /// No bytes fed since the last reset: the next `on_block` call sees a
    /// whole record from the start, which is what the prefilter requires.
    fresh: bool,
    latch: Vec<u64>,
    prev: Vec<u64>,
    flag_level: Vec<u32>,
    sdfa_state: Vec<u16>,
    num_state: Vec<u16>,
    num_in_token: Vec<bool>,
    sub1_counter: Vec<u32>,
    subp_win: Vec<u64>,
    subp_counter: Vec<u32>,
    tracker: StreamTracker,
}

/// Per-stream telemetry the engine accumulates in plain `u64` fields —
/// no atomics, no registry lookups on the byte path. Drained into the
/// global `engine.*` counters by `flush_telemetry`, which the stream
/// drivers call once per stream.
#[derive(Debug, Clone, Copy, Default)]
struct EngineStats {
    /// Records entering `on_block` from a fresh reset.
    records: u64,
    /// Bytes scanned by the SWAR word loop (word-aligned portion).
    bytes_block: u64,
    /// Bytes through the serial `on_byte` path (fallback programs,
    /// sub-word tails, separators).
    bytes_byte_serial: u64,
    /// Bytes never scanned: the prefilter rejected the whole record.
    bytes_prefilter_skipped: u64,
    /// Records the live prefilter examined.
    prefilter_checked: u64,
    /// Records the prefilter proved `NoMatch` without scanning.
    prefilter_rejected: u64,
    /// Probation-end self-disable events (at most one per compile).
    prefilter_disabled: u64,
}

impl EngineStats {
    fn is_empty(&self) -> bool {
        self.records == 0
            && self.bytes_block == 0
            && self.bytes_byte_serial == 0
            && self.bytes_prefilter_skipped == 0
    }
}

/// Builder state threaded through the post-order compile walk. Shared
/// with the fused multi-query compiler ([`crate::multi`]), which runs
/// one builder per lane and pools the deterministic unit output.
#[derive(Default)]
pub(crate) struct Builder {
    pub(crate) words: usize,
    pub(crate) next_node: u32,
    pub(crate) next_ctx: u32,
    pub(crate) ops: Vec<Op>,
    pub(crate) masks: Vec<u64>,
    pub(crate) tables: Vec<u16>,
    pub(crate) sdfa_off: Vec<u32>,
    pub(crate) sdfa_start: Vec<u16>,
    pub(crate) sdfa_node: Vec<u32>,
    pub(crate) num_off: Vec<u32>,
    pub(crate) num_start: Vec<u16>,
    pub(crate) num_node: Vec<u32>,
    pub(crate) sub1_bitmap: Vec<u64>,
    pub(crate) sub1_target: Vec<u32>,
    pub(crate) sub1_node: Vec<u32>,
    pub(crate) subp_win_mask: Vec<u64>,
    pub(crate) subp_blocks_off: Vec<u32>,
    pub(crate) subp_blocks_len: Vec<u32>,
    pub(crate) subp_blocks: Vec<u64>,
    pub(crate) subp_target: Vec<u32>,
    pub(crate) subp_node: Vec<u32>,
    pub(crate) wide_subs: Vec<WideSub>,
}

impl Builder {
    fn alloc_node(&mut self) -> u32 {
        let n = self.next_node;
        self.next_node += 1;
        n
    }

    fn alloc_mask(&mut self, bits: &[u32]) -> u32 {
        let off = self.masks.len() as u32;
        self.masks.extend(std::iter::repeat_n(0, self.words));
        for &bit in bits {
            self.masks[off as usize + bit as usize / 64] |= 1u64 << (bit % 64);
        }
        off
    }

    fn add_dense(&mut self, dfa: &rfjson_redfa::Dfa) -> (u32, u16) {
        let off = self.tables.len() as u32;
        self.tables.extend(dfa.dense_table());
        (off, dfa.dense_start())
    }

    pub(crate) fn visit(&mut self, expr: &Expr) -> u32 {
        match expr {
            Expr::Str(spec) => {
                let node = match spec.technique {
                    StringTechnique::Dfa | StringTechnique::Window => {
                        if spec.technique == StringTechnique::Window {
                            // Validate through the reference primitive
                            // (empty / NUL needles); then the window
                            // compiles to the same `.*needle` automaton —
                            // fire-identical to the shift register.
                            let _ = WindowMatcher::new(&spec.needle);
                        }
                        let m = DfaStringMatcher::new(&spec.needle);
                        let (off, start) = self.add_dense(m.dfa());
                        let node = self.alloc_node();
                        self.sdfa_off.push(off);
                        self.sdfa_start.push(start);
                        self.sdfa_node.push(node);
                        node
                    }
                    StringTechnique::Substring(b) => {
                        let m = SubstringMatcher::new(&spec.needle, b)
                            .expect("expression was validated at compile time");
                        let node = self.alloc_node();
                        if b == 1 {
                            let mut bitmap = [0u64; 4];
                            for blk in m.blocks() {
                                let x = blk[0];
                                bitmap[(x >> 6) as usize] |= 1u64 << (x & 63);
                            }
                            self.sub1_bitmap.extend(bitmap);
                            self.sub1_target.push(m.target());
                            self.sub1_node.push(node);
                        } else if b <= 8 {
                            let off = self.subp_blocks.len() as u32;
                            for blk in m.blocks() {
                                let mut packed = 0u64;
                                for &x in blk {
                                    packed = (packed << 8) | u64::from(x);
                                }
                                self.subp_blocks.push(packed);
                            }
                            self.subp_win_mask.push(if b == 8 {
                                u64::MAX
                            } else {
                                (1u64 << (8 * b)) - 1
                            });
                            self.subp_blocks_off.push(off);
                            self.subp_blocks_len.push(m.blocks().len() as u32);
                            self.subp_target.push(m.target());
                            self.subp_node.push(node);
                        } else {
                            self.wide_subs.push(WideSub { matcher: m, node });
                        }
                        node
                    }
                };
                node
            }
            Expr::Num(bounds) => {
                let (off, start) = self.add_dense(&bounds.to_dfa());
                let node = self.alloc_node();
                self.num_off.push(off);
                self.num_start.push(start);
                self.num_node.push(node);
                node
            }
            Expr::And(cs) | Expr::Or(cs) => {
                let children: Vec<u32> = cs.iter().map(|c| self.visit(c)).collect();
                let node = self.alloc_node();
                let mask_off = self.alloc_mask(&children);
                let kind = if matches!(expr, Expr::And(_)) {
                    OpKind::And
                } else {
                    OpKind::Or
                };
                self.ops.push(Op {
                    node,
                    mask_off,
                    kind,
                });
                node
            }
            Expr::Ctx(cs, scope) => {
                let lo = self.next_node;
                let ctx_lo = self.next_ctx;
                let children: Vec<u32> = cs.iter().map(|c| self.visit(c)).collect();
                let node = self.alloc_node();
                let ctx_id = self.next_ctx;
                self.next_ctx += 1;
                let mask_off = self.alloc_mask(&children);
                let descendants: Vec<u32> = (lo..node).collect();
                let clear_off = self.alloc_mask(&descendants);
                self.ops.push(Op {
                    node,
                    mask_off,
                    kind: OpKind::Ctx {
                        clear_off,
                        ctx_id,
                        ctx_lo,
                        member: *scope == StructScope::Member,
                    },
                });
                node
            }
        }
    }
}

pub(crate) fn count_nodes(expr: &Expr) -> usize {
    match expr {
        Expr::Str(_) | Expr::Num(_) => 1,
        Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
            1 + cs.iter().map(count_nodes).sum::<usize>()
        }
    }
}

impl Engine {
    /// Compiles an expression into its flat table-driven form.
    ///
    /// # Panics
    ///
    /// Panics if the expression fails [`Expr::validate`] — construct
    /// expressions through the smart constructors to avoid this.
    pub fn compile(expr: &Expr) -> Engine {
        expr.validate().expect("expression must be well-formed");
        let num_nodes = count_nodes(expr);
        let words = num_nodes.div_ceil(64);
        let mut b = Builder {
            words,
            ..Builder::default()
        };
        let root = b.visit(expr);
        debug_assert_eq!(b.next_node as usize, num_nodes);

        // Block-scan eligibility and derived tables. The packed sub1
        // counters saturate at 127, so targets must stay below that for
        // "counter ≥ target" to keep its exact serial meaning.
        let nsub1 = b.sub1_node.len();
        let block_ready = words == 1
            && b.wide_subs.is_empty()
            && nsub1 <= 8
            && b.sub1_target.iter().all(|&t| t <= 126);
        let mut sub1_hits = Vec::new();
        let mut sub1_targets_packed = 0u64;
        let mut subp_gate = Vec::new();
        if block_ready {
            if nsub1 > 0 {
                sub1_hits = vec![0u64; 256];
                for (i, bitmap) in b.sub1_bitmap.chunks_exact(4).enumerate() {
                    for (byte, hit) in sub1_hits.iter_mut().enumerate() {
                        if bitmap[byte >> 6] & (1u64 << (byte & 63)) != 0 {
                            *hit |= 0xffu64 << (8 * i);
                        }
                    }
                }
            }
            for lane in 0..8usize {
                let t = b.sub1_target.get(lane).copied().unwrap_or(127);
                sub1_targets_packed |= u64::from(t) << (8 * lane);
            }
            subp_gate = vec![0u64; b.subp_node.len() * 4];
            for i in 0..b.subp_node.len() {
                let off = b.subp_blocks_off[i] as usize;
                let len = b.subp_blocks_len[i] as usize;
                for &blk in &b.subp_blocks[off..off + len] {
                    let last = (blk & 0xff) as usize;
                    subp_gate[i * 4 + (last >> 6)] |= 1u64 << (last & 63);
                }
            }
        }
        let prefilter = Prefilter::build(expr).map(|filter| PrefilterState {
            filter,
            live: true,
            checked: 0,
            rejected: 0,
        });

        let engine = Engine {
            expr: expr.clone(),
            words,
            root,
            has_ctx: b.next_ctx > 0,
            ops: b.ops,
            masks: b.masks,
            tables: b.tables,
            sdfa_state: b.sdfa_start.clone(),
            sdfa_off: b.sdfa_off,
            sdfa_start: b.sdfa_start,
            sdfa_node: b.sdfa_node,
            num_state: b.num_start.clone(),
            num_in_token: vec![false; b.num_off.len()],
            num_off: b.num_off,
            num_start: b.num_start,
            num_node: b.num_node,
            sub1_counter: vec![0; b.sub1_target.len()],
            sub1_bitmap: b.sub1_bitmap,
            sub1_target: b.sub1_target,
            sub1_node: b.sub1_node,
            subp_win: vec![0; b.subp_win_mask.len()],
            subp_counter: vec![0; b.subp_win_mask.len()],
            subp_win_mask: b.subp_win_mask,
            subp_blocks_off: b.subp_blocks_off,
            subp_blocks_len: b.subp_blocks_len,
            subp_blocks: b.subp_blocks,
            subp_target: b.subp_target,
            subp_node: b.subp_node,
            wide_subs: b.wide_subs,
            block_ready,
            sub1_hits,
            sub1_targets_packed,
            subp_gate,
            prefilter,
            stats: EngineStats::default(),
            fresh: true,
            latch: vec![0; words],
            prev: vec![0; words],
            flag_level: vec![0; b.next_ctx as usize],
            tracker: StreamTracker::new(),
        };
        // Static self-verification: the flat program must be structurally
        // well-formed before the unchecked hot loop ever runs it. The full
        // diagnostic pass (including cross-artifact table checks) lives in
        // `rfjson-verify`; this debug-only gate catches compiler bugs at
        // the point of creation.
        #[cfg(debug_assertions)]
        {
            let faults = engine.program_view().check();
            debug_assert!(
                faults.is_empty(),
                "Engine::compile produced an ill-formed program for `{expr}`: {faults:?}"
            );
        }
        engine
    }

    /// The source expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Snapshots the flat node program for static verification — see
    /// [`ProgramView`].
    pub fn program_view(&self) -> ProgramView {
        let unit_views = |offs: &[u32], starts: &[u16], nodes: &[u32]| -> Vec<DfaUnitView> {
            offs.iter()
                .zip(starts)
                .zip(nodes)
                .map(|((&table_off, &start), &node)| DfaUnitView {
                    table_off,
                    start,
                    node,
                })
                .collect()
        };
        ProgramView {
            num_nodes: self.root + 1,
            words: self.words,
            root: self.root,
            ops: self.ops.iter().map(Op::view).collect(),
            masks: self.masks.clone(),
            num_ctxs: self.flag_level.len() as u32,
            tables: self.tables.clone(),
            string_dfas: unit_views(&self.sdfa_off, &self.sdfa_start, &self.sdfa_node),
            number_dfas: unit_views(&self.num_off, &self.num_start, &self.num_node),
            sub1_nodes: self.sub1_node.clone(),
            subp_nodes: self.subp_node.clone(),
            wide_nodes: self.wide_subs.iter().map(|w| w.node).collect(),
        }
    }

    /// Number of nodes in the flat program (primitives + combinators).
    pub fn num_nodes(&self) -> usize {
        self.root as usize + 1
    }

    /// Total size of the dense transition tables in bytes — the price of
    /// the single-load fast path.
    pub fn table_bytes(&self) -> usize {
        self.tables.len() * std::mem::size_of::<u16>()
    }

    #[inline]
    fn bit(v: &[u64], i: u32) -> bool {
        v[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    fn set_bit(v: &mut [u64], i: u32) {
        v[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Advances one cycle; returns the current (latched) record-accept
    /// signal. Bit-identical to
    /// [`CompiledFilter::on_byte`](crate::evaluator::CompiledFilter::on_byte).
    #[inline]
    pub fn on_byte(&mut self, byte: u8) -> bool {
        self.stats.bytes_byte_serial += 1;
        self.fresh = false;
        let mut depth = 0u32;
        let mut is_close = false;
        let mut is_comma = false;
        if self.has_ctx {
            // One structural scan (shared StreamTracker: string mask +
            // depth + close/comma via the byte-class LUT), skipped wholesale
            // when no context op will read it.
            let info = self.tracker.on_byte(byte);
            depth = info.depth;
            is_close = info.is_close;
            is_comma = info.is_comma;
            // Snapshot latches: context pending-before checks need the
            // pre-cycle state of their children.
            self.prev.copy_from_slice(&self.latch);
        }
        self.step_primitives(byte);
        self.run_program(depth, is_close, is_comma)
    }

    /// Primitive sweep — flat loops, no dispatch; fire bits are ORed into
    /// the latch bitset.
    #[inline]
    fn step_primitives(&mut self, byte: u8) {
        for i in 0..self.sdfa_state.len() {
            let s = self.sdfa_state[i];
            let s = self.tables
                [self.sdfa_off[i] as usize + (s & STATE_MASK) as usize * 256 + byte as usize];
            self.sdfa_state[i] = s;
            if s & DENSE_ACCEPT_BIT != 0 {
                Self::set_bit(&mut self.latch, self.sdfa_node[i]);
            }
        }
        let num_byte = is_number_byte(byte);
        for i in 0..self.num_state.len() {
            if num_byte {
                let s = self.num_state[i];
                self.num_state[i] = self.tables
                    [self.num_off[i] as usize + (s & STATE_MASK) as usize * 256 + byte as usize];
                self.num_in_token[i] = true;
            } else if self.num_in_token[i] {
                // Token boundary: the automaton is evaluated, then rearmed.
                // (Outside tokens the state already sits at start.)
                if self.num_state[i] & DENSE_ACCEPT_BIT != 0 {
                    Self::set_bit(&mut self.latch, self.num_node[i]);
                }
                self.num_state[i] = self.num_start[i];
                self.num_in_token[i] = false;
            }
        }
        for i in 0..self.sub1_counter.len() {
            let hit = self.sub1_bitmap[i * 4 + (byte >> 6) as usize] & (1u64 << (byte & 63)) != 0;
            let c = if hit {
                self.sub1_counter[i].saturating_add(1)
            } else {
                0
            };
            self.sub1_counter[i] = c;
            if c >= self.sub1_target[i] {
                Self::set_bit(&mut self.latch, self.sub1_node[i]);
            }
        }
        for i in 0..self.subp_win.len() {
            let w = ((self.subp_win[i] << 8) | u64::from(byte)) & self.subp_win_mask[i];
            self.subp_win[i] = w;
            let off = self.subp_blocks_off[i] as usize;
            let len = self.subp_blocks_len[i] as usize;
            let hit = self.subp_blocks[off..off + len].contains(&w);
            let c = if hit {
                self.subp_counter[i].saturating_add(1)
            } else {
                0
            };
            self.subp_counter[i] = c;
            if c >= self.subp_target[i] {
                Self::set_bit(&mut self.latch, self.subp_node[i]);
            }
        }
        for ws in &mut self.wide_subs {
            if ws.matcher.on_byte(byte) {
                Self::set_bit(&mut self.latch, ws.node);
            }
        }
    }

    /// Node program: post-order, so children are final before their
    /// parent evaluates; latch updates are bitwise mask ops. The
    /// one-word case (≤ 64 nodes — every realistic filter) keeps the
    /// whole latch bitset in a register across the program
    /// ([`run_program_word`], shared with the block-scan fast path).
    /// Returns the root (record-accept) latch.
    #[inline]
    fn run_program(&mut self, depth: u32, is_close: bool, is_comma: bool) -> bool {
        if self.words == 1 {
            let l = run_program_word(
                &self.ops,
                &self.masks,
                &mut self.flag_level,
                self.latch[0],
                self.prev[0],
                ByteEvent {
                    depth,
                    is_close,
                    is_comma,
                },
            );
            self.latch[0] = l;
            return l & (1u64 << self.root) != 0;
        }
        run_program_multi(
            &self.ops,
            &self.masks,
            self.words,
            &mut self.latch,
            &self.prev,
            &mut self.flag_level,
            ByteEvent {
                depth,
                is_close,
                is_comma,
            },
        );
        Self::bit(&self.latch, self.root)
    }

    /// Record-boundary reset: latches, primitive state, structural state.
    pub fn reset(&mut self) {
        self.latch.fill(0);
        self.flag_level.fill(0);
        self.sdfa_state.copy_from_slice(&self.sdfa_start);
        self.num_state.copy_from_slice(&self.num_start);
        self.num_in_token.fill(false);
        self.sub1_counter.fill(0);
        self.subp_win.fill(0);
        self.subp_counter.fill(0);
        for ws in &mut self.wide_subs {
            ws.matcher.reset();
        }
        self.tracker.reset();
        self.fresh = true;
    }

    /// Whether the compiled program qualifies for the SWAR block-scan
    /// loop (one latch word, no wide substring units, packable sub1 run
    /// targets). Ineligible programs still work through [`Engine::on_block`]
    /// via the byte-serial fallback.
    pub fn block_scan_ready(&self) -> bool {
        self.block_ready
    }

    /// Records checked and rejected by the literal prefilter since
    /// compile: `(checked, rejected)`.
    pub fn prefilter_stats(&self) -> (u64, u64) {
        self.prefilter
            .as_ref()
            .map_or((0, 0), |pf| (pf.checked, pf.rejected))
    }

    /// Current adaptive state of the literal prefilter — see
    /// [`PrefilterStatus`] for what each state means for the reported
    /// hit rate.
    pub fn prefilter_status(&self) -> PrefilterStatus {
        match &self.prefilter {
            None => PrefilterStatus::Absent,
            Some(pf) if !pf.live => PrefilterStatus::Disabled,
            Some(pf) if pf.checked < Self::PREFILTER_PROBATION => PrefilterStatus::Probation,
            Some(_) => PrefilterStatus::Live,
        }
    }

    /// How many records the prefilter observes before deciding whether to
    /// stay enabled.
    pub const PREFILTER_PROBATION: u64 = 512;

    /// Advances a whole slice of record content at once; returns the
    /// latched record-accept signal after the last byte — exactly what a
    /// byte loop over [`Engine::on_byte`] would return (and `false` for an
    /// empty block, matching a loop that never ran).
    ///
    /// Two accelerations apply on top of the byte loop:
    ///
    /// * When the block is a whole record from a fresh reset, the literal
    ///   prefilter may prove `NoMatch` without scanning (state untouched —
    ///   a rejected record provably cannot latch the root, and any
    ///   trailing separator byte fed serially reproduces the same `false`
    ///   decision from the untouched state).
    /// * Eligible programs ([`Engine::block_scan_ready`]) run the SWAR
    ///   word loop: per-word classification and string-mask resolution,
    ///   packed sub1 counters, gated packed-substring and number-DFA
    ///   stepping, and the node program only on bytes where a fire signal
    ///   or an unmasked close/comma makes it observable.
    pub fn on_block(&mut self, block: &[u8]) -> bool {
        let was_fresh = std::mem::replace(&mut self.fresh, false);
        if was_fresh {
            self.stats.records += 1;
            if let Some(pf) = self.prefilter.as_mut().filter(|pf| pf.live) {
                pf.checked += 1;
                self.stats.prefilter_checked += 1;
                let rejected = pf.filter.rejects(block);
                if rejected {
                    pf.rejected += 1;
                    self.stats.prefilter_rejected += 1;
                }
                if pf.checked == Self::PREFILTER_PROBATION && pf.rejected == 0 {
                    // The stream never benefits; stop paying the scan.
                    pf.live = false;
                    self.stats.prefilter_disabled += 1;
                }
                if rejected {
                    self.stats.bytes_prefilter_skipped += block.len() as u64;
                    return false;
                }
            }
        }
        if self.block_ready {
            // The word loop consumes the aligned portion; the sub-word
            // tail goes through `on_byte`, which counts itself.
            self.stats.bytes_block += (block.len() & !(swar::WORD_BYTES - 1)) as u64;
            self.on_block_swar(block);
        } else {
            for &b in block {
                self.on_byte(b);
            }
        }
        Self::bit(&self.latch, self.root)
    }

    /// The SWAR word loop behind [`Engine::on_block`]. Scalar per-unit
    /// state is synced into packed registers on entry and back out before
    /// the byte-serial tail runs, so interleaving `on_block` and `on_byte`
    /// calls stays decision-identical to the pure byte loop.
    fn on_block_swar(&mut self, block: &[u8]) {
        const LANE_LO: u64 = 0x0101_0101_0101_0101;
        const LANE_HI: u64 = 0x8080_8080_8080_8080;
        let (mut in_string, mut pending_escape, mut depth) = self.tracker.state();
        let mut l = self.latch[0];
        let nsub1 = self.sub1_node.len();
        // Saturate the sub1 run counters into one byte per lane. Targets
        // are ≤ 126 and counters only grow within a run, so clamping at
        // 127 preserves every `counter ≥ target` comparison.
        let mut c1 = 0u64;
        for i in 0..nsub1 {
            c1 |= u64::from(self.sub1_counter[i].min(127)) << (8 * i);
        }
        // All number units share one token trajectory (`is_number_byte`
        // does not depend on the unit), so a single flag suffices.
        let mut in_token = self.num_in_token.first().is_some_and(|&t| t);
        // The packed windows are the same shift register under nested
        // masks; OR-ing them reconstructs the widest (full) window.
        let mut win64 = 0u64;
        for w in &self.subp_win {
            win64 |= w;
        }
        let nsubp = self.subp_node.len();
        let has_ctx = self.has_ctx;

        let mut chunks = block.chunks_exact(swar::WORD_BYTES);
        for chunk in chunks.by_ref() {
            let word = swar::load_word(chunk.try_into().expect("8-byte chunk"));
            // Context-free programs never read the structural facts; skip
            // the classifier exactly like the serial path skips the
            // tracker.
            let (wm, masked) = if has_ctx {
                let wm = swar::classify_word(word);
                let (masked, next) = swar::string_mask_word(
                    wm.quotes,
                    wm.backslashes,
                    swar::StringState {
                        in_string,
                        pending_escape,
                    },
                );
                in_string = next.in_string;
                pending_escape = next.pending_escape;
                (wm, masked)
            } else {
                (swar::WordMasks::default(), 0)
            };
            let structural = (wm.opens | wm.closes | wm.commas) & !masked;

            for (j, &byte) in chunk.iter().enumerate() {
                let mut fires = 0u64;
                if nsub1 != 0 {
                    let h = self.sub1_hits[byte as usize];
                    // Hit lanes count up (saturating at 127), miss lanes
                    // reset — the packed form of the serial run counter.
                    let mut c = (c1 & h) + (LANE_LO & h);
                    c -= (c & LANE_HI) >> 7;
                    c1 = c;
                    // Lane fires iff counter ≥ target; targets ≤ 127 keep
                    // the per-lane subtraction borrow-free.
                    let mut f = ((c | LANE_HI) - self.sub1_targets_packed) & LANE_HI;
                    while f != 0 {
                        let lane = f.trailing_zeros() as usize / 8;
                        f &= f - 1;
                        fires |= 1u64 << self.sub1_node[lane];
                    }
                }
                if nsubp != 0 {
                    win64 = (win64 << 8) | u64::from(byte);
                    for i in 0..nsubp {
                        let gate = self.subp_gate[i * 4 + (byte >> 6) as usize]
                            & (1u64 << (byte & 63))
                            != 0;
                        let hit = gate && {
                            let w = win64 & self.subp_win_mask[i];
                            let off = self.subp_blocks_off[i] as usize;
                            let len = self.subp_blocks_len[i] as usize;
                            self.subp_blocks[off..off + len].contains(&w)
                        };
                        let c = if hit {
                            self.subp_counter[i].saturating_add(1)
                        } else {
                            0
                        };
                        self.subp_counter[i] = c;
                        if c >= self.subp_target[i] {
                            fires |= 1u64 << self.subp_node[i];
                        }
                    }
                }
                if is_number_byte(byte) {
                    for i in 0..self.num_state.len() {
                        let s = self.num_state[i];
                        self.num_state[i] = self.tables[self.num_off[i] as usize
                            + (s & STATE_MASK) as usize * 256
                            + byte as usize];
                    }
                    in_token = true;
                } else if in_token {
                    for i in 0..self.num_state.len() {
                        if self.num_state[i] & DENSE_ACCEPT_BIT != 0 {
                            fires |= 1u64 << self.num_node[i];
                        }
                        self.num_state[i] = self.num_start[i];
                    }
                    in_token = false;
                }
                for i in 0..self.sdfa_state.len() {
                    let s = self.sdfa_state[i];
                    let s = self.tables[self.sdfa_off[i] as usize
                        + (s & STATE_MASK) as usize * 256
                        + byte as usize];
                    self.sdfa_state[i] = s;
                    if s & DENSE_ACCEPT_BIT != 0 {
                        fires |= 1u64 << self.sdfa_node[i];
                    }
                }

                let bit = 1u8 << j;
                let mut is_close = false;
                let mut is_comma = false;
                if structural & bit != 0 {
                    if wm.opens & bit != 0 {
                        depth += 1;
                    } else if wm.closes & bit != 0 {
                        is_close = true;
                    } else {
                        is_comma = true;
                    }
                }
                // The node program is a provable no-op on bytes with no
                // fire signal and no unmasked close/comma: And/Or latches
                // are closed under no new inputs, and the Ctx arm's
                // early-out covers the rest. Run it only when observable.
                if fires != 0 || is_close || is_comma {
                    let p = l;
                    l = run_program_word(
                        &self.ops,
                        &self.masks,
                        &mut self.flag_level,
                        l | fires,
                        p,
                        ByteEvent {
                            depth,
                            is_close,
                            is_comma,
                        },
                    );
                }
                if is_close {
                    depth = depth.saturating_sub(1);
                }
            }
        }

        // Sync packed state back out, then run the sub-word tail through
        // the byte-serial path from the synced state.
        self.latch[0] = l;
        for i in 0..nsub1 {
            self.sub1_counter[i] = ((c1 >> (8 * i)) & 0xff) as u32;
        }
        for i in 0..nsubp {
            self.subp_win[i] = win64 & self.subp_win_mask[i];
        }
        self.num_in_token.fill(in_token);
        self.tracker.restore(in_string, pending_escape, depth);
        for &byte in chunks.remainder() {
            self.on_byte(byte);
        }
    }
}

impl crate::backend::FilterBackend for Engine {
    fn compile(expr: &Expr) -> Self {
        Engine::compile(expr)
    }

    fn name(&self) -> &'static str {
        "engine"
    }

    fn expr(&self) -> &Expr {
        &self.expr
    }

    #[inline]
    fn on_byte(&mut self, byte: u8) -> bool {
        Engine::on_byte(self, byte)
    }

    #[inline]
    fn on_block(&mut self, block: &[u8]) -> bool {
        Engine::on_block(self, block)
    }

    fn reset(&mut self) {
        Engine::reset(self);
    }

    fn flush_telemetry(&mut self) {
        let s = std::mem::take(&mut self.stats);
        if s.is_empty() {
            return;
        }
        let m = crate::metrics::engine_metrics();
        m.records.add(s.records);
        m.bytes_block.add(s.bytes_block);
        m.bytes_byte_serial.add(s.bytes_byte_serial);
        m.bytes_prefilter_skipped.add(s.bytes_prefilter_skipped);
        m.prefilter_checked.add(s.prefilter_checked);
        m.prefilter_rejected.add(s.prefilter_rejected);
        m.prefilter_disabled.add(s.prefilter_disabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FilterBackend;
    use crate::evaluator::CompiledFilter;

    const LISTING1: &[u8] = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"},{"v":"713","u":"per","n":"light"},{"v":"305.01","u":"per","n":"dust"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1422748800000}"#;

    fn ctx_temp() -> Expr {
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ])
    }

    /// Per-byte differential check against the co-simulation model.
    fn assert_bytewise_equal(expr: &Expr, record: &[u8]) {
        let mut engine = Engine::compile(expr);
        let mut filter = CompiledFilter::compile(expr);
        engine.reset();
        filter.reset();
        for (i, &b) in record.iter().chain(b"\n").enumerate() {
            assert_eq!(
                engine.on_byte(b),
                filter.on_byte(b),
                "expr `{expr}` diverges at byte {i} of {:?}",
                String::from_utf8_lossy(record)
            );
        }
    }

    #[test]
    fn structural_context_rejects_listing1() {
        let mut e = Engine::compile(&ctx_temp());
        assert!(!e.accepts_record(LISTING1));
    }

    #[test]
    fn structural_context_accepts_true_match() {
        let mut e = Engine::compile(&ctx_temp());
        let rec = br#"{"e":[{"v":"21.4","u":"far","n":"temperature"},{"v":"99","u":"per","n":"humidity"}],"bt":1}"#;
        assert!(e.accepts_record(rec));
    }

    #[test]
    fn member_scope_key_value() {
        let e = Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        );
        let mut eng = Engine::compile(&e);
        assert!(!eng
            .accepts_record(br#"{"fare_amount":11.50,"tolls_amount":0.00,"total_amount":12.00}"#));
        assert!(eng
            .accepts_record(br#"{"fare_amount":11.50,"tolls_amount":5.33,"total_amount":17.33}"#));
    }

    #[test]
    fn filter_stream_per_record_decisions() {
        let mut e = Engine::compile(&Expr::int_range(1, 5));
        let stream = b"{\"a\":3}\n{\"a\":9}\n{\"a\":4}";
        assert_eq!(e.filter_stream(stream), vec![true, false, true]);
    }

    #[test]
    fn state_does_not_leak_across_records() {
        let mut e = Engine::compile(&Expr::and([
            Expr::substring(b"alpha", 2).unwrap(),
            Expr::substring(b"beta", 2).unwrap(),
        ]));
        let stream = b"{\"k\":\"alpha\"}\n{\"k\":\"beta\"}\n";
        assert_eq!(e.filter_stream(stream), vec![false, false]);
    }

    #[test]
    fn crlf_and_blank_line_framing_matches_filter() {
        let expr = Expr::int_range(1, 5);
        let mut e = Engine::compile(&expr);
        let mut f = CompiledFilter::compile(&expr);
        let stream = b"{\"a\":3}\r\n\r\n{\"a\":9}\n\n{\"a\":2}";
        assert_eq!(e.filter_stream(stream), f.filter_stream(stream));
        assert_eq!(e.filter_stream(stream), vec![true, false, true]);
    }

    // The broad differential zoo (every technique × adversarial records ×
    // generated corpora × proptests) lives in tests/engine_diff.rs; the
    // tests here cover engine-internal specifics only.

    #[test]
    fn program_view_is_well_formed_and_catches_mutations() {
        let e = Engine::compile(&ctx_temp());
        let view = e.program_view();
        assert!(view.check().is_empty(), "{:?}", view.check());
        assert_eq!(view.num_nodes, 3);
        assert_eq!(view.primitive_nodes(), vec![0, 1]);

        // Dropping a latch from the context's clear mask must be caught.
        let mut dropped = view.clone();
        let OpKindView::Ctx { clear_off, .. } = dropped.ops[0].kind else {
            panic!("root op is the context");
        };
        dropped.masks[clear_off as usize] &= !1u64;
        assert!(dropped
            .check()
            .iter()
            .any(|f| matches!(f, ProgramFault::LatchClearMismatch { .. })));

        // A root that is not the final node must be caught.
        let mut bad_root = view.clone();
        bad_root.root = 7;
        assert!(bad_root
            .check()
            .iter()
            .any(|f| matches!(f, ProgramFault::BadRoot { .. })));
    }

    #[test]
    fn block_scan_eligibility() {
        assert!(Engine::compile(&ctx_temp()).block_scan_ready());
        // Wide substring units (B > 8) fall back to the byte loop.
        let wide = Expr::substring(b"favourites_count", 9).unwrap();
        assert!(!Engine::compile(&wide).block_scan_ready());
        // Multi-word latch bitsets fall back too.
        let leaves: Vec<Expr> = (0..70).map(|i| Expr::int_range(i, i + 1)).collect();
        assert!(!Engine::compile(&Expr::Or(leaves)).block_scan_ready());
    }

    #[test]
    fn on_block_matches_byte_loop_paths() {
        // Both eligible and fallback programs, records straddling word
        // boundaries, strings with escapes and structural bytes.
        let exprs = [
            ctx_temp(),
            Expr::substring(b"favourites_count", 9).unwrap(),
            Expr::context_scoped(
                StructScope::Member,
                [
                    Expr::substring(b"tolls_amount", 2).unwrap(),
                    Expr::float_range("2.50", "18.00").unwrap(),
                ],
            ),
        ];
        let records: Vec<&[u8]> = vec![
            LISTING1,
            br#"{"e":[{"v":"21.4","u":"far","n":"temperature"}],"bt":1}"#,
            br#"{"fare_amount":11.50,"tolls_amount":5.33,"total_amount":17.33}"#,
            br#"{"k":"a\"}b","tolls_amount":3.00}"#,
            b"{}",
            b"",
        ];
        for expr in &exprs {
            for record in &records {
                let mut serial = Engine::compile(expr);
                serial.reset();
                let mut want = false;
                for &b in *record {
                    want = serial.on_byte(b);
                }
                let want = serial.on_byte(b'\n') || want;

                let mut block = Engine::compile(expr);
                block.reset();
                let last = block.on_block(record);
                let got = block.on_byte(b'\n') || last;
                assert_eq!(got, want, "expr `{expr}` on {record:?}");
            }
        }
    }

    #[test]
    fn prefilter_rejects_and_reports_stats() {
        let mut e = Engine::compile(&ctx_temp());
        assert!(!e.accepts_record(br#"{"nothing":"here"}"#));
        assert!(e.accepts_record(br#"{"e":[{"v":"21.4","n":"temperature"}],"bt":1}"#));
        let (checked, rejected) = e.prefilter_stats();
        assert_eq!(checked, 0, "accepts_record is byte-serial, no prefilter");
        assert_eq!(rejected, 0);

        // The stream path feeds whole records through on_block.
        let stream =
            b"{\"nothing\":1}\n{\"e\":[{\"v\":\"21.4\",\"n\":\"temperature\"}],\"bt\":1}\n";
        assert_eq!(e.filter_stream(stream), vec![false, true]);
        let (checked, rejected) = e.prefilter_stats();
        assert_eq!(checked, 2);
        assert_eq!(rejected, 1, "the needle-free record is proven NoMatch");
    }

    #[test]
    fn prefilter_disables_on_unselective_streams() {
        let mut e = Engine::compile(&Expr::substring(b"a", 1).unwrap());
        let hit = b"{\"a\":1}\n".repeat(Engine::PREFILTER_PROBATION as usize + 10);
        let n = e.filter_stream(&hit).len();
        assert_eq!(n, Engine::PREFILTER_PROBATION as usize + 10);
        let (checked, rejected) = e.prefilter_stats();
        assert_eq!(rejected, 0);
        assert_eq!(
            checked,
            Engine::PREFILTER_PROBATION,
            "prefilter stops paying for itself after probation"
        );
    }

    #[test]
    fn node_and_table_accounting() {
        let e = Engine::compile(&ctx_temp());
        assert_eq!(e.num_nodes(), 3, "two primitives + one context");
        assert!(e.table_bytes() > 0, "number automaton is table-backed");
    }

    #[test]
    fn many_nodes_cross_word_boundary() {
        // > 64 nodes forces multi-word bitsets through every mask path.
        let leaves: Vec<Expr> = (0..70).map(|i| Expr::int_range(i, i + 1)).collect();
        let expr = Expr::Or(leaves);
        let mut eng = Engine::compile(&expr);
        let mut f = CompiledFilter::compile(&expr);
        for rec in [&b"{\"a\":3}"[..], b"{\"a\":69}", b"{\"a\":200}"] {
            assert_eq!(eng.accepts_record(rec), f.accepts_record(rec));
        }
    }

    #[test]
    fn many_nodes_with_contexts_cross_word_boundary() {
        // > 64 nodes *with contexts* drives the multi-word Ctx arm
        // (pending_before word loop, clear-mask slicing, flag resets),
        // per-byte against the model.
        let pairs: Vec<Expr> = (0..30)
            .map(|i| {
                let key = format!("k{i}");
                Expr::context_scoped(
                    if i % 2 == 0 {
                        StructScope::Object
                    } else {
                        StructScope::Member
                    },
                    [
                        Expr::substring(key.as_bytes(), 1).unwrap(),
                        Expr::int_range(i, i + 10),
                    ],
                )
            })
            .collect();
        let expr = Expr::Or(pairs); // 30 × 3 + 1 = 91 nodes
        assert!(Engine::compile(&expr).num_nodes() > 64);
        let records: Vec<&[u8]> = vec![
            br#"{"k5":7,"k6":99}"#,
            br#"{"e":[{"k12":13},{"k12":99}],"x":1}"#,
            br#"{"k29":"39","other":[1,2
,3]}"#,
            br#"{"nothing":true}"#,
            b"}{,\"k1\":2,",
        ];
        for record in &records {
            assert_bytewise_equal(&expr, record);
        }
    }
}

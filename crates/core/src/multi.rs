//! Multi-query fused execution: scan the stream once, answer every query.
//!
//! The paper's deployment model is many resident filter queries screening
//! one raw JSON stream (§IV-B); Mitra et al. showed for XML that the win
//! at scale comes from sharing the document scan across all concurrent
//! profiles. [`MultiEngine`] is that sharing step for the software stack:
//! a batch of expressions compiles into **one fused execution plan** that
//! runs the expensive per-byte work — framing, byte classification,
//! string masking, the SWAR block scan — exactly once per stream, and
//! feeds a **deduplicated pool of matcher units** whose fire events drive
//! per-query flat-program lanes.
//!
//! * **Unit pool** — identical primitive units appearing in several
//!   queries (same key automaton, same number-range DFA, same substring
//!   comparator bank) are instantiated once. Deduplication is a
//!   common-subexpression census keyed on the deterministic builder
//!   output the static verifier already exploits: two units share a pool
//!   slot iff their dense tables / bitmaps / packed blocks are
//!   bit-identical, so sharing can never change a decision.
//! * **Lanes** — every query keeps its own post-order flat program,
//!   latch bitset and context flag levels. A pool unit carries a
//!   subscriber list; when it fires, it ORs the fire bit into each
//!   subscribing lane's latches.
//! * **Verdict bitsets** — per record, the drivers emit one `u64` word
//!   per 64 queries ([`BatchVerdicts`]), the batched form of the paper's
//!   one-match-bit-per-record DMA write-back.
//!
//! [`MultiBackend`] is the batch counterpart of
//! [`FilterBackend`](crate::backend::FilterBackend): the same
//! `LimitedFramer` framing and quarantine semantics, the same
//! byte-serial oracle/block-driver pair, generalized to bitset verdicts.
//! The differential suite (`tests/multi_diff.rs`) holds every fused
//! decision byte-identical to N independent single-query engines.
//!
//! ```
//! use rfjson_core::multi::{MultiBackend, MultiEngine};
//! use rfjson_core::{Expr, IngestLimits};
//!
//! let queries = vec![
//!     Expr::context([Expr::substring(b"temperature", 1)?, Expr::float_range("0.7", "35.1")?]),
//!     Expr::context([Expr::substring(b"humidity", 1)?, Expr::int_range(10, 90)]),
//! ];
//! let mut fused = MultiEngine::compile_batch(&queries);
//! let stream = b"{\"e\":[{\"v\":\"21.0\",\"n\":\"temperature\"}]}\n{\"e\":[{\"v\":\"55\",\"n\":\"humidity\"}]}\n";
//! let verdicts = fused.filter_stream_verdicts(stream, IngestLimits::UNLIMITED);
//! assert!(verdicts.matched(0, 0) && !verdicts.matched(0, 1));
//! assert!(!verdicts.matched(1, 0) && verdicts.matched(1, 1));
//! # Ok::<(), rfjson_core::expr::ExprError>(())
//! ```

use crate::backend::{CompileError, FilterBackend};
use crate::engine::{
    count_nodes, run_program_multi, run_program_word, Builder, ByteEvent, DfaUnitView, Op,
    ProgramView,
};
use crate::evaluator::StreamTracker;
use crate::expr::Expr;
use crate::primitive::{FireFilter, SubstringMatcher};
use rfjson_jsonstream::frame::{
    is_blank_line, trim_cr, IngestLimits, LimitedAction, LimitedFramer, SkipReason, Verdict,
};
use rfjson_jsonstream::swar;
use rfjson_jsonstream::telemetry::FramingTally;
use rfjson_redfa::range::is_number_byte;
use rfjson_redfa::DENSE_ACCEPT_BIT;
use std::collections::HashMap;

/// State-index part of a dense state word (mirror of the engine's).
const STATE_MASK: u16 = !DENSE_ACCEPT_BIT;

/// Per-kind primitive unit counts of a plan (or of one query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCounts {
    /// Exact-string / window DFA units.
    pub string_dfas: usize,
    /// Number-range DFA units.
    pub number_dfas: usize,
    /// Single-byte substring units (B = 1).
    pub sub1: usize,
    /// Packed substring units (2 ≤ B ≤ 8).
    pub subp: usize,
    /// Wide substring units (B > 8).
    pub wide: usize,
}

impl UnitCounts {
    /// Total units across all kinds.
    pub fn total(&self) -> usize {
        self.string_dfas + self.number_dfas + self.sub1 + self.subp + self.wide
    }
}

/// Unit-sharing census of a fused plan: what each query would have
/// instantiated alone versus what the deduplicated pool actually holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Units each query's expression demands, in batch order.
    pub per_query: Vec<UnitCounts>,
    /// Units the deduplicated pool instantiates.
    pub pool: UnitCounts,
}

impl ShareStats {
    /// Units the queries demand in total (the serial instantiation cost).
    pub fn total_units(&self) -> usize {
        self.per_query.iter().map(UnitCounts::total).sum()
    }

    /// Units saved by deduplication.
    pub fn shared_units(&self) -> usize {
        self.total_units() - self.pool.total()
    }
}

/// One subscription: pool unit fires → OR a bit into `lane`'s latches.
#[derive(Debug, Clone, Copy)]
struct Sub {
    lane: u32,
    node: u32,
}

/// Dedup census key — the deterministic builder output of one unit. Two
/// units sharing a key are bit-identical executors, so pooling them is
/// decision-preserving by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum UnitKey {
    StrDfa {
        table: Vec<u16>,
        start: u16,
    },
    NumDfa {
        table: Vec<u16>,
        start: u16,
    },
    Sub1 {
        bitmap: [u64; 4],
        target: u32,
    },
    Subp {
        mask: u64,
        blocks: Vec<u64>,
        target: u32,
    },
    Wide {
        needle: Vec<u8>,
        block: usize,
    },
}

/// A pooled wide substring unit (B > 8): the reference matcher stepped
/// directly, with its subscriber list.
#[derive(Debug, Clone)]
struct WideUnit {
    matcher: SubstringMatcher,
    subs: Vec<Sub>,
}

/// One query's flat program plus its private latch state.
#[derive(Debug, Clone)]
struct Lane {
    ops: Vec<Op>,
    masks: Vec<u64>,
    words: usize,
    root: u32,
    has_ctx: bool,
    num_ctxs: u32,
    /// `(pool index, latch node)` per unit kind, in compile order —
    /// retained for [`MultiEngine::lane_views`].
    sdfa_units: Vec<(u32, u32)>,
    num_units: Vec<(u32, u32)>,
    sub1_units: Vec<(u32, u32)>,
    subp_units: Vec<(u32, u32)>,
    wide_units: Vec<(u32, u32)>,
    // ---- mutable per-stream state ----
    latch: Vec<u64>,
    prev: Vec<u64>,
    flag_level: Vec<u32>,
}

impl Lane {
    #[inline]
    fn run_program(&mut self, ev: ByteEvent) {
        if self.words == 1 {
            self.latch[0] = run_program_word(
                &self.ops,
                &self.masks,
                &mut self.flag_level,
                self.latch[0],
                self.prev[0],
                ev,
            );
        } else {
            run_program_multi(
                &self.ops,
                &self.masks,
                self.words,
                &mut self.latch,
                &self.prev,
                &mut self.flag_level,
                ev,
            );
        }
    }

    #[inline]
    fn accepts(&self) -> bool {
        self.latch[self.root as usize / 64] & (1u64 << (self.root % 64)) != 0
    }
}

#[inline]
fn fire(lanes: &mut [Lane], subs: &[Sub]) {
    for sub in subs {
        let latch = &mut lanes[sub.lane as usize].latch;
        latch[sub.node as usize / 64] |= 1u64 << (sub.node % 64);
    }
}

/// The fused multi-query execution engine: one shared scan, a
/// deduplicated unit pool, one flat-program lane per query. See the
/// [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct MultiEngine {
    exprs: Vec<Expr>,
    lanes: Vec<Lane>,
    /// Any lane has a context op — gates the shared structural scan.
    any_ctx: bool,
    share: ShareStats,

    // ---- deduplicated unit pool (immutable after compile) ----
    /// Concatenated dense tables of all pooled DFA units.
    tables: Vec<u16>,
    sdfa_off: Vec<u32>,
    sdfa_start: Vec<u16>,
    sdfa_subs: Vec<Vec<Sub>>,
    num_off: Vec<u32>,
    num_start: Vec<u16>,
    num_subs: Vec<Vec<Sub>>,
    sub1_bitmap: Vec<u64>,
    sub1_target: Vec<u32>,
    sub1_subs: Vec<Vec<Sub>>,
    subp_win_mask: Vec<u64>,
    subp_blocks_off: Vec<u32>,
    subp_blocks_len: Vec<u32>,
    subp_blocks: Vec<u64>,
    subp_target: Vec<u32>,
    subp_subs: Vec<Vec<Sub>>,
    wide_units: Vec<WideUnit>,

    // ---- block-scan fast path (immutable after compile) ----
    block_ready: bool,
    /// Banked 256-entry packed hit tables for the sub1 pool: bank `k`
    /// packs units `8k..8k+8`, entry `b` holds `0xFF` in lane `i` iff
    /// byte `b` is in unit `8k+i`'s membership set.
    sub1_hits: Vec<u64>,
    /// Per-bank packed run targets (unused lanes hold 127).
    sub1_targets_packed: Vec<u64>,
    /// 256-bit union of every sub1 unit's membership set: a byte outside
    /// it resets **all** run counters at once, skipping the bank loop —
    /// a cross-query gate no serial engine can have.
    sub1_any: [u64; 4],
    /// 256-bit last-byte gate per packed substring unit.
    subp_gate: Vec<u64>,
    /// 256-bit union of all packed-substring last-byte gates (same
    /// skip-the-pool trick as [`MultiEngine::sub1_any`]).
    subp_any: [u64; 4],

    // ---- mutable per-stream state ----
    /// Telemetry accumulated in plain locals on the hot path and flushed
    /// to the global registry once per stream (`flush_telemetry`).
    stats: MultiStats,
    sdfa_state: Vec<u16>,
    num_state: Vec<u16>,
    /// All number units share one token trajectory, so one flag covers
    /// the whole pool.
    num_in_token: bool,
    sub1_counter: Vec<u32>,
    subp_win: Vec<u64>,
    subp_counter: Vec<u32>,
    /// Scratch: per-lane fire words accumulated inside the SWAR loop
    /// (lanes are single-word there by eligibility).
    lane_fires: Vec<u64>,
    tracker: StreamTracker,
}

/// Per-stream telemetry the fused engine accumulates in plain `u64`
/// fields — no atomics on the byte path. Drained into the global
/// `multi.*` counters by `flush_telemetry`, which the batch stream
/// drivers call once per stream.
#[derive(Debug, Clone, Copy, Default)]
struct MultiStats {
    /// Bytes scanned by the fused SWAR word loop (aligned portion).
    bytes_block: u64,
    /// Bytes through the fused serial path (fallback batches, tails,
    /// separators).
    bytes_byte_serial: u64,
    /// Words where the pooled sub1 bank loop was gate-skipped.
    sub1_gate_skips: u64,
    /// Bytes where the pooled packed-substring scan was gate-skipped.
    subp_gate_skips: u64,
}

impl MultiStats {
    fn is_empty(&self) -> bool {
        self.bytes_block == 0
            && self.bytes_byte_serial == 0
            && self.sub1_gate_skips == 0
            && self.subp_gate_skips == 0
    }
}

impl MultiEngine {
    /// Compiles a batch of expressions into one fused plan.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or any expression fails
    /// [`Expr::validate`] — use [`MultiEngine::try_compile_batch`] for
    /// user-supplied batches.
    pub fn compile_batch(exprs: &[Expr]) -> MultiEngine {
        Self::try_compile_batch(exprs).expect("batch must be non-empty and well-formed")
    }

    /// Fallible form of [`MultiEngine::compile_batch`].
    ///
    /// # Errors
    ///
    /// [`CompileError::Backend`] for an empty batch;
    /// [`CompileError::InvalidExpr`] if any expression fails
    /// [`Expr::validate`].
    pub fn try_compile_batch(exprs: &[Expr]) -> Result<MultiEngine, CompileError> {
        if exprs.is_empty() {
            return Err(CompileError::Backend {
                backend: "multi-engine",
                reason: "a batch needs at least one query".into(),
            });
        }
        for expr in exprs {
            expr.validate()?;
        }
        let mut me = MultiEngine {
            exprs: exprs.to_vec(),
            lanes: Vec::new(),
            any_ctx: false,
            share: ShareStats::default(),
            tables: Vec::new(),
            sdfa_off: Vec::new(),
            sdfa_start: Vec::new(),
            sdfa_subs: Vec::new(),
            num_off: Vec::new(),
            num_start: Vec::new(),
            num_subs: Vec::new(),
            sub1_bitmap: Vec::new(),
            sub1_target: Vec::new(),
            sub1_subs: Vec::new(),
            subp_win_mask: Vec::new(),
            subp_blocks_off: Vec::new(),
            subp_blocks_len: Vec::new(),
            subp_blocks: Vec::new(),
            subp_target: Vec::new(),
            subp_subs: Vec::new(),
            wide_units: Vec::new(),
            block_ready: false,
            sub1_hits: Vec::new(),
            sub1_targets_packed: Vec::new(),
            sub1_any: [0; 4],
            subp_gate: Vec::new(),
            subp_any: [0; 4],
            stats: MultiStats::default(),
            sdfa_state: Vec::new(),
            num_state: Vec::new(),
            num_in_token: false,
            sub1_counter: Vec::new(),
            subp_win: Vec::new(),
            subp_counter: Vec::new(),
            lane_fires: Vec::new(),
            tracker: StreamTracker::new(),
        };
        let mut keys: HashMap<UnitKey, u32> = HashMap::new();
        for (q, expr) in exprs.iter().enumerate() {
            me.add_lane(q as u32, expr, &mut keys);
        }
        me.finish_compile();
        #[cfg(debug_assertions)]
        for (q, view) in me.lane_views().iter().enumerate() {
            let faults = view.check();
            debug_assert!(
                faults.is_empty(),
                "fused lane {q} is ill-formed for `{}`: {faults:?}",
                me.exprs[q]
            );
        }
        Ok(me)
    }

    /// Runs the deterministic builder for one query and merges its units
    /// into the pool, deduplicating by [`UnitKey`].
    fn add_lane(&mut self, q: u32, expr: &Expr, keys: &mut HashMap<UnitKey, u32>) {
        let num_nodes = count_nodes(expr);
        let words = num_nodes.div_ceil(64);
        let mut b = Builder {
            words,
            ..Builder::default()
        };
        let root = b.visit(expr);
        debug_assert_eq!(b.next_node as usize, num_nodes);

        // Dense tables of both DFA kinds interleave in `b.tables` in
        // visit order; each unit's slice runs to the next-larger offset.
        let mut offs: Vec<u32> = b.sdfa_off.iter().chain(&b.num_off).copied().collect();
        offs.sort_unstable();
        let slice_len = |off: u32| -> usize {
            let next = offs.partition_point(|&o| o <= off);
            offs.get(next).map_or(b.tables.len(), |&o| o as usize) - off as usize
        };

        let mut lane = Lane {
            words,
            root,
            has_ctx: b.next_ctx > 0,
            num_ctxs: b.next_ctx,
            ops: b.ops,
            masks: b.masks,
            sdfa_units: Vec::new(),
            num_units: Vec::new(),
            sub1_units: Vec::new(),
            subp_units: Vec::new(),
            wide_units: Vec::new(),
            latch: vec![0; words],
            prev: vec![0; words],
            flag_level: vec![0; b.next_ctx as usize],
        };
        self.any_ctx |= lane.has_ctx;
        let mut counts = UnitCounts::default();

        for (i, &node) in b.sdfa_node.iter().enumerate() {
            let off = b.sdfa_off[i] as usize;
            let table = &b.tables[off..off + slice_len(b.sdfa_off[i])];
            let key = UnitKey::StrDfa {
                table: table.to_vec(),
                start: b.sdfa_start[i],
            };
            let idx = match keys.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.sdfa_off.len() as u32;
                    self.sdfa_off.push(self.tables.len() as u32);
                    self.tables.extend_from_slice(table);
                    self.sdfa_start.push(b.sdfa_start[i]);
                    self.sdfa_subs.push(Vec::new());
                    keys.insert(key, idx);
                    idx
                }
            };
            self.sdfa_subs[idx as usize].push(Sub { lane: q, node });
            lane.sdfa_units.push((idx, node));
            counts.string_dfas += 1;
        }
        for (i, &node) in b.num_node.iter().enumerate() {
            let off = b.num_off[i] as usize;
            let table = &b.tables[off..off + slice_len(b.num_off[i])];
            let key = UnitKey::NumDfa {
                table: table.to_vec(),
                start: b.num_start[i],
            };
            let idx = match keys.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.num_off.len() as u32;
                    self.num_off.push(self.tables.len() as u32);
                    self.tables.extend_from_slice(table);
                    self.num_start.push(b.num_start[i]);
                    self.num_subs.push(Vec::new());
                    keys.insert(key, idx);
                    idx
                }
            };
            self.num_subs[idx as usize].push(Sub { lane: q, node });
            lane.num_units.push((idx, node));
            counts.number_dfas += 1;
        }
        for (i, &node) in b.sub1_node.iter().enumerate() {
            let bitmap: [u64; 4] = b.sub1_bitmap[i * 4..i * 4 + 4]
                .try_into()
                .expect("4 words per sub1 bitmap");
            let key = UnitKey::Sub1 {
                bitmap,
                target: b.sub1_target[i],
            };
            let idx = match keys.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.sub1_target.len() as u32;
                    self.sub1_bitmap.extend_from_slice(&bitmap);
                    self.sub1_target.push(b.sub1_target[i]);
                    self.sub1_subs.push(Vec::new());
                    keys.insert(key, idx);
                    idx
                }
            };
            self.sub1_subs[idx as usize].push(Sub { lane: q, node });
            lane.sub1_units.push((idx, node));
            counts.sub1 += 1;
        }
        for (i, &node) in b.subp_node.iter().enumerate() {
            let off = b.subp_blocks_off[i] as usize;
            let len = b.subp_blocks_len[i] as usize;
            let blocks = b.subp_blocks[off..off + len].to_vec();
            let key = UnitKey::Subp {
                mask: b.subp_win_mask[i],
                blocks: blocks.clone(),
                target: b.subp_target[i],
            };
            let idx = match keys.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.subp_target.len() as u32;
                    self.subp_win_mask.push(b.subp_win_mask[i]);
                    self.subp_blocks_off.push(self.subp_blocks.len() as u32);
                    self.subp_blocks_len.push(len as u32);
                    self.subp_blocks.extend_from_slice(&blocks);
                    self.subp_target.push(b.subp_target[i]);
                    self.subp_subs.push(Vec::new());
                    keys.insert(key, idx);
                    idx
                }
            };
            self.subp_subs[idx as usize].push(Sub { lane: q, node });
            lane.subp_units.push((idx, node));
            counts.subp += 1;
        }
        for ws in &b.wide_subs {
            let key = UnitKey::Wide {
                needle: ws.matcher.needle().to_vec(),
                block: ws.matcher.block_length(),
            };
            let idx = match keys.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.wide_units.len() as u32;
                    self.wide_units.push(WideUnit {
                        matcher: ws.matcher.clone(),
                        subs: Vec::new(),
                    });
                    keys.insert(key, idx);
                    idx
                }
            };
            self.wide_units[idx as usize].subs.push(Sub {
                lane: q,
                node: ws.node,
            });
            lane.wide_units.push((idx, ws.node));
            counts.wide += 1;
        }

        self.share.per_query.push(counts);
        self.lanes.push(lane);
    }

    /// Finalizes pool state and derives the block-scan tables.
    fn finish_compile(&mut self) {
        self.sdfa_state = self.sdfa_start.clone();
        self.num_state = self.num_start.clone();
        self.sub1_counter = vec![0; self.sub1_target.len()];
        self.subp_win = vec![0; self.subp_win_mask.len()];
        self.subp_counter = vec![0; self.subp_win_mask.len()];
        self.lane_fires = vec![0; self.lanes.len()];
        self.share.pool = UnitCounts {
            string_dfas: self.sdfa_off.len(),
            number_dfas: self.num_off.len(),
            sub1: self.sub1_target.len(),
            subp: self.subp_target.len(),
            wide: self.wide_units.len(),
        };

        // Block-scan eligibility mirrors the single-query engine, with
        // the sub1 counters generalized to banks of 8 packed lanes: up
        // to 64 pooled sub1 units keep the word-at-a-time path.
        let nsub1 = self.sub1_target.len();
        self.block_ready = self.lanes.iter().all(|l| l.words == 1)
            && self.wide_units.is_empty()
            && nsub1 <= 64
            && self.sub1_target.iter().all(|&t| t <= 126);
        if !self.block_ready {
            return;
        }
        let banks = nsub1.div_ceil(8);
        self.sub1_hits = vec![0u64; banks * 256];
        for (i, bitmap) in self.sub1_bitmap.chunks_exact(4).enumerate() {
            let (bank, slot) = (i / 8, i % 8);
            for byte in 0..256usize {
                if bitmap[byte >> 6] & (1u64 << (byte & 63)) != 0 {
                    self.sub1_hits[bank * 256 + byte] |= 0xffu64 << (8 * slot);
                }
            }
        }
        self.sub1_targets_packed = vec![0u64; banks];
        for (bank, packed) in self.sub1_targets_packed.iter_mut().enumerate() {
            for slot in 0..8usize {
                let t = self
                    .sub1_target
                    .get(bank * 8 + slot)
                    .copied()
                    .unwrap_or(127);
                *packed |= u64::from(t) << (8 * slot);
            }
        }
        for (i, bitmap) in self.sub1_bitmap.chunks_exact(4).enumerate() {
            let _ = i;
            for (w, &b) in self.sub1_any.iter_mut().zip(bitmap) {
                *w |= b;
            }
        }
        self.subp_gate = vec![0u64; self.subp_target.len() * 4];
        for i in 0..self.subp_target.len() {
            let off = self.subp_blocks_off[i] as usize;
            let len = self.subp_blocks_len[i] as usize;
            for &blk in &self.subp_blocks[off..off + len] {
                let last = (blk & 0xff) as usize;
                self.subp_gate[i * 4 + (last >> 6)] |= 1u64 << (last & 63);
                self.subp_any[last >> 6] |= 1u64 << (last & 63);
            }
        }
    }

    /// The batch's source expressions, in lane order.
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.lanes.len()
    }

    /// The unit-sharing census: per-query demand vs. pooled instances.
    pub fn share_stats(&self) -> &ShareStats {
        &self.share
    }

    /// Whether [`MultiEngine::on_block`] may take the SWAR word loop
    /// (every lane single-word, no wide units, ≤ 64 pooled sub1 units
    /// with packable targets). Ineligible batches still work through the
    /// byte-serial fallback.
    pub fn block_scan_ready(&self) -> bool {
        self.block_ready
    }

    /// Per-lane program snapshots for static verification. Each view's
    /// DFA unit offsets point into the **shared** pool tables, so the
    /// verifier's stored-table-vs-fresh-derivation check proves that
    /// deduplication never merged two different automata.
    pub fn lane_views(&self) -> Vec<ProgramView> {
        self.lanes
            .iter()
            .map(|lane| ProgramView {
                num_nodes: lane.root + 1,
                words: lane.words,
                root: lane.root,
                ops: lane.ops.iter().map(Op::view).collect(),
                masks: lane.masks.clone(),
                num_ctxs: lane.num_ctxs,
                tables: self.tables.clone(),
                string_dfas: lane
                    .sdfa_units
                    .iter()
                    .map(|&(idx, node)| DfaUnitView {
                        table_off: self.sdfa_off[idx as usize],
                        start: self.sdfa_start[idx as usize],
                        node,
                    })
                    .collect(),
                number_dfas: lane
                    .num_units
                    .iter()
                    .map(|&(idx, node)| DfaUnitView {
                        table_off: self.num_off[idx as usize],
                        start: self.num_start[idx as usize],
                        node,
                    })
                    .collect(),
                sub1_nodes: lane.sub1_units.iter().map(|&(_, n)| n).collect(),
                subp_nodes: lane.subp_units.iter().map(|&(_, n)| n).collect(),
                wide_nodes: lane.wide_units.iter().map(|&(_, n)| n).collect(),
            })
            .collect()
    }

    /// Advances every lane one cycle over one shared scan of the byte.
    pub fn on_byte(&mut self, byte: u8) {
        self.stats.bytes_byte_serial += 1;
        let mut ev = ByteEvent {
            depth: 0,
            is_close: false,
            is_comma: false,
        };
        if self.any_ctx {
            let info = self.tracker.on_byte(byte);
            ev = ByteEvent {
                depth: info.depth,
                is_close: info.is_close,
                is_comma: info.is_comma,
            };
            for lane in &mut self.lanes {
                if lane.has_ctx {
                    lane.prev.copy_from_slice(&lane.latch);
                }
            }
        }
        self.step_pool(byte);
        for lane in &mut self.lanes {
            lane.run_program(ev);
        }
    }

    /// Pool sweep: steps every unit once and ORs its fire bit into each
    /// subscriber lane's latches.
    #[inline]
    fn step_pool(&mut self, byte: u8) {
        for i in 0..self.sdfa_state.len() {
            let s = self.sdfa_state[i];
            let s = self.tables
                [self.sdfa_off[i] as usize + (s & STATE_MASK) as usize * 256 + byte as usize];
            self.sdfa_state[i] = s;
            if s & DENSE_ACCEPT_BIT != 0 {
                fire(&mut self.lanes, &self.sdfa_subs[i]);
            }
        }
        if is_number_byte(byte) {
            for i in 0..self.num_state.len() {
                let s = self.num_state[i];
                self.num_state[i] = self.tables
                    [self.num_off[i] as usize + (s & STATE_MASK) as usize * 256 + byte as usize];
            }
            self.num_in_token = !self.num_state.is_empty();
        } else if self.num_in_token {
            for i in 0..self.num_state.len() {
                if self.num_state[i] & DENSE_ACCEPT_BIT != 0 {
                    fire(&mut self.lanes, &self.num_subs[i]);
                }
                self.num_state[i] = self.num_start[i];
            }
            self.num_in_token = false;
        }
        for i in 0..self.sub1_counter.len() {
            let hit = self.sub1_bitmap[i * 4 + (byte >> 6) as usize] & (1u64 << (byte & 63)) != 0;
            let c = if hit {
                self.sub1_counter[i].saturating_add(1)
            } else {
                0
            };
            self.sub1_counter[i] = c;
            if c >= self.sub1_target[i] {
                fire(&mut self.lanes, &self.sub1_subs[i]);
            }
        }
        for i in 0..self.subp_win.len() {
            let w = ((self.subp_win[i] << 8) | u64::from(byte)) & self.subp_win_mask[i];
            self.subp_win[i] = w;
            let off = self.subp_blocks_off[i] as usize;
            let len = self.subp_blocks_len[i] as usize;
            let hit = self.subp_blocks[off..off + len].contains(&w);
            let c = if hit {
                self.subp_counter[i].saturating_add(1)
            } else {
                0
            };
            self.subp_counter[i] = c;
            if c >= self.subp_target[i] {
                fire(&mut self.lanes, &self.subp_subs[i]);
            }
        }
        for i in 0..self.wide_units.len() {
            if self.wide_units[i].matcher.on_byte(byte) {
                for s in 0..self.wide_units[i].subs.len() {
                    let sub = self.wide_units[i].subs[s];
                    let latch = &mut self.lanes[sub.lane as usize].latch;
                    latch[sub.node as usize / 64] |= 1u64 << (sub.node % 64);
                }
            }
        }
    }

    /// Advances a whole slice of record content through every lane at
    /// once — exactly what a byte loop over [`MultiEngine::on_byte`]
    /// would do, with the SWAR word loop when the batch is eligible.
    pub fn on_block(&mut self, block: &[u8]) {
        if self.block_ready {
            // The word loop consumes the aligned portion; the sub-word
            // tail goes through `on_byte`, which counts itself.
            self.stats.bytes_block += (block.len() & !(swar::WORD_BYTES - 1)) as u64;
            self.on_block_swar(block);
        } else {
            for &b in block {
                self.on_byte(b);
            }
        }
    }

    /// The SWAR word loop: one classification and string-mask resolution
    /// per 8-byte word shared by every lane, banked packed sub1
    /// counters, gated packed-substring and number-DFA stepping, and
    /// per-lane programs run only on bytes where that lane observes a
    /// fire or (for context lanes) an unmasked close/comma.
    fn on_block_swar(&mut self, block: &[u8]) {
        const LANE_LO: u64 = 0x0101_0101_0101_0101;
        const LANE_HI: u64 = 0x8080_8080_8080_8080;
        let (mut in_string, mut pending_escape, mut depth) = self.tracker.state();
        let nsub1 = self.sub1_target.len();
        let banks = nsub1.div_ceil(8);
        // Saturate the sub1 run counters into one byte per packed lane
        // (targets ≤ 126 keep every `counter ≥ target` comparison exact).
        let mut c1 = [0u64; 8];
        for i in 0..nsub1 {
            c1[i / 8] |= u64::from(self.sub1_counter[i].min(127)) << (8 * (i % 8));
        }
        let mut in_token = self.num_in_token;
        // The packed windows are one shift register under nested masks.
        let mut win64 = 0u64;
        for w in &self.subp_win {
            win64 |= w;
        }
        let nsubp = self.subp_target.len();
        let any_ctx = self.any_ctx;
        let sub1_any = self.sub1_any;
        let subp_any = self.subp_any;
        let mut subp_live = self.subp_counter.iter().any(|&c| c != 0);
        // Gate-skip tallies (one local add per skipped byte, folded into
        // `stats` at sync-out): how often the cross-query any-unit gates
        // actually save the pooled scans.
        let mut sub1_skips = 0u64;
        let mut subp_skips = 0u64;

        let mut chunks = block.chunks_exact(swar::WORD_BYTES);
        for chunk in chunks.by_ref() {
            let word = swar::load_word(chunk.try_into().expect("8-byte chunk"));
            let (wm, masked) = if any_ctx {
                let wm = swar::classify_word(word);
                let (masked, next) = swar::string_mask_word(
                    wm.quotes,
                    wm.backslashes,
                    swar::StringState {
                        in_string,
                        pending_escape,
                    },
                );
                in_string = next.in_string;
                pending_escape = next.pending_escape;
                (wm, masked)
            } else {
                (swar::WordMasks::default(), 0)
            };
            let structural = (wm.opens | wm.closes | wm.commas) & !masked;

            for (j, &byte) in chunk.iter().enumerate() {
                let mut fired = false;
                let gate_word = (byte >> 6) as usize;
                let gate_bit = 1u64 << (byte & 63);
                // Any-unit gate: a byte in no sub1 membership set resets
                // every packed counter at once (no fire is possible since
                // all run targets are ≥ 1), skipping the bank loop.
                if sub1_any[gate_word] & gate_bit != 0 {
                    for (bank, c1b) in c1.iter_mut().enumerate().take(banks) {
                        let h = self.sub1_hits[bank * 256 + byte as usize];
                        let mut c = (*c1b & h) + (LANE_LO & h);
                        c -= (c & LANE_HI) >> 7;
                        *c1b = c;
                        let mut f = ((c | LANE_HI) - self.sub1_targets_packed[bank]) & LANE_HI;
                        while f != 0 {
                            let slot = f.trailing_zeros() as usize / 8;
                            f &= f - 1;
                            for sub in &self.sub1_subs[bank * 8 + slot] {
                                self.lane_fires[sub.lane as usize] |= 1u64 << sub.node;
                            }
                            fired = true;
                        }
                    }
                } else {
                    sub1_skips += u64::from(nsub1 != 0);
                    for bank in c1.iter_mut().take(banks) {
                        *bank = 0;
                    }
                }
                if nsubp != 0 {
                    win64 = (win64 << 8) | u64::from(byte);
                    // Same trick for the packed units: a byte that is no
                    // unit's last needle byte misses every gate, so all
                    // counters reset and the per-unit scan is skipped.
                    if subp_any[gate_word] & gate_bit != 0 {
                        for i in 0..nsubp {
                            let gate = self.subp_gate[i * 4 + gate_word] & gate_bit != 0;
                            let hit = gate && {
                                let w = win64 & self.subp_win_mask[i];
                                let off = self.subp_blocks_off[i] as usize;
                                let len = self.subp_blocks_len[i] as usize;
                                self.subp_blocks[off..off + len].contains(&w)
                            };
                            let c = if hit {
                                self.subp_counter[i].saturating_add(1)
                            } else {
                                0
                            };
                            self.subp_counter[i] = c;
                            if c >= self.subp_target[i] {
                                for sub in &self.subp_subs[i] {
                                    self.lane_fires[sub.lane as usize] |= 1u64 << sub.node;
                                }
                                fired = true;
                            }
                        }
                        subp_live = true;
                    } else {
                        subp_skips += 1;
                        if subp_live {
                            for c in &mut self.subp_counter {
                                *c = 0;
                            }
                            subp_live = false;
                        }
                    }
                }
                if is_number_byte(byte) {
                    for i in 0..self.num_state.len() {
                        let s = self.num_state[i];
                        self.num_state[i] = self.tables[self.num_off[i] as usize
                            + (s & STATE_MASK) as usize * 256
                            + byte as usize];
                    }
                    in_token = !self.num_state.is_empty();
                } else if in_token {
                    for i in 0..self.num_state.len() {
                        if self.num_state[i] & DENSE_ACCEPT_BIT != 0 {
                            for sub in &self.num_subs[i] {
                                self.lane_fires[sub.lane as usize] |= 1u64 << sub.node;
                            }
                            fired = true;
                        }
                        self.num_state[i] = self.num_start[i];
                    }
                    in_token = false;
                }
                for i in 0..self.sdfa_state.len() {
                    let s = self.sdfa_state[i];
                    let s = self.tables[self.sdfa_off[i] as usize
                        + (s & STATE_MASK) as usize * 256
                        + byte as usize];
                    self.sdfa_state[i] = s;
                    if s & DENSE_ACCEPT_BIT != 0 {
                        for sub in &self.sdfa_subs[i] {
                            self.lane_fires[sub.lane as usize] |= 1u64 << sub.node;
                        }
                        fired = true;
                    }
                }

                let bit = 1u8 << j;
                let mut is_close = false;
                let mut is_comma = false;
                if structural & bit != 0 {
                    if wm.opens & bit != 0 {
                        depth += 1;
                    } else if wm.closes & bit != 0 {
                        is_close = true;
                    } else {
                        is_comma = true;
                    }
                }
                // Per-lane event gate: the program is a provable no-op
                // unless this lane saw a fire, or a structural event and
                // the lane has context ops to observe it.
                if fired || is_close || is_comma {
                    let ev = ByteEvent {
                        depth,
                        is_close,
                        is_comma,
                    };
                    for (i, lane) in self.lanes.iter_mut().enumerate() {
                        let f = self.lane_fires[i];
                        if f != 0 || ((is_close || is_comma) && lane.has_ctx) {
                            let p = lane.latch[0];
                            lane.latch[0] = run_program_word(
                                &lane.ops,
                                &lane.masks,
                                &mut lane.flag_level,
                                p | f,
                                p,
                                ev,
                            );
                        }
                        self.lane_fires[i] = 0;
                    }
                }
                if is_close {
                    depth = depth.saturating_sub(1);
                }
            }
        }

        // Sync packed state back out, then run the sub-word tail through
        // the byte-serial path from the synced state.
        for i in 0..nsub1 {
            self.sub1_counter[i] = ((c1[i / 8] >> (8 * (i % 8))) & 0xff) as u32;
        }
        for i in 0..nsubp {
            self.subp_win[i] = win64 & self.subp_win_mask[i];
        }
        self.num_in_token = in_token;
        self.stats.sub1_gate_skips += sub1_skips;
        self.stats.subp_gate_skips += subp_skips;
        self.tracker.restore(in_string, pending_escape, depth);
        for &byte in chunks.remainder() {
            self.on_byte(byte);
        }
    }

    /// ORs every currently-accepting lane's bit into `out` (one bit per
    /// query, `u64` word per 64 queries). Callers zero `out` first.
    pub fn write_accepts(&self, out: &mut [u64]) {
        for (q, lane) in self.lanes.iter().enumerate() {
            if lane.accepts() {
                out[q / 64] |= 1u64 << (q % 64);
            }
        }
    }

    /// Record-boundary reset of every lane and the shared pool.
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.latch.fill(0);
            lane.flag_level.fill(0);
        }
        self.sdfa_state.copy_from_slice(&self.sdfa_start);
        self.num_state.copy_from_slice(&self.num_start);
        self.num_in_token = false;
        self.sub1_counter.fill(0);
        self.subp_win.fill(0);
        self.subp_counter.fill(0);
        for wu in &mut self.wide_units {
            wu.matcher.reset();
        }
        self.lane_fires.fill(0);
        self.tracker.reset();
    }
}

impl MultiBackend for MultiEngine {
    fn try_compile_batch(exprs: &[Expr]) -> Result<Self, CompileError> {
        MultiEngine::try_compile_batch(exprs)
    }

    fn name(&self) -> &'static str {
        "multi-engine"
    }

    fn exprs(&self) -> &[Expr] {
        MultiEngine::exprs(self)
    }

    #[inline]
    fn on_byte(&mut self, byte: u8) {
        MultiEngine::on_byte(self, byte);
    }

    #[inline]
    fn on_block(&mut self, block: &[u8]) {
        MultiEngine::on_block(self, block);
    }

    fn write_accepts(&self, out: &mut [u64]) {
        MultiEngine::write_accepts(self, out);
    }

    fn reset(&mut self) {
        MultiEngine::reset(self);
    }

    fn flush_telemetry(&mut self) {
        let s = std::mem::take(&mut self.stats);
        if s.is_empty() {
            return;
        }
        let m = crate::metrics::multi_metrics();
        m.bytes_block.add(s.bytes_block);
        m.bytes_byte_serial.add(s.bytes_byte_serial);
        m.gate_skips_sub1.add(s.sub1_gate_skips);
        m.gate_skips_subp.add(s.subp_gate_skips);
    }
}

/// Per-record verdicts for a whole query batch: one bit per (record,
/// query) pair, one `u64` word per 64 queries, plus the per-record
/// quarantine reasons — the batched form of the single-query
/// [`Verdict`] vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchVerdicts {
    queries: usize,
    words: usize,
    bits: Vec<u64>,
    skips: Vec<Option<SkipReason>>,
}

impl BatchVerdicts {
    /// Empty verdict set for a batch of `queries` queries.
    pub fn new(queries: usize) -> BatchVerdicts {
        BatchVerdicts {
            queries,
            words: queries.div_ceil(64).max(1),
            bits: Vec::new(),
            skips: Vec::new(),
        }
    }

    /// Number of queries per record.
    pub fn num_queries(&self) -> usize {
        self.queries
    }

    /// Number of records scored or skipped so far.
    pub fn num_records(&self) -> usize {
        self.skips.len()
    }

    /// Verdict words per record (`queries.div_ceil(64)`, at least 1).
    pub fn words_per_record(&self) -> usize {
        self.words
    }

    /// Appends a scored record's accept bitset (must be
    /// [`BatchVerdicts::words_per_record`] words).
    pub fn push_scored(&mut self, accepts: &[u64]) {
        assert_eq!(accepts.len(), self.words, "accept bitset width");
        self.bits.extend_from_slice(accepts);
        self.skips.push(None);
    }

    /// Appends a quarantined record (no query bits).
    pub fn push_skipped(&mut self, reason: SkipReason) {
        self.bits.extend(std::iter::repeat_n(0, self.words));
        self.skips.push(Some(reason));
    }

    /// The quarantine reason of `record`, if it was skipped.
    pub fn skip(&self, record: usize) -> Option<SkipReason> {
        self.skips[record]
    }

    /// Whether `record` matched `query` (false for skipped records).
    pub fn matched(&self, record: usize, query: usize) -> bool {
        assert!(query < self.queries, "query index");
        self.skips[record].is_none()
            && self.bits[record * self.words + query / 64] & (1u64 << (query % 64)) != 0
    }

    /// The single-query [`Verdict`] of `record` under `query`.
    pub fn verdict(&self, record: usize, query: usize) -> Verdict {
        match self.skips[record] {
            Some(reason) => Verdict::Skipped(reason),
            None => Verdict::from_decision(self.matched(record, query)),
        }
    }

    /// One query's verdict vector across all records — directly
    /// comparable to [`FilterBackend::filter_stream_verdicts`] output.
    pub fn query_verdicts(&self, query: usize) -> Vec<Verdict> {
        (0..self.num_records())
            .map(|r| self.verdict(r, query))
            .collect()
    }

    /// Records matching `query`.
    pub fn count_matches(&self, query: usize) -> usize {
        (0..self.num_records())
            .filter(|&r| self.matched(r, query))
            .count()
    }

    /// Drops all records, keeping the batch width and the allocations
    /// (for buffer reuse across streams).
    pub fn clear(&mut self) {
        self.bits.clear();
        self.skips.clear();
    }

    /// Appends all of `other`'s records (shard reassembly).
    ///
    /// # Panics
    ///
    /// Panics if the query counts differ.
    pub fn append(&mut self, other: &BatchVerdicts) {
        assert_eq!(self.queries, other.queries, "batch width");
        self.bits.extend_from_slice(&other.bits);
        self.skips.extend_from_slice(&other.skips);
    }

    /// Overwrites every record from `start` on as skipped with `reason` —
    /// the global record-budget quarantine, which wins over any per-record
    /// verdict exactly as in the serial precedence rules.
    pub fn quarantine_from(&mut self, start: usize, reason: SkipReason) {
        for r in start..self.num_records() {
            self.bits[r * self.words..(r + 1) * self.words].fill(0);
            self.skips[r] = Some(reason);
        }
    }
}

/// A batch raw-filter execution path: the multi-query counterpart of
/// [`FilterBackend`]. One shared per-byte advance updates every query;
/// [`MultiBackend::write_accepts`] reads the latched per-query accept
/// bits. The provided drivers share the `LimitedFramer` framing and
/// quarantine semantics with the single-query stream drivers, emitting
/// [`BatchVerdicts`] instead of a verdict vector.
pub trait MultiBackend {
    /// Compiles a batch of expressions into this execution form.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or an expression failing
    /// [`Expr::validate`] — use
    /// [`try_compile_batch`](MultiBackend::try_compile_batch) for
    /// user-supplied batches.
    fn compile_batch(exprs: &[Expr]) -> Self
    where
        Self: Sized,
    {
        Self::try_compile_batch(exprs).expect("batch must be non-empty and well-formed")
    }

    /// Fallible form of [`compile_batch`](MultiBackend::compile_batch).
    ///
    /// # Errors
    ///
    /// [`CompileError::Backend`] for an empty batch;
    /// [`CompileError::InvalidExpr`] for an ill-formed expression.
    fn try_compile_batch(exprs: &[Expr]) -> Result<Self, CompileError>
    where
        Self: Sized;

    /// Short stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// The batch's source expressions, in query order.
    fn exprs(&self) -> &[Expr];

    /// Number of queries in the batch.
    fn num_queries(&self) -> usize {
        self.exprs().len()
    }

    /// Advances every query one cycle.
    fn on_byte(&mut self, byte: u8);

    /// Advances a whole slice of record content at once; must be
    /// decision-identical to the byte loop.
    fn on_block(&mut self, block: &[u8]) {
        for &b in block {
            self.on_byte(b);
        }
    }

    /// ORs the current latched accept bit of every query into `out`
    /// (bit `q % 64` of word `q / 64`). Callers zero `out` first.
    fn write_accepts(&self, out: &mut [u64]);

    /// Record-boundary reset of every query.
    fn reset(&mut self);

    /// Flushes any internally accumulated telemetry into the global
    /// [`rfjson_telemetry`] registry — the batch-side twin of
    /// [`FilterBackend::flush_telemetry`]. Called by the stream drivers
    /// once per stream; default is a no-op.
    fn flush_telemetry(&mut self) {}

    /// Scans one record (appending the `\n` separator the hardware
    /// sees) and ORs each query's accept decision into `out`. Resets on
    /// entry; `out` must be zeroed by the caller.
    fn accepts_record_into(&mut self, record: &[u8], out: &mut [u64]) {
        self.reset();
        self.on_block(record);
        self.write_accepts(out);
        self.on_byte(b'\n');
        self.write_accepts(out);
    }

    /// Quarantine-aware batch stream filtering: one verdict-bitset row
    /// per record (see [`run_batch_driver_blocks`] for the framing
    /// contract, shared with the single-query drivers).
    fn filter_stream_verdicts(&mut self, stream: &[u8], limits: IngestLimits) -> BatchVerdicts {
        let mut out = BatchVerdicts::new(self.num_queries());
        self.filter_stream_verdicts_into(stream, limits, &mut out);
        out
    }

    /// Allocation-reusing form of
    /// [`filter_stream_verdicts`](MultiBackend::filter_stream_verdicts):
    /// appends one record row per record to `out`.
    fn filter_stream_verdicts_into(
        &mut self,
        stream: &[u8],
        limits: IngestLimits,
        out: &mut BatchVerdicts,
    ) {
        run_batch_driver_blocks(self, stream, limits, out);
    }
}

/// Byte-serial reference form of the batch stream driver — every byte
/// goes through [`LimitedFramer`] and [`MultiBackend::on_byte`]
/// individually. Kept as the framing oracle for the differential tests,
/// exactly like the single-query [`run_verdict_driver`].
///
/// [`run_verdict_driver`]: crate::backend::run_verdict_driver
pub fn run_batch_driver<M: MultiBackend + ?Sized>(
    backend: &mut M,
    stream: &[u8],
    limits: IngestLimits,
    out: &mut BatchVerdicts,
) {
    backend.reset();
    let words = out.words_per_record();
    let mut acc = vec![0u64; words];
    let mut framer = LimitedFramer::new(limits);
    let mut tally = FramingTally::new();
    let mut scored = 0u64;
    let mut prev_cr = false;
    for &b in stream {
        match framer.on_byte(b) {
            LimitedAction::Feed { quarantined } => {
                prev_cr = b == b'\r';
                if !quarantined {
                    backend.on_byte(b);
                }
            }
            LimitedAction::EndRecord(end) => {
                tally.records += 1;
                tally.cr_records += u64::from(prev_cr);
                prev_cr = false;
                match end.skip {
                    Some(reason) => {
                        tally.quarantine(&reason);
                        out.push_skipped(reason);
                    }
                    None => {
                        // Feed the separator the hardware would see; the
                        // latched accepts after it are the decisions.
                        backend.on_byte(b);
                        acc.fill(0);
                        backend.write_accepts(&mut acc);
                        out.push_scored(&acc);
                        scored += 1;
                    }
                }
                backend.reset();
            }
            LimitedAction::EndBlank => {
                tally.blank_lines += 1;
                prev_cr = false;
                backend.reset();
            }
        }
    }
    if let Some(end) = framer.finish() {
        tally.records += 1;
        tally.cr_records += u64::from(prev_cr);
        match end.skip {
            Some(reason) => {
                tally.quarantine(&reason);
                out.push_skipped(reason);
            }
            None => {
                // EOF close: the last content byte's latched accepts OR
                // the synthetic separator's, per the framing rules.
                acc.fill(0);
                backend.write_accepts(&mut acc);
                backend.on_byte(b'\n');
                backend.write_accepts(&mut acc);
                out.push_scored(&acc);
                scored += 1;
            }
        }
        backend.reset();
    }
    tally.flush();
    crate::metrics::multi_metrics().records.add(scored);
    backend.flush_telemetry();
}

/// Record-at-a-time batch driver behind the provided stream methods:
/// hops separator to separator with the SWAR newline search and hands
/// each record to [`MultiBackend::on_block`] in one call. Framing, CR,
/// blank-line, trailing-record and quarantine-precedence rules are those
/// of the single-query [`run_verdict_driver_blocks`], and the
/// decision-equivalence argument carries over record for record.
///
/// [`run_verdict_driver_blocks`]: crate::backend::run_verdict_driver_blocks
pub fn run_batch_driver_blocks<M: MultiBackend + ?Sized>(
    backend: &mut M,
    stream: &[u8],
    limits: IngestLimits,
    out: &mut BatchVerdicts,
) {
    backend.reset();
    let words = out.words_per_record();
    let mut acc = vec![0u64; words];
    let mut tally = FramingTally::new();
    let mut scored = 0u64;
    let mut records_seen = 0usize;
    let mut rest = stream;
    let mut trailing = false;
    while !trailing {
        let line = match swar::find_byte(rest, b'\n') {
            Some(nl) => {
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                line
            }
            None => {
                trailing = true;
                rest
            }
        };
        if is_blank_line(line) {
            // Only separator-terminated blanks count — same rule as the
            // single-query blocks driver.
            tally.blank_lines += u64::from(!trailing);
            continue; // no verdict, lanes already at reset state
        }
        let content = trim_cr(line).len();
        tally.records += 1;
        tally.cr_records += u64::from(content < line.len());
        let index = records_seen;
        records_seen += 1;
        let skip = match limits.max_records {
            Some(m) if index >= m => Some(SkipReason::RecordLimit { limit: m }),
            _ => match limits.max_record_bytes {
                Some(m) if content > m => Some(SkipReason::TooLong {
                    limit: m,
                    actual: content,
                }),
                _ => None,
            },
        };
        match skip {
            Some(reason) => {
                tally.quarantine(&reason);
                out.push_skipped(reason);
            }
            None => {
                acc.fill(0);
                backend.on_block(line);
                if trailing {
                    // EOF close ORs the last content byte's accepts in.
                    backend.write_accepts(&mut acc);
                }
                backend.on_byte(b'\n');
                backend.write_accepts(&mut acc);
                out.push_scored(&acc);
                scored += 1;
            }
        }
        backend.reset();
    }
    tally.flush();
    crate::metrics::multi_metrics().records.add(scored);
    backend.flush_telemetry();
}

/// The serial reference [`MultiBackend`]: N independent single-query
/// backends stepped in lockstep with **no** scan sharing or unit
/// deduplication. This is the baseline the fused engine is measured
/// against, and the differential oracle holding it honest — any
/// [`FilterBackend`] works as the inner lane.
#[derive(Debug, Clone)]
pub struct MultiLanes<B> {
    exprs: Vec<Expr>,
    lanes: Vec<B>,
    accept: Vec<bool>,
}

impl<B: FilterBackend> MultiBackend for MultiLanes<B> {
    fn try_compile_batch(exprs: &[Expr]) -> Result<Self, CompileError> {
        if exprs.is_empty() {
            return Err(CompileError::Backend {
                backend: "multi-serial",
                reason: "a batch needs at least one query".into(),
            });
        }
        let lanes = exprs
            .iter()
            .map(B::try_compile)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiLanes {
            exprs: exprs.to_vec(),
            accept: vec![false; lanes.len()],
            lanes,
        })
    }

    fn name(&self) -> &'static str {
        "multi-serial"
    }

    fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    fn on_byte(&mut self, byte: u8) {
        for (lane, accept) in self.lanes.iter_mut().zip(&mut self.accept) {
            *accept = lane.on_byte(byte);
        }
    }

    fn on_block(&mut self, block: &[u8]) {
        if block.is_empty() {
            return; // a loop that never ran leaves the accepts alone
        }
        for (lane, accept) in self.lanes.iter_mut().zip(&mut self.accept) {
            *accept = lane.on_block(block);
        }
    }

    fn write_accepts(&self, out: &mut [u64]) {
        for (q, &accept) in self.accept.iter().enumerate() {
            if accept {
                out[q / 64] |= 1u64 << (q % 64);
            }
        }
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
        self.accept.fill(false);
    }

    fn flush_telemetry(&mut self) {
        // The serial reference has no pooled stats of its own; its inner
        // single-query lanes may (e.g. `MultiLanes<Engine>`).
        for lane in &mut self.lanes {
            lane.flush_telemetry();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::evaluator::CompiledFilter;
    use crate::expr::StructScope;

    fn zoo() -> Vec<Expr> {
        vec![
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"humidity", 1).unwrap(),
                Expr::int_range(10, 90),
            ]),
            // Shares the temperature key unit with lane 0.
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("50.0", "99.0").unwrap(),
            ]),
            Expr::context_scoped(
                StructScope::Member,
                [
                    Expr::substring(b"tolls_amount", 2).unwrap(),
                    Expr::float_range("2.50", "18.00").unwrap(),
                ],
            ),
        ]
    }

    const RECORDS: &[&[u8]] = &[
        br#"{"e":[{"v":"21.0","u":"far","n":"temperature"}],"bt":1}"#,
        br#"{"e":[{"v":"55","u":"per","n":"humidity"}],"bt":2}"#,
        br#"{"e":[{"v":"77.0","u":"far","n":"temperature"}],"bt":3}"#,
        br#"{"fare_amount":11.50,"tolls_amount":5.33,"total_amount":17.33}"#,
        br#"{"nothing":"here"}"#,
    ];

    fn stream() -> Vec<u8> {
        let mut s = Vec::new();
        for r in RECORDS {
            s.extend_from_slice(r);
            s.push(b'\n');
        }
        s
    }

    #[test]
    fn fused_matches_independent_engines() {
        let exprs = zoo();
        let mut fused = MultiEngine::compile_batch(&exprs);
        let batch = fused.filter_stream_verdicts(&stream(), IngestLimits::UNLIMITED);
        assert_eq!(batch.num_records(), RECORDS.len());
        for (q, expr) in exprs.iter().enumerate() {
            let want =
                Engine::compile(expr).filter_stream_verdicts(&stream(), IngestLimits::UNLIMITED);
            assert_eq!(batch.query_verdicts(q), want, "query {q}: `{expr}`");
        }
    }

    #[test]
    fn multilanes_matches_fused() {
        let exprs = zoo();
        let mut fused = MultiEngine::compile_batch(&exprs);
        let mut serial = MultiLanes::<CompiledFilter>::compile_batch(&exprs);
        let a = fused.filter_stream_verdicts(&stream(), IngestLimits::UNLIMITED);
        let b = serial.filter_stream_verdicts(&stream(), IngestLimits::UNLIMITED);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_units_are_pooled() {
        let fused = MultiEngine::compile_batch(&zoo());
        let stats = fused.share_stats();
        // Lanes 0 and 2 share the temperature sub1 unit.
        assert_eq!(stats.total_units(), 8);
        assert_eq!(stats.pool.total(), 7);
        assert_eq!(stats.shared_units(), 1);
        assert!(fused.block_scan_ready());
    }

    #[test]
    fn duplicate_queries_collapse_entirely() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let batch = vec![expr.clone(), expr.clone(), expr];
        let fused = MultiEngine::compile_batch(&batch);
        assert_eq!(fused.share_stats().total_units(), 6);
        assert_eq!(fused.share_stats().pool.total(), 2);
    }

    #[test]
    fn byte_oracle_agrees_with_block_driver() {
        let exprs = zoo();
        let mut fused = MultiEngine::compile_batch(&exprs);
        let s = stream();
        let limits = IngestLimits {
            max_record_bytes: Some(58),
            max_records: Some(4),
        };
        let mut via_bytes = BatchVerdicts::new(exprs.len());
        run_batch_driver(&mut fused, &s, limits, &mut via_bytes);
        let via_blocks = fused.filter_stream_verdicts(&s, limits);
        assert_eq!(via_bytes, via_blocks);
        assert!(via_blocks.skip(4).is_some(), "record budget applies");
    }

    #[test]
    fn empty_batch_is_a_compile_error() {
        assert!(matches!(
            MultiEngine::try_compile_batch(&[]),
            Err(CompileError::Backend { .. })
        ));
        assert!(matches!(
            MultiLanes::<Engine>::try_compile_batch(&[]),
            Err(CompileError::Backend { .. })
        ));
    }

    #[test]
    fn lane_views_are_well_formed() {
        let fused = MultiEngine::compile_batch(&zoo());
        for (q, view) in fused.lane_views().iter().enumerate() {
            assert!(view.check().is_empty(), "lane {q}");
        }
    }

    #[test]
    fn batch_verdicts_bitset_round_trip() {
        let mut v = BatchVerdicts::new(70);
        assert_eq!(v.words_per_record(), 2);
        let mut row = vec![0u64; 2];
        row[1] |= 1 << (69 - 64);
        v.push_scored(&row);
        v.push_skipped(SkipReason::RecordLimit { limit: 1 });
        assert!(v.matched(0, 69) && !v.matched(0, 0));
        assert!(!v.matched(1, 69));
        assert_eq!(
            v.verdict(1, 0),
            Verdict::Skipped(SkipReason::RecordLimit { limit: 1 })
        );
        assert_eq!(v.count_matches(69), 1);
        let mut w = BatchVerdicts::new(70);
        w.append(&v);
        assert_eq!(w, v);
        w.quarantine_from(0, SkipReason::RecordLimit { limit: 0 });
        assert!(!w.matched(0, 69));
    }
}

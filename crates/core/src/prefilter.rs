//! Record-level literal prefilter for the block-scan fast path.
//!
//! Before the engine scans a whole record byte-by-byte, a much cheaper
//! **necessary-condition** check can prove many records `NoMatch` outright:
//! if the filter's root can only latch when some string unit fires, and
//! that unit provably cannot fire anywhere in the record, the record's
//! decision is `false` without running the flat program at all.
//!
//! Soundness is the whole game here — a raw filter must never produce a
//! false negative beyond what the compiled expression itself produces, so
//! every test in this module is a *necessary* condition for acceptance:
//!
//! * **Required units.** A string unit is *required* iff every path from
//!   the root to a latch of the root passes through it: `And` and `Ctx`
//!   nodes require **all** children (a context can only latch when every
//!   child has fired), so their children are collected; `Or` nodes require
//!   none of theirs (any child suffices), so descent stops. If a required
//!   unit never fires during a record, the root latch provably stays low.
//! * **Exact units** (DFA and window matchers) fire only when the stream
//!   ends with the needle, so the needle occurring in the record is a
//!   necessary condition — checked with the SWAR [`swar::contains`] scan.
//! * **Substring units** (technique iii) are approximate: they fire on a
//!   run of matching blocks, which a *different* literal can also produce
//!   (`s1("tolls_amount")` fires inside `"total_amount"`). Containment of
//!   the needle is therefore **not** necessary. What *is* necessary is
//!   that the unit's own state machine, run structure-free over the
//!   record, fires somewhere — the engine's unit sees exactly the same
//!   bytes from the same reset state, so "free run never fires" implies
//!   "engine unit never fires".
//! * **Separator bytes.** The engine additionally sees the record
//!   separator `\n` after the content. A needle containing `\n` could
//!   first fire on that byte, so such units are excluded from the
//!   prefilter entirely. (`\n`-free needles cannot fire on the separator:
//!   for exact units the suffix can't match, and for substring units the
//!   separator is a non-member byte that resets the run counter.)

use crate::expr::{Expr, StringSpec, StringTechnique};
use crate::primitive::{FireFilter, SubstringMatcher};
use rfjson_jsonstream::swar;

/// Compiled necessary-condition checks for one expression. Built at
/// engine-compile time; [`Prefilter::rejects`] runs per record.
#[derive(Debug, Clone)]
pub(crate) struct Prefilter {
    /// Needles of exact (DFA / window) required units: containment in the
    /// record is necessary for the unit to fire.
    exacts: Vec<Vec<u8>>,
    /// Required substring units, re-run structure-free per record; the
    /// free run firing somewhere is necessary for the engine unit to fire.
    subs: Vec<SubstringMatcher>,
}

impl Prefilter {
    /// Extracts the required-unit checks from an expression. Returns
    /// `None` when no usable check exists (e.g. the root is an `Or`, the
    /// filter is purely numeric, or every needle contains `\n`).
    pub(crate) fn build(expr: &Expr) -> Option<Prefilter> {
        let mut specs: Vec<&StringSpec> = Vec::new();
        collect_required(expr, &mut specs);
        let mut exacts = Vec::new();
        let mut subs = Vec::new();
        for spec in specs {
            if spec.needle.contains(&b'\n') {
                continue; // could first fire on the record separator
            }
            match spec.technique {
                StringTechnique::Dfa | StringTechnique::Window => {
                    exacts.push(spec.needle.clone());
                }
                StringTechnique::Substring(b) => {
                    if let Ok(m) = SubstringMatcher::new(&spec.needle, b) {
                        subs.push(m);
                    }
                }
            }
        }
        if exacts.is_empty() && subs.is_empty() {
            None
        } else {
            Some(Prefilter { exacts, subs })
        }
    }

    /// `true` iff the record provably cannot be accepted: some required
    /// unit cannot fire anywhere in it. Cheap checks (SWAR containment)
    /// run first so unselective streams bail out early.
    pub(crate) fn rejects(&mut self, record: &[u8]) -> bool {
        for needle in &self.exacts {
            if !swar::contains(record, needle) {
                return true;
            }
        }
        for m in &mut self.subs {
            m.reset();
            if !record.iter().any(|&b| m.on_byte(b)) {
                return true;
            }
        }
        false
    }
}

/// Collects the string units every accepting record must fire: descend
/// through `And`/`Ctx` (all children required), stop at `Or` (none
/// individually required) and at numeric leaves.
fn collect_required<'e>(expr: &'e Expr, out: &mut Vec<&'e StringSpec>) {
    match expr {
        Expr::Str(spec) => out.push(spec),
        Expr::Num(_) | Expr::Or(_) => {}
        Expr::And(cs) | Expr::Ctx(cs, _) => {
            for c in cs {
                collect_required(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::StructScope;

    #[test]
    fn or_roots_and_numeric_filters_have_no_prefilter() {
        assert!(Prefilter::build(&Expr::int_range(1, 5)).is_none());
        let either = Expr::or([
            Expr::substring(b"alpha", 1).unwrap(),
            Expr::substring(b"beta", 1).unwrap(),
        ]);
        assert!(Prefilter::build(&either).is_none());
    }

    #[test]
    fn required_units_cross_and_and_ctx() {
        let expr = Expr::and([
            Expr::dfa_string(b"temperature").unwrap(),
            Expr::context_scoped(
                StructScope::Object,
                [
                    Expr::substring(b"humidity", 2).unwrap(),
                    Expr::int_range(0, 100),
                ],
            ),
        ]);
        let mut pf = Prefilter::build(&expr).expect("two required string units");
        assert!(!pf.rejects(br#"{"temperature":1,"humidity":40}"#));
        assert!(pf.rejects(br#"{"temperature":1,"pressure":40}"#));
        assert!(pf.rejects(br#"{"humidity":40}"#));
    }

    #[test]
    fn approximate_substring_fires_block_rejection_only_when_sound() {
        // s1("tolls_amount") also fires inside "total_amount" (same letter
        // set); the prefilter must keep such records.
        let expr = Expr::substring(b"tolls_amount", 1).unwrap();
        let mut pf = Prefilter::build(&expr).expect("one required unit");
        assert!(!pf.rejects(br#"{"total_amounts":0}"#));
        assert!(pf.rejects(br#"{"fare":11.5}"#));
    }

    #[test]
    fn newline_needles_are_excluded() {
        let spec = Expr::Str(crate::expr::StringSpec {
            needle: b"a\nb".to_vec(),
            technique: StringTechnique::Dfa,
        });
        assert!(Prefilter::build(&spec).is_none());
    }
}

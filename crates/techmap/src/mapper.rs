//! Priority-cut LUT mapping.
//!
//! Selection uses *area flow* (Mishchenko et al., "Improvements to
//! technology mapping for LUT-based FPGAs"): the estimated area of a cut is
//! `1 + Σ area(leaf)/fanout(leaf)`, which accounts for logic sharing. Cover
//! extraction walks from the outputs, instantiating the chosen cut of every
//! required node; truth tables are computed by cone evaluation, so
//! inverters vanish into the tables — exactly why the paper's wide
//! OR-reductions "can be combined in one LUT".

use crate::aig::{Aig, AigNode, Lit};
use crate::cuts::{enumerate, Cut};
use crate::lutnet::{Lut, LutNetwork, OutputBinding, SignalRef};
use crate::report::ResourceReport;
use rfjson_rtl::Netlist;
use std::collections::HashMap;

/// Maps an AIG into a network of `k`-input LUTs.
///
/// Returns the resource report together with the mapped network (for
/// verification and depth inspection).
///
/// # Panics
///
/// Panics if `k` is outside `2..=6` (truth tables are stored in a `u64`).
pub fn map_aig(aig: &Aig, k: usize) -> (ResourceReport, LutNetwork) {
    assert!((2..=6).contains(&k), "LUT arity must be in 2..=6");
    let nodes = aig.nodes();
    let cut_sets = enumerate(aig, k);

    // Fanout estimation for area flow.
    let mut fanout = vec![0u32; nodes.len()];
    for node in nodes {
        if let AigNode::And(a, b) = node {
            fanout[a.var() as usize] += 1;
            fanout[b.var() as usize] += 1;
        }
    }
    for (_, lit) in aig.outputs() {
        fanout[lit.var() as usize] += 1;
    }

    // Area-flow + depth labelling, choosing one best cut per AND node.
    let mut flow = vec![0.0f64; nodes.len()];
    let mut depth = vec![0u32; nodes.len()];
    let mut best: Vec<Option<Cut>> = vec![None; nodes.len()];
    for (var, node) in nodes.iter().enumerate() {
        if !matches!(node, AigNode::And(..)) {
            continue;
        }
        let mut best_cut: Option<(&Cut, f64, u32)> = None;
        for cut in &cut_sets.cuts[var] {
            if cut.leaves == [var as u32] {
                continue; // trivial self-cut cannot implement the node
            }
            let af: f64 = 1.0
                + cut
                    .leaves
                    .iter()
                    .map(|&l| flow[l as usize] / f64::from(fanout[l as usize].max(1)))
                    .sum::<f64>();
            let d: u32 = 1 + cut
                .leaves
                .iter()
                .map(|&l| depth[l as usize])
                .max()
                .unwrap_or(0);
            let better = match best_cut {
                None => true,
                Some((_, baf, bd)) => (af, d) < (baf, bd),
            };
            if better {
                best_cut = Some((cut, af, d));
            }
        }
        let (cut, af, d) = best_cut.expect("every AND node has a non-trivial cut");
        flow[var] = af;
        depth[var] = d;
        best[var] = Some(cut.clone());
    }

    // Cover extraction from the outputs.
    let mut selected: Vec<u32> = Vec::new();
    let mut is_selected = vec![false; nodes.len()];
    let mut stack: Vec<u32> = aig
        .outputs()
        .iter()
        .map(|(_, l)| l.var())
        .filter(|&v| matches!(nodes[v as usize], AigNode::And(..)))
        .collect();
    while let Some(var) = stack.pop() {
        if is_selected[var as usize] {
            continue;
        }
        is_selected[var as usize] = true;
        selected.push(var);
        let cut = best[var as usize]
            .as_ref()
            .expect("selected node has a cut");
        for &leaf in &cut.leaves {
            if matches!(nodes[leaf as usize], AigNode::And(..)) {
                stack.push(leaf);
            }
        }
    }
    selected.sort_unstable(); // AIG creation order is topological

    // Build the LUT network.
    let mut input_ordinal: HashMap<u32, usize> = HashMap::new();
    let mut next_input = 0usize;
    for (var, node) in nodes.iter().enumerate() {
        if matches!(node, AigNode::Input { .. }) {
            input_ordinal.insert(var as u32, next_input);
            next_input += 1;
        }
    }
    let mut lut_index: HashMap<u32, usize> = HashMap::new();
    let mut net = LutNetwork {
        luts: Vec::with_capacity(selected.len()),
        outputs: Vec::new(),
        num_inputs: next_input,
    };
    for &var in &selected {
        let cut = best[var as usize].as_ref().expect("cut exists");
        let inputs: Vec<SignalRef> = cut
            .leaves
            .iter()
            .map(|&l| match nodes[l as usize] {
                AigNode::Input { .. } => SignalRef::Input(input_ordinal[&l]),
                AigNode::And(..) => SignalRef::Lut(lut_index[&l]),
                AigNode::Const => unreachable!("constants fold before cuts"),
            })
            .collect();
        let table = cone_truth_table(aig, var, &cut.leaves);
        lut_index.insert(var, net.luts.len());
        net.luts.push(Lut {
            inputs,
            table,
            root_var: var,
        });
    }
    for (name, lit) in aig.outputs() {
        let binding = bind_output(*lit, nodes, &input_ordinal, &lut_index);
        net.outputs.push((name.clone(), binding));
    }

    let report = ResourceReport {
        luts: net.luts.len(),
        ffs: 0,
        lut_depth: net.depth(),
        aig_ands: aig.num_ands(),
        aig_inputs: aig.num_inputs(),
    };
    (report, net)
}

fn bind_output(
    lit: Lit,
    nodes: &[AigNode],
    input_ordinal: &HashMap<u32, usize>,
    lut_index: &HashMap<u32, usize>,
) -> OutputBinding {
    match nodes[lit.var() as usize] {
        AigNode::Const => OutputBinding::Const(lit.is_inverted()),
        AigNode::Input { .. } => OutputBinding::Input {
            index: input_ordinal[&lit.var()],
            inverted: lit.is_inverted(),
        },
        AigNode::And(..) => OutputBinding::Lut {
            index: lut_index[&lit.var()],
            inverted: lit.is_inverted(),
        },
    }
}

/// Computes the truth table of the cone rooted at `root` over `leaves`.
fn cone_truth_table(aig: &Aig, root: u32, leaves: &[u32]) -> u64 {
    debug_assert!(leaves.len() <= 6);
    let nodes = aig.nodes();
    let mut table = 0u64;
    let mut memo: HashMap<u32, bool> = HashMap::new();
    for pattern in 0..(1u64 << leaves.len()) {
        memo.clear();
        for (i, &l) in leaves.iter().enumerate() {
            memo.insert(l, (pattern >> i) & 1 == 1);
        }
        if eval_cone(nodes, root, &mut memo) {
            table |= 1 << pattern;
        }
    }
    table
}

fn eval_cone(nodes: &[AigNode], var: u32, memo: &mut HashMap<u32, bool>) -> bool {
    if let Some(&v) = memo.get(&var) {
        return v;
    }
    let v = match &nodes[var as usize] {
        AigNode::Const => false,
        AigNode::Input { name } => {
            unreachable!("cone evaluation escaped its cut at input {name}")
        }
        AigNode::And(a, b) => {
            let va = eval_cone(nodes, a.var(), memo) ^ a.is_inverted();
            let vb = eval_cone(nodes, b.var(), memo) ^ b.is_inverted();
            va && vb
        }
    };
    memo.insert(var, v);
    v
}

/// Convenience: netlist → AIG → mapped report, with flip-flops counted.
///
/// This is the "synthesis + map" flow every resource number in the
/// benchmark tables goes through.
pub fn map_netlist(netlist: &Netlist, k: usize) -> ResourceReport {
    let aig = Aig::from_netlist(netlist);
    let (mut report, _) = map_aig(&aig, k);
    report.ffs = netlist.num_dffs();
    report
}

/// Like [`map_netlist`] but also returns the mapped network (used by the
/// co-simulation tests).
pub fn map_netlist_full(netlist: &Netlist, k: usize) -> (ResourceReport, LutNetwork) {
    let aig = Aig::from_netlist(netlist);
    let (mut report, net) = map_aig(&aig, k);
    report.ffs = netlist.num_dffs();
    (report, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(aig: &Aig, net: &LutNetwork, samples: u64) {
        // Deterministic pseudo-random assignments (xorshift).
        let n = aig.num_inputs();
        let mut x = 0x2545_F491_4F6C_DD1D_u64;
        for _ in 0..samples {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let inputs: Vec<bool> = (0..n).map(|i| (x >> (i % 64)) & 1 == 1).collect();
            assert_eq!(aig.eval(&inputs), net.eval(&inputs));
        }
    }

    #[test]
    fn xor3_fits_one_lut() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.xor(a, b);
        let abc = g.xor(ab, c);
        g.add_output("y", abc);
        let (report, net) = map_aig(&g, 6);
        assert_eq!(report.luts, 1);
        assert_equivalent(&g, &net, 64);
    }

    #[test]
    fn wide_and_splits_into_luts() {
        // 12-input AND with k=4: needs a tree of LUTs, at least ceil(11/3)=4.
        let mut g = Aig::new();
        let inputs: Vec<_> = (0..12).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &l in &inputs[1..] {
            acc = g.and(acc, l);
        }
        g.add_output("y", acc);
        let (report, net) = map_aig(&g, 4);
        assert!(report.luts >= 4, "got {} LUTs", report.luts);
        assert!(net.max_arity() <= 4);
        assert_equivalent(&g, &net, 256);
    }

    #[test]
    fn wide_or_collapses_with_k6() {
        // 6-input OR = exactly one 6-LUT — the paper's "entire logic can be
        // combined in one LUT" effect.
        let mut g = Aig::new();
        let inputs: Vec<_> = (0..6).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &l in &inputs[1..] {
            acc = g.or(acc, l);
        }
        g.add_output("y", acc);
        let (report, net) = map_aig(&g, 6);
        assert_eq!(report.luts, 1);
        assert_equivalent(&g, &net, 64);
    }

    #[test]
    fn passthrough_output_costs_nothing() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        g.add_output("y", a.not());
        let (report, net) = map_aig(&g, 6);
        assert_eq!(report.luts, 0);
        assert_eq!(net.eval(&[true]), vec![false]);
    }

    #[test]
    fn const_output() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let y = g.and(a, a.not()); // folds to false
        g.add_output("y", y);
        let (report, net) = map_aig(&g, 6);
        assert_eq!(report.luts, 0);
        assert_eq!(net.eval(&[true]), vec![false]);
    }

    #[test]
    fn shared_logic_counted_once() {
        // Two outputs sharing a subexpression must not double-count it.
        let mut g = Aig::new();
        let inputs: Vec<_> = (0..8).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut shared = inputs[0];
        for &l in &inputs[1..6] {
            shared = g.and(shared, l);
        }
        let o1 = g.and(shared, inputs[6]);
        let o2 = g.and(shared, inputs[7]);
        g.add_output("o1", o1);
        g.add_output("o2", o2);
        let (report, net) = map_aig(&g, 6);
        // shared (6-input cone) = 1 LUT, plus one small LUT per output.
        assert!(report.luts <= 3, "got {} LUTs", report.luts);
        assert_equivalent(&g, &net, 256);
    }

    #[test]
    fn netlist_flow_counts_ffs() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and(a, b);
        let q = n.dff(y, false);
        n.output("q", q);
        let report = map_netlist(&n, 6);
        assert_eq!(report.ffs, 1);
        assert_eq!(report.luts, 1);
    }

    #[test]
    fn mapped_netlist_equivalent_random_logic() {
        // A pseudo-random 30-gate netlist, mapped and checked exhaustively.
        let mut n = Netlist::new("rand");
        let inputs: Vec<_> = (0..5).map(|i| n.input(format!("i{i}"))).collect();
        let mut pool = inputs.clone();
        let mut x = 0x9E37_79B9_7F4A_7C15_u64;
        for g in 0..30 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let a = pool[(x >> 11) as usize % pool.len()];
            let b = pool[(x >> 37) as usize % pool.len()];
            let node = match (x >> 5) % 4 {
                0 => n.and(a, b),
                1 => n.or(a, b),
                2 => n.xor(a, b),
                _ => {
                    let c = pool[(x >> 53) as usize % pool.len()];
                    n.mux(a, b, c)
                }
            };
            pool.push(node);
            if g % 7 == 0 {
                n.output(format!("o{g}"), node);
            }
        }
        let aig = Aig::from_netlist(&n);
        let (_, net) = map_aig(&aig, 6);
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(aig.eval(&bits), net.eval(&bits), "pattern {v}");
        }
    }
}

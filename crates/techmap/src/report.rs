//! Resource reports.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Post-mapping resource usage of one block — the unit in which the paper
/// quotes every filter cost.
///
/// # Example
///
/// ```
/// use rfjson_techmap::ResourceReport;
///
/// let a = ResourceReport { luts: 10, ffs: 4, lut_depth: 2, aig_ands: 30, aig_inputs: 9 };
/// let b = ResourceReport { luts: 5, ffs: 1, lut_depth: 3, aig_ands: 12, aig_inputs: 9 };
/// let sum = a + b;
/// assert_eq!(sum.luts, 15);
/// assert_eq!(sum.lut_depth, 3, "parallel blocks: depth is the max");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceReport {
    /// Number of K-input LUTs after mapping.
    pub luts: usize,
    /// Number of flip-flops (mapped 1:1, never into LUTs).
    pub ffs: usize,
    /// Depth of the mapped network in LUT levels.
    pub lut_depth: usize,
    /// AND nodes of the pre-mapping AIG (structural size).
    pub aig_ands: usize,
    /// Primary inputs of the AIG (including FF outputs).
    pub aig_inputs: usize,
}

impl Add for ResourceReport {
    type Output = ResourceReport;

    /// Combines reports of blocks instantiated side by side: LUTs/FFs add,
    /// depth is the maximum (they operate in parallel on the same stream).
    fn add(self, rhs: ResourceReport) -> ResourceReport {
        ResourceReport {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            lut_depth: self.lut_depth.max(rhs.lut_depth),
            aig_ands: self.aig_ands + rhs.aig_ands,
            aig_inputs: self.aig_inputs.max(rhs.aig_inputs),
        }
    }
}

impl Sum for ResourceReport {
    fn sum<I: Iterator<Item = ResourceReport>>(iter: I) -> ResourceReport {
        iter.fold(ResourceReport::default(), Add::add)
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, depth {} (aig: {} ands / {} inputs)",
            self.luts, self.ffs, self.lut_depth, self.aig_ands, self.aig_inputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let r = ResourceReport {
            luts: 3,
            ffs: 2,
            lut_depth: 1,
            aig_ands: 7,
            aig_inputs: 4,
        };
        let total: ResourceReport = vec![r, r, r].into_iter().sum();
        assert_eq!(total.luts, 9);
        assert_eq!(total.ffs, 6);
        assert_eq!(total.lut_depth, 1);
        assert_eq!(total.aig_ands, 21);
    }

    #[test]
    fn display_mentions_units() {
        let r = ResourceReport {
            luts: 42,
            ffs: 7,
            lut_depth: 3,
            aig_ands: 99,
            aig_inputs: 12,
        };
        let s = r.to_string();
        assert!(s.contains("42 LUTs") && s.contains("7 FFs") && s.contains("depth 3"));
    }
}

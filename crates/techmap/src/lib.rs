//! # rfjson-techmap — LUT technology mapping and resource estimation
//!
//! The paper reports the cost of every raw-filter primitive in **FPGA LUTs**
//! (Xilinx 7-series, 6-input). This crate reproduces that resource model in
//! software: an [`aig::Aig`] (And-Inverter Graph) is extracted from an
//! `rfjson-rtl` netlist, K-feasible cuts are enumerated ([`cuts`]), and a
//! priority-cut mapper ([`mapper`]) covers the graph with K-input LUTs,
//! yielding a [`report::ResourceReport`].
//!
//! Absolute numbers will not equal Vivado's (no retiming, no carry chains),
//! but the *relative shape* the paper's Tables I–III and V–VII rely on —
//! growth with string length for exact matchers, near-flat cost for the
//! substring matcher, tens of LUTs for range DFAs — emerges from the same
//! structural mechanisms.
//!
//! # Example
//!
//! ```
//! use rfjson_rtl::Netlist;
//! use rfjson_techmap::map_netlist;
//!
//! let mut n = Netlist::new("xor3");
//! let a = n.input("a");
//! let b = n.input("b");
//! let c = n.input("c");
//! let ab = n.xor(a, b);
//! let abc = n.xor(ab, c);
//! n.output("y", abc);
//!
//! let report = map_netlist(&n, 6);
//! assert_eq!(report.luts, 1, "a 3-input function fits one 6-LUT");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod cuts;
pub mod lutnet;
pub mod mapper;
pub mod report;

pub use aig::Aig;
pub use lutnet::LutNetwork;
pub use mapper::{map_aig, map_netlist};
pub use report::ResourceReport;

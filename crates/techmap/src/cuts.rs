//! K-feasible cut enumeration (priority cuts).
//!
//! A *cut* of an AIG node is a set of nodes ("leaves") such that every path
//! from the inputs to the node crosses a leaf; a K-feasible cut has at most
//! K leaves and corresponds to a K-input LUT implementing the node's cone.
//! We enumerate bottom-up, keeping only the `MAX_CUTS` most promising cuts
//! per node (the classic *priority cuts* scheme of Mishchenko et al.).

use crate::aig::{Aig, AigNode};

/// Maximum number of cuts retained per node.
pub const MAX_CUTS: usize = 8;

/// A cut: sorted leaf variables (≤ K of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted node variables forming the cut boundary.
    pub leaves: Vec<u32>,
}

impl Cut {
    /// The trivial cut `{var}`.
    pub fn trivial(var: u32) -> Self {
        Cut { leaves: vec![var] }
    }

    /// Merges two sorted leaf sets; `None` if the union exceeds `k`.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.leaves, &other.leaves);
        while i < a.len() || j < b.len() {
            let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
                if j < b.len() && a[i] == b[j] {
                    j += 1;
                }
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// True if every leaf of `self` is also a leaf of `other` (i.e. `self`
    /// dominates `other` and makes it redundant).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.size() > other.size() {
            return false;
        }
        let mut j = 0;
        for &l in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < l {
                j += 1;
            }
            if j >= other.leaves.len() || other.leaves[j] != l {
                return false;
            }
        }
        true
    }
}

/// Per-node cut sets for a whole AIG.
#[derive(Debug)]
pub struct CutSets {
    /// `cuts[var]` lists the retained cuts of that node.
    pub cuts: Vec<Vec<Cut>>,
}

/// Enumerates priority cuts for every node of `aig` with LUT arity `k`.
///
/// Inputs and the constant node get only their trivial cut. AND nodes merge
/// the fan-in cut sets, always retain the trivial cut (so multi-LUT
/// decompositions remain possible), drop dominated cuts, and keep the
/// `MAX_CUTS` best by `(size, sum of leaf depths)`.
pub fn enumerate(aig: &Aig, k: usize) -> CutSets {
    assert!((2..=8).contains(&k), "LUT arity must be in 2..=8");
    let nodes = aig.nodes();
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(nodes.len());
    let mut depth: Vec<u32> = vec![0; nodes.len()];
    for (var, node) in nodes.iter().enumerate() {
        let var = var as u32;
        match node {
            AigNode::Const | AigNode::Input { .. } => {
                all.push(vec![Cut::trivial(var)]);
            }
            AigNode::And(a, b) => {
                let mut cand: Vec<Cut> = Vec::new();
                for ca in &all[a.var() as usize] {
                    for cb in &all[b.var() as usize] {
                        if let Some(c) = ca.merge(cb, k) {
                            cand.push(c);
                        }
                    }
                }
                cand.push(Cut::trivial(var));
                // Remove duplicates and dominated cuts.
                cand.sort_by(|x, y| {
                    x.size()
                        .cmp(&y.size())
                        .then_with(|| x.leaves.cmp(&y.leaves))
                });
                cand.dedup();
                let mut kept: Vec<Cut> = Vec::new();
                for c in cand {
                    if !kept.iter().any(|k| k.dominates(&c)) {
                        kept.push(c);
                    }
                }
                // Depth of the node = best achievable over its cuts.
                let d = kept
                    .iter()
                    .map(|c| cut_depth(c, &depth, var))
                    .min()
                    .unwrap_or(0);
                depth[var as usize] = d;
                // Rank: prefer shallow, then small.
                kept.sort_by_key(|c| (cut_depth(c, &depth, var), c.size() as u32));
                kept.truncate(MAX_CUTS);
                all.push(kept);
            }
        }
    }
    CutSets { cuts: all }
}

/// Depth a LUT on this cut would have: 1 + max leaf depth (trivial cut of
/// the node itself scores as pass-through).
fn cut_depth(cut: &Cut, depth: &[u32], node: u32) -> u32 {
    if cut.leaves == [node] {
        return depth[node as usize];
    }
    1 + cut
        .leaves
        .iter()
        .map(|&l| depth[l as usize])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn merge_respects_k() {
        let a = Cut {
            leaves: vec![1, 2, 3],
        };
        let b = Cut {
            leaves: vec![3, 4, 5],
        };
        assert_eq!(a.merge(&b, 6).unwrap().leaves, vec![1, 2, 3, 4, 5]);
        assert!(a.merge(&b, 4).is_none());
    }

    #[test]
    fn merge_dedups_common_leaves() {
        let a = Cut { leaves: vec![1, 2] };
        let b = Cut { leaves: vec![1, 2] };
        assert_eq!(a.merge(&b, 2).unwrap().leaves, vec![1, 2]);
    }

    #[test]
    fn dominance() {
        let small = Cut { leaves: vec![1, 3] };
        let big = Cut {
            leaves: vec![1, 2, 3],
        };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
        let other = Cut { leaves: vec![1, 4] };
        assert!(!small.dominates(&other));
    }

    #[test]
    fn enumerate_chain() {
        // y = ((a&b)&c)&d : with k=6 the root must own a cut {a,b,c,d}.
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let abcd = g.and(abc, d);
        g.add_output("y", abcd);
        let cs = enumerate(&g, 6);
        let root = &cs.cuts[abcd.var() as usize];
        let want: Vec<u32> = vec![a.var(), b.var(), c.var(), d.var()];
        assert!(
            root.iter().any(|c| c.leaves == want),
            "root cuts {root:?} must include the full-support cut"
        );
    }

    #[test]
    fn enumerate_respects_k2() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output("y", abc);
        let cs = enumerate(&g, 2);
        for cuts in &cs.cuts {
            for cut in cuts {
                assert!(cut.size() <= 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "LUT arity")]
    fn enumerate_rejects_bad_k() {
        let g = Aig::new();
        let _ = enumerate(&g, 1);
    }
}

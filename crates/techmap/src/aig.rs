//! And-Inverter Graphs.
//!
//! An [`Aig`] is the canonical logic-synthesis representation: every node is
//! a 2-input AND, inversion lives on edges ([`Lit`]). The conversion from an
//! [`rfjson_rtl::Netlist`] treats flip-flop outputs as extra primary inputs
//! and flip-flop data pins as extra outputs, so the AIG covers exactly the
//! combinational cones between registers — the logic that occupies LUTs.

use rfjson_rtl::netlist::{Netlist, Node};
use std::collections::HashMap;
use std::fmt;

/// An edge literal: node variable plus optional inversion.
///
/// `Lit(0)` is constant false, `Lit(1)` constant true (node 0 is the
/// reserved constant node, as in the AIGER format).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false literal.
    pub const FALSE: Lit = Lit(0);
    /// Constant true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node variable and polarity.
    pub fn new(var: u32, inverted: bool) -> Self {
        Lit(var << 1 | u32::from(inverted))
    }

    /// The node variable this literal points at.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is inverting.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // netlist code reads better as `lit.not()` than `!lit`
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// True if this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.var() == 0
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverted() {
            write!(f, "!v{}", self.var())
        } else {
            write!(f, "v{}", self.var())
        }
    }
}

/// AIG node kinds. Node 0 is always the constant-false node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigNode {
    /// Reserved constant node (variable 0).
    Const,
    /// Primary input (original netlist input or a flip-flop output).
    Input {
        /// Diagnostic name.
        name: String,
    },
    /// Two-input AND of literals.
    And(Lit, Lit),
}

/// An And-Inverter Graph with structural hashing.
///
/// # Example
///
/// ```
/// use rfjson_techmap::aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let y = g.xor(a, b);
/// g.add_output("y", y);
/// assert_eq!(g.eval(&[true, false])[0], true);
/// assert_eq!(g.num_ands(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    outputs: Vec<(String, Lit)>,
    strash: HashMap<(Lit, Lit), u32>,
    num_inputs: usize,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            outputs: Vec::new(),
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Adds a primary input and returns its positive literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let var = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input { name: name.into() });
        self.num_inputs += 1;
        Lit::new(var, false)
    }

    /// Registers `lit` as a named output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push((name.into(), lit));
    }

    /// AND of two literals with constant folding and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Order operands for canonical hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if let Some(&var) = self.strash.get(&(a, b)) {
            return Lit::new(var, false);
        }
        let var = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), var);
        Lit::new(var, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR as `(a & !b) | (!a & b)` (3 AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let l = self.and(a, b.not());
        let r = self.and(a.not(), b);
        self.or(l, r)
    }

    /// Multiplexer `s ? t : f` (3 AND nodes).
    pub fn mux(&mut self, s: Lit, t: Lit, f: Lit) -> Lit {
        let hi = self.and(s, t);
        let lo = self.and(s.not(), f);
        self.or(hi, lo)
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Node table (index = variable).
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Evaluates all outputs for an input assignment given in input-creation
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Aig::num_inputs`].
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut val = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            val[i] = match node {
                AigNode::Const => false,
                AigNode::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                AigNode::And(a, b) => {
                    let va = val[a.var() as usize] ^ a.is_inverted();
                    let vb = val[b.var() as usize] ^ b.is_inverted();
                    va && vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, l)| val[l.var() as usize] ^ l.is_inverted())
            .collect()
    }

    /// Converts a netlist into an AIG.
    ///
    /// Flip-flop Q pins become AIG inputs named `_ff<i>_q`; their D cones
    /// become outputs named `_ff<i>_d`. Netlist primary inputs/outputs map
    /// 1:1. The returned AIG therefore contains every combinational cone
    /// that will occupy LUTs on the FPGA.
    pub fn from_netlist(netlist: &Netlist) -> Aig {
        let mut g = Aig::new();
        let mut lit_of: Vec<Lit> = vec![Lit::FALSE; netlist.len()];
        let mut dffs = Vec::new();
        // Pass 1: create AIG inputs for netlist inputs and FF outputs, in
        // netlist node order so `eval` order is deterministic.
        for (id, node) in netlist.nodes() {
            match node {
                Node::Input { name } => {
                    lit_of[id.index()] = g.add_input(name.clone());
                }
                Node::Dff { d, .. } => {
                    let i = dffs.len();
                    lit_of[id.index()] = g.add_input(format!("_ff{i}_q"));
                    dffs.push((i, d.expect("netlist must be fully connected")));
                }
                _ => {}
            }
        }
        // Pass 2: gates in creation (= topological) order.
        for (id, node) in netlist.nodes() {
            let lit = match node {
                Node::Input { .. } | Node::Dff { .. } => continue,
                Node::Const(v) => {
                    if *v {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                }
                Node::Not(a) => lit_of[a.index()].not(),
                Node::And(a, b) => {
                    let (a, b) = (lit_of[a.index()], lit_of[b.index()]);
                    g.and(a, b)
                }
                Node::Or(a, b) => {
                    let (a, b) = (lit_of[a.index()], lit_of[b.index()]);
                    g.or(a, b)
                }
                Node::Xor(a, b) => {
                    let (a, b) = (lit_of[a.index()], lit_of[b.index()]);
                    g.xor(a, b)
                }
                Node::Mux { sel, t, f } => {
                    let (s, t, f) = (lit_of[sel.index()], lit_of[t.index()], lit_of[f.index()]);
                    g.mux(s, t, f)
                }
            };
            lit_of[id.index()] = lit;
        }
        for (name, id) in netlist.outputs() {
            g.add_output(name.clone(), lit_of[id.index()]);
        }
        for (i, d) in dffs {
            g.add_output(format!("_ff{i}_d"), lit_of[d.index()]);
        }
        g
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aig: {} inputs, {} ands, {} outputs",
            self.num_inputs,
            self.num_ands(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let l = Lit::new(5, true);
        assert_eq!(l.var(), 5);
        assert!(l.is_inverted());
        assert_eq!(l.not().var(), 5);
        assert!(!l.not().is_inverted());
        assert!(Lit::FALSE.is_const() && Lit::TRUE.is_const());
        assert_eq!(Lit::FALSE.not(), Lit::TRUE);
        assert_eq!(format!("{l:?}"), "!v5");
    }

    #[test]
    fn and_constant_folding() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn strash_dedups() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y, "commuted AND must hash to the same node");
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn eval_truth_tables() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_input("s");
        let and = g.and(a, b);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let mux = g.mux(s, a, b);
        for (n, l) in [("and", and), ("or", or), ("xor", xor), ("mux", mux)] {
            g.add_output(n, l);
        }
        for v in 0..8u32 {
            let (a, b, s) = (v & 1 == 1, v & 2 == 2, v & 4 == 4);
            let out = g.eval(&[a, b, s]);
            assert_eq!(out[0], a && b);
            assert_eq!(out[1], a || b);
            assert_eq!(out[2], a ^ b);
            assert_eq!(out[3], if s { a } else { b });
        }
    }

    #[test]
    fn from_netlist_matches_simulation() {
        use rfjson_rtl::Simulator;
        // Build a small netlist mixing every gate type plus a register.
        let mut n = Netlist::new("mix");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let g1 = n.and(a, b);
        let g2 = n.or(g1, c);
        let g3 = n.xor(g2, a);
        let g4 = n.mux(c, g3, g1);
        let q = n.dff(g4, false);
        let g5 = n.and(q, g2);
        n.output("y", g5);

        let aig = Aig::from_netlist(&n);
        // AIG inputs: a, b, c, _ff0_q ; outputs: y, _ff0_d
        assert_eq!(aig.num_inputs(), 4);
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..16u32 {
            let bits = [v & 1 == 1, v & 2 == 2, v & 4 == 4, v & 8 == 8];
            sim.set_input("a", bits[0]).unwrap();
            sim.set_input("b", bits[1]).unwrap();
            sim.set_input("c", bits[2]).unwrap();
            // Force the register to a chosen value by resetting and, if
            // needed, clocking a matching D in. Simpler: only compare when
            // the register is in its reset state (false).
            sim.reset();
            sim.settle();
            if !bits[3] {
                let out = aig.eval(&bits);
                assert_eq!(out[0], sim.output("y").unwrap(), "v={v}");
            }
        }
    }

    #[test]
    fn display_is_informative() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, b);
        g.add_output("y", y);
        assert_eq!(g.to_string(), "aig: 2 inputs, 1 ands, 1 outputs");
    }
}

//! Mapped LUT networks.
//!
//! The output of technology mapping: a DAG of K-input LUTs, each holding an
//! explicit truth table, plus output bindings. Used to *verify* mapping
//! (functional equivalence against the source AIG) and to measure mapped
//! depth.

use std::fmt;

/// Reference to a LUT input signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalRef {
    /// The i-th primary input of the network.
    Input(usize),
    /// Output of another LUT (by index into [`LutNetwork::luts`]).
    Lut(usize),
}

/// One K-input lookup table.
#[derive(Debug, Clone)]
pub struct Lut {
    /// Input signals, LSB-first with respect to the truth-table index.
    pub inputs: Vec<SignalRef>,
    /// Truth table: bit `i` is the output for input pattern `i`.
    pub table: u64,
    /// The AIG variable this LUT implements (diagnostics).
    pub root_var: u32,
}

impl Lut {
    /// Evaluates the LUT for concrete input values.
    pub fn eval(&self, values: &[bool]) -> bool {
        debug_assert_eq!(values.len(), self.inputs.len());
        let mut idx = 0usize;
        for (i, v) in values.iter().enumerate() {
            idx |= usize::from(*v) << i;
        }
        (self.table >> idx) & 1 == 1
    }
}

/// Binding of a named network output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputBinding {
    /// Constant output.
    Const(bool),
    /// A primary input, optionally inverted.
    Input {
        /// Input ordinal.
        index: usize,
        /// Invert on the way out.
        inverted: bool,
    },
    /// A LUT output, optionally inverted.
    Lut {
        /// LUT index.
        index: usize,
        /// Invert on the way out.
        inverted: bool,
    },
}

/// A technology-mapped network of K-input LUTs.
///
/// LUTs are stored in topological order (inputs of LUT *i* only reference
/// LUTs with smaller index or primary inputs).
#[derive(Debug, Clone, Default)]
pub struct LutNetwork {
    /// The LUTs, topologically ordered.
    pub luts: Vec<Lut>,
    /// Named outputs.
    pub outputs: Vec<(String, OutputBinding)>,
    /// Number of primary inputs.
    pub num_inputs: usize,
}

impl LutNetwork {
    /// Evaluates all outputs for an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut lut_vals = Vec::with_capacity(self.luts.len());
        for lut in &self.luts {
            let vals: Vec<bool> = lut
                .inputs
                .iter()
                .map(|r| match r {
                    SignalRef::Input(i) => inputs[*i],
                    SignalRef::Lut(i) => lut_vals[*i],
                })
                .collect();
            lut_vals.push(lut.eval(&vals));
        }
        self.outputs
            .iter()
            .map(|(_, b)| match *b {
                OutputBinding::Const(v) => v,
                OutputBinding::Input { index, inverted } => inputs[index] ^ inverted,
                OutputBinding::Lut { index, inverted } => lut_vals[index] ^ inverted,
            })
            .collect()
    }

    /// Largest LUT fan-in used.
    pub fn max_arity(&self) -> usize {
        self.luts.iter().map(|l| l.inputs.len()).max().unwrap_or(0)
    }

    /// Depth in LUT levels (longest path from any input to any output).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            level[i] = lut
                .inputs
                .iter()
                .map(|r| match r {
                    SignalRef::Input(_) => 0,
                    SignalRef::Lut(j) => level[*j],
                })
                .max()
                .unwrap_or(0)
                + 1;
        }
        self.outputs
            .iter()
            .map(|(_, b)| match b {
                OutputBinding::Lut { index, .. } => level[*index],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for LutNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut network: {} LUTs (max arity {}), depth {}, {} inputs, {} outputs",
            self.luts.len(),
            self.max_arity(),
            self.depth(),
            self.num_inputs,
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2_lut(a: SignalRef, b: SignalRef, root_var: u32) -> Lut {
        // table for xor: patterns 01 and 10 -> 1 (bits 1 and 2)
        Lut {
            inputs: vec![a, b],
            table: 0b0110,
            root_var,
        }
    }

    #[test]
    fn single_lut_eval() {
        let net = LutNetwork {
            luts: vec![xor2_lut(SignalRef::Input(0), SignalRef::Input(1), 1)],
            outputs: vec![(
                "y".into(),
                OutputBinding::Lut {
                    index: 0,
                    inverted: false,
                },
            )],
            num_inputs: 2,
        };
        assert_eq!(net.eval(&[false, false]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.max_arity(), 2);
    }

    #[test]
    fn chained_luts_and_inverted_output() {
        // y = !( (a ^ b) ^ c )
        let l0 = xor2_lut(SignalRef::Input(0), SignalRef::Input(1), 1);
        let l1 = xor2_lut(SignalRef::Lut(0), SignalRef::Input(2), 2);
        let net = LutNetwork {
            luts: vec![l0, l1],
            outputs: vec![(
                "y".into(),
                OutputBinding::Lut {
                    index: 1,
                    inverted: true,
                },
            )],
            num_inputs: 3,
        };
        for v in 0..8u32 {
            let bits = [v & 1 == 1, v & 2 == 2, v & 4 == 4];
            let want = !(bits[0] ^ bits[1] ^ bits[2]);
            assert_eq!(net.eval(&bits), vec![want]);
        }
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn passthrough_and_const_outputs() {
        let net = LutNetwork {
            luts: vec![],
            outputs: vec![
                ("t".into(), OutputBinding::Const(true)),
                (
                    "a_inv".into(),
                    OutputBinding::Input {
                        index: 0,
                        inverted: true,
                    },
                ),
            ],
            num_inputs: 1,
        };
        assert_eq!(net.eval(&[true]), vec![true, false]);
        assert_eq!(net.depth(), 0);
    }
}

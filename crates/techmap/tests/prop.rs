//! Property tests for technology mapping: functional equivalence of the
//! mapped LUT network against the source AIG for randomly generated
//! logic, arity bounds, and cost monotonicity.

use proptest::prelude::*;
use rfjson_techmap::aig::{Aig, Lit};
use rfjson_techmap::map_aig;

/// Deterministically grows a random AIG from a seed.
fn random_aig(seed: u64, num_inputs: usize, num_ops: usize) -> Aig {
    let mut g = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs)
        .map(|i| g.add_input(format!("i{i}")))
        .collect();
    let mut x = seed | 1;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..num_ops {
        let a = pool[(step() as usize) % pool.len()];
        let b = pool[(step() as usize) % pool.len()];
        let a = if step() % 2 == 0 { a } else { a.not() };
        let b = if step() % 2 == 0 { b } else { b.not() };
        let node = match step() % 4 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            _ => {
                let s = pool[(step() as usize) % pool.len()];
                g.mux(s, a, b)
            }
        };
        pool.push(node);
    }
    // A handful of outputs from the most recent nodes.
    let n = pool.len();
    for (k, &lit) in pool[n.saturating_sub(4)..].iter().enumerate() {
        g.add_output(format!("o{k}"), lit);
    }
    g
}

proptest! {
    #[test]
    fn mapping_preserves_function(
        seed in any::<u64>(),
        num_inputs in 2usize..7,
        num_ops in 1usize..60,
        k in 3usize..7,
    ) {
        let aig = random_aig(seed, num_inputs, num_ops);
        let (report, net) = map_aig(&aig, k);
        prop_assert!(net.max_arity() <= k, "LUT arity bound violated");
        prop_assert_eq!(report.luts, net.luts.len());
        // Exhaustive check over all input assignments (≤ 64 patterns).
        for pattern in 0u64..(1 << num_inputs) {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
            prop_assert_eq!(
                aig.eval(&inputs),
                net.eval(&inputs),
                "seed {} pattern {:b}", seed, pattern
            );
        }
    }

    #[test]
    fn larger_k_never_needs_more_luts_on_trees(
        depth in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Balanced AND tree of 2^depth inputs: cost must be monotone
        // non-increasing in K.
        let leaves = 1usize << depth;
        let mut g = Aig::new();
        let mut layer: Vec<Lit> = (0..leaves).map(|i| g.add_input(format!("i{i}"))).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| if c.len() == 2 { g.and(c[0], c[1]) } else { c[0] })
                .collect();
        }
        g.add_output("y", layer[0]);
        let _ = seed;
        let luts: Vec<usize> = (3..=6).map(|k| map_aig(&g, k).0.luts).collect();
        for w in luts.windows(2) {
            prop_assert!(w[1] <= w[0], "K-monotonicity violated: {:?}", luts);
        }
    }

    #[test]
    fn netlist_round_trip_equivalence(seed in any::<u64>()) {
        // Netlist → AIG → mapped network, checked against netlist
        // simulation on all 32 input patterns.
        use rfjson_rtl::{BitVec, Netlist, Simulator};
        let mut n = Netlist::new("rand");
        let word = n.input_word("x", 5);
        let mut pool = word.clone();
        let mut x = seed | 1;
        for g in 0..25 {
            x = x
                .wrapping_mul(2_862_933_555_777_941_757)
                .wrapping_add(3_037_000_493);
            let a = pool[(x >> 7) as usize % pool.len()];
            let b = pool[(x >> 23) as usize % pool.len()];
            let node = match (x >> 41) % 4 {
                0 => n.and(a, b),
                1 => n.or(a, b),
                2 => n.xor(a, b),
                _ => n.not(a),
            };
            pool.push(node);
            if g % 5 == 0 {
                n.output(format!("o{g}"), node);
            }
        }
        let aig = rfjson_techmap::Aig::from_netlist(&n);
        let (_, net) = map_aig(&aig, 6);
        let mut sim = Simulator::new(&n).unwrap();
        for pattern in 0u64..32 {
            sim.set_input_word("x", &BitVec::from_u64(pattern, 5)).unwrap();
            sim.settle();
            let want: Vec<bool> = n
                .outputs()
                .iter()
                .map(|(name, _)| sim.output(name).unwrap())
                .collect();
            let inputs: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
            prop_assert_eq!(net.eval(&inputs), want, "pattern {:b}", pattern);
        }
    }
}

//! Property and mutation tests for the static verifier.
//!
//! Two directions, both required: the verifier must **accept** every
//! artifact the compiler actually produces (no false alarms on the
//! entire expression zoo and on random compositions), and it must
//! **flag** each class of hand-built corruption — a redirected DFA
//! edge, a dropped latch-reset bit, a double-driven output net — with
//! its dedicated diagnostic code.

use proptest::prelude::*;
use rfjson_core::engine::OpKindView;
use rfjson_core::query::query_to_exprs;
use rfjson_core::{Engine, Expr, StructScope};
use rfjson_redfa::DENSE_ACCEPT_BIT;
use rfjson_riotbench::Query;
use rfjson_rtl::Netlist;
use rfjson_verify::{dfa, netlist, program, verify_expr, verify_query, Severity};

/// Expressions covering every primitive technique, every combinator,
/// both structural scopes, and context nesting (mirrors the zoo of the
/// engine differential tests).
fn expression_zoo() -> Vec<Expr> {
    vec![
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::substring(b"tolls_amount", 2).unwrap(),
        Expr::substring(b"dust", 4).unwrap(),
        Expr::substring(b"favourites_count", 9).unwrap(),
        Expr::window(b"light").unwrap(),
        Expr::dfa_string(b"humidity").unwrap(),
        Expr::int_range(12, 49),
        Expr::float_range("-12.5", "43.1").unwrap(),
        Expr::and([
            Expr::substring(b"light", 1).unwrap(),
            Expr::int_range(1345, 26282),
        ]),
        Expr::or([
            Expr::dfa_string(b"cat").unwrap(),
            Expr::window(b"dog").unwrap(),
        ]),
        Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]),
        Expr::context_scoped(
            StructScope::Member,
            [
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::float_range("2.50", "18.00").unwrap(),
            ],
        ),
        query_to_exprs(&Query::qs0(), 1).unwrap(),
        query_to_exprs(&Query::qt(), 2).unwrap(),
        Expr::context([
            Expr::or([
                Expr::context([Expr::substring(b"n", 1).unwrap(), Expr::int_range(0, 9)]),
                Expr::window(b"dust").unwrap(),
            ]),
            Expr::float_range("0.5", "1.5").unwrap(),
        ]),
    ]
}

/// Leaf pool for random compositions: one of each primitive flavour.
fn leaf(i: usize) -> Expr {
    match i % 6 {
        0 => Expr::substring(b"dust", 1).unwrap(),
        1 => Expr::substring(b"light", 2).unwrap(),
        2 => Expr::window(b"tip").unwrap(),
        3 => Expr::dfa_string(b"fare").unwrap(),
        4 => Expr::int_range(0, 99),
        _ => Expr::float_range("0.5", "9.5").unwrap(),
    }
}

/// Deterministic random composition over the leaf pool, driven by a
/// splitmix64 stream so every seed is reproducible.
fn random_expr(seed: u64, size: usize) -> Expr {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    build(&mut next, size)
}

/// Recursive worker for [`random_expr`].
fn build(next: &mut impl FnMut() -> u64, budget: usize) -> Expr {
    if budget <= 1 {
        return leaf(next() as usize);
    }
    let arity = 2 + (next() as usize % 2);
    let children: Vec<Expr> = (0..arity).map(|_| build(next, budget / arity)).collect();
    match next() % 4 {
        0 => Expr::and(children),
        1 => Expr::or(children),
        2 => Expr::context(children),
        _ => Expr::context_scoped(StructScope::Member, children),
    }
}

#[test]
fn verifier_accepts_every_zoo_expression() {
    for expr in expression_zoo() {
        let report = verify_expr(&expr, "zoo");
        assert!(!report.has_errors(), "expr `{expr}`:\n{report}");
    }
}

#[test]
fn verifier_accepts_all_riotbench_queries() {
    for query in Query::all() {
        for b in [1, 2] {
            let report = verify_query(&query, b).unwrap();
            assert!(!report.has_errors(), "{report}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any compiler-produced artifact set must verify clean: the three
    /// passes may inform and warn, but never error.
    #[test]
    fn verifier_accepts_random_compositions(
        seed in 0u64..1_000_000,
        size in 1usize..10,
    ) {
        let expr = random_expr(seed, size);
        let report = verify_expr(&expr, "random");
        prop_assert!(!report.has_errors(), "expr `{}`:\n{}", expr, report);
    }
}

// ---------------------------------------------------------------------
// Mutation detection: each corruption class has a dedicated test and a
// dedicated diagnostic code.
// ---------------------------------------------------------------------

/// Mutation class 1 — a DFA edge redirected to the wrong (but valid and
/// correctly accept-flagged) state must be caught by the dense/sparse
/// agreement check.
#[test]
fn mutation_redirected_dfa_edge_is_flagged() {
    let expr = Expr::dfa_string(b"humidity").unwrap();
    let Expr::Str(spec) = &expr else {
        unreachable!()
    };
    let m = rfjson_core::primitive::DfaStringMatcher::new(&spec.needle);
    let d = m.dfa();
    let mut table = d.dense_table();
    let idx = 256 + usize::from(b'q');
    let old = table[idx] & !DENSE_ACCEPT_BIT;
    let new = (old + 1) % d.num_states() as u16;
    let flag = if d.is_accept(new) {
        DENSE_ACCEPT_BIT
    } else {
        0
    };
    table[idx] = new | flag;

    let diags = dfa::verify_dense_table(d, &table, d.dense_start(), "mutated");
    assert!(
        diags
            .iter()
            .any(|di| di.code == "D011" && di.severity == Severity::Error),
        "{diags:?}"
    );
    // The untouched table is clean — the diagnostic is the mutation's.
    assert!(dfa::verify_dense_table(d, &d.dense_table(), d.dense_start(), "clean").is_empty());
}

/// Mutation class 2 — a context's latch-clear mask loses one descendant
/// bit: that latch would survive across structural instances, the exact
/// stale-state bug the paper's context machinery exists to prevent.
#[test]
fn mutation_dropped_latch_reset_is_flagged() {
    let expr = Expr::context([
        Expr::substring(b"temperature", 1).unwrap(),
        Expr::float_range("0.7", "35.1").unwrap(),
    ]);
    let engine = Engine::compile(&expr);
    let mut view = engine.program_view();
    assert!(program::verify_program(&view)
        .iter()
        .all(|d| d.severity < Severity::Error));

    let (node, clear_off) = view
        .ops
        .iter()
        .find_map(|op| match op.kind {
            OpKindView::Ctx { clear_off, .. } => Some((op.node, clear_off)),
            _ => None,
        })
        .expect("expression has a context");
    let descendant = (node - 1) as usize;
    view.masks[clear_off as usize + descendant / 64] &= !(1u64 << (descendant % 64));

    let diags = program::verify_program(&view);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "P010" && d.severity == Severity::Error),
        "{diags:?}"
    );
}

/// Mutation class 3 — the same output net driven twice must be caught
/// by the netlist pass.
#[test]
fn mutation_double_driven_net_is_flagged() {
    let mut n = Netlist::new("mutated");
    let a = n.input("a");
    let b = n.input("b");
    let g = n.and_gate(a, b);
    n.output("match", g);
    n.output("match", a);

    let diags = netlist::verify_netlist(&n);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "N003" && d.severity == Severity::Error),
        "{diags:?}"
    );
}

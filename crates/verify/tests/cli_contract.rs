//! Exit-code contract of the `verify` bin, plus the Display/source
//! contract of the workspace error taxonomy the bin's consumers (CI
//! scripts, ingest supervisors) match on.
//!
//! The bin's contract: exit 0 when no error-severity diagnostic fires,
//! 1 when one does, 2 on usage errors. The error-taxonomy contract:
//! `CompileError` / `RuntimeError` / `SkipReason` render stable,
//! greppable messages and chain their sources.

use rfjson_core::{CompileError, Expr};
use rfjson_runtime::{IngestLimits, RuntimeError, ShardedRunner, SkipReason, Verdict};
use std::error::Error;
use std::process::Command;

fn run_verify(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_verify"))
        .args(args)
        .output()
        .expect("verify bin runs")
}

#[test]
fn clean_queries_exit_zero() {
    let out = run_verify(&[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "reports per-artifact verdicts");
    assert!(!stdout.contains("FAIL"), "no error-severity diagnostics");
}

#[test]
fn single_query_and_block_selection_exit_zero() {
    let out = run_verify(&["--b", "1", "QT"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unknown_query_is_a_usage_error() {
    let out = run_verify(&["NO_SUCH_QUERY"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn malformed_block_list_is_a_usage_error() {
    assert_eq!(run_verify(&["--b"]).status.code(), Some(2));
    assert_eq!(run_verify(&["--b", "zero"]).status.code(), Some(2));
    assert_eq!(run_verify(&["--b", ""]).status.code(), Some(2));
}

#[test]
fn compile_error_contract() {
    // The fallible construction path renders a stable message and
    // chains the underlying expression error.
    let err = ShardedRunner::<rfjson_core::Engine>::try_new(&Expr::And(vec![])).unwrap_err();
    let CompileError::InvalidExpr(_) = &err else {
        panic!("empty combinator is an InvalidExpr, got {err:?}");
    };
    assert!(err.to_string().starts_with("invalid expression:"));
    assert!(err.source().is_some(), "source chains to ExprError");
}

#[test]
fn runtime_error_contract() {
    let err = RuntimeError::ShardFailed {
        shard: 3,
        records: 4..9,
    };
    let msg = err.to_string();
    assert!(msg.contains("shard 3"), "{msg}");
    assert!(msg.contains("4..9"), "{msg}");
    assert!(err.source().is_none());
    let wrapped = RuntimeError::from(CompileError::InvalidExpr(
        Expr::Or(vec![]).validate().unwrap_err(),
    ));
    assert!(wrapped.to_string().starts_with("lane compilation failed:"));
    assert!(wrapped.source().is_some(), "source chains to CompileError");
}

#[test]
fn skip_reason_contract() {
    // SkipReason rides inside Verdict::Skipped; its Display is what
    // quarantine logs grep for.
    let too_long = SkipReason::TooLong {
        limit: 8,
        actual: 20,
    };
    assert_eq!(too_long.to_string(), "record too long (20 bytes > limit 8)");
    let budget = SkipReason::RecordLimit { limit: 5 };
    assert_eq!(budget.to_string(), "record limit reached (max 5 records)");
    assert_eq!(
        Verdict::Skipped(budget).to_string(),
        "skipped: record limit reached (max 5 records)"
    );
    // And the runner actually produces it under limits.
    let mut runner =
        ShardedRunner::<rfjson_core::Engine>::try_with_shards(&Expr::int_range(0, 9), 2).unwrap();
    let verdicts = runner
        .filter_stream_verdicts(b"{\"a\":1}\n{\"a\":2}\n", IngestLimits::max_records(1))
        .unwrap();
    assert_eq!(
        verdicts[1],
        Verdict::Skipped(SkipReason::RecordLimit { limit: 1 })
    );
}

//! # rfjson-verify — static analysis of compiled raw filters
//!
//! Every artifact the compiler produces — the byte-class DFAs of the
//! string/number primitives, the flat post-order node program of the
//! batch [`Engine`], and the elaborated [`Netlist`] — encodes invariants
//! that the hot execution loops rely on *without checking*. This crate
//! re-proves those invariants offline and reports violations through a
//! shared diagnostics model, so a miscompiled filter is caught by a lint
//! run instead of a wrong accept/reject decision on customer data.
//!
//! ## The three passes
//!
//! * [`dfa`] — automaton sanity (codes `D0xx`): transition targets in
//!   range, unreachable/dead states, accept-sink detection, and full
//!   agreement between the sparse class-compressed representation and
//!   the dense 256-way tables the engine executes from
//!   ([`DENSE_ACCEPT_BIT`](rfjson_redfa::DENSE_ACCEPT_BIT) consistency
//!   included).
//! * [`program`] — flat-program well-formedness (codes `P0xx`):
//!   post-order evaluation, operands defined before use, the tree
//!   single-use property, AND/OR/CTX latch-clear coverage,
//!   bitset-width/register-count consistency, and a cross-layer check
//!   that the engine's stored dense tables equal freshly derived ones.
//! * [`netlist`] — circuit-level checks (codes `N0xx`): combinational
//!   cycles via topological sort, multi-driven output nets, unconnected
//!   flip-flops, dangling inputs, dead gates, plus fanout and gate-count
//!   statistics.
//! * [`multi`] — fused multi-query plans (codes `M0xx`): per-lane
//!   structural invariants against the shared unit pool, and the dedup
//!   census re-proved by an independent recomputation from the source
//!   expressions.
//!
//! ## Entry points
//!
//! [`verify_expr`] runs the three single-query passes over one composed
//! filter expression; [`verify_query`] lints a RiotBench Table VIII
//! query end to end; [`multi::verify_batch`] lints a fused query batch.
//! The `verify` binary applies the query lint to every built-in query,
//! then the batch lint to the whole selection fused together, and exits
//! non-zero on any error-severity diagnostic.
//!
//! ```
//! use rfjson_core::Expr;
//! use rfjson_verify::verify_expr;
//!
//! let expr = Expr::context([
//!     Expr::substring(b"temperature", 1)?,
//!     Expr::float_range("0.7", "35.1")?,
//! ]);
//! let report = verify_expr(&expr, "listing2");
//! assert!(!report.has_errors());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod multi;
pub mod netlist;
pub mod program;

use rfjson_core::expr::{ExprError, StringTechnique};
use rfjson_core::primitive::DfaStringMatcher;
use rfjson_core::{elaborate::elaborate_filter, query::query_to_exprs, Engine, Expr};
use rfjson_riotbench::Query;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property worth knowing, not a defect
    /// (e.g. "this DFA has an accept sink").
    Info,
    /// Suspicious but not unsound (dead logic, non-minimal automaton).
    Warning,
    /// The artifact violates an invariant the runtime depends on; the
    /// filter may produce wrong accept/reject decisions.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which artifact layer a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// A primitive's byte automaton (sparse or dense form).
    Dfa,
    /// The engine's flat post-order node program.
    Program,
    /// The elaborated gate-level netlist.
    Netlist,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Dfa => write!(f, "dfa"),
            Layer::Program => write!(f, "program"),
            Layer::Netlist => write!(f, "netlist"),
        }
    }
}

/// One finding of a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which artifact layer it concerns.
    pub layer: Layer,
    /// Stable short code (`D011`, `P010`, `N003`, …) — see the module
    /// docs of [`dfa`], [`program`] and [`netlist`] for the catalogue.
    pub code: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where in the artifact (a primitive's display form, a node id, a
    /// port name, …).
    pub location: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    pub fn error(layer: Layer, code: &'static str, location: &str, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            layer,
            code,
            message,
            location: location.to_string(),
        }
    }

    /// Builds a warning-severity diagnostic.
    pub fn warning(
        layer: Layer,
        code: &'static str,
        location: &str,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            layer,
            code,
            message,
            location: location.to_string(),
        }
    }

    /// Builds an info-severity diagnostic.
    pub fn info(layer: Layer, code: &'static str, location: &str, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            layer,
            code,
            message,
            location: location.to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}/{}] {}: {}",
            self.severity, self.layer, self.code, self.location, self.message
        )
    }
}

/// The collected findings of a verification run over one artifact set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// What was verified (query or expression name).
    pub name: String,
    /// All findings, in pass order (DFA, program, netlist).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `name`.
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_string(),
            diagnostics: Vec::new(),
        }
    }

    /// Does the report contain any error-severity diagnostic?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Findings at or above `min` severity.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= min)
    }

    /// One-line summary: `QS0: 0 errors, 1 warning, 12 info`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} errors, {} warnings, {} info",
            self.name,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Runs the DFA pass over every automaton-backed primitive of `expr`
/// (exact-string DFAs, including window specs which compile to the same
/// automaton, and number-range DFAs; approximate substring matchers have
/// no automaton and are skipped).
fn dfa_pass(expr: &Expr, out: &mut Vec<Diagnostic>) {
    match expr {
        Expr::Str(spec) => match spec.technique {
            StringTechnique::Dfa | StringTechnique::Window => {
                let m = DfaStringMatcher::new(&spec.needle);
                let loc = expr.to_string();
                out.extend(dfa::verify_dfa(m.dfa(), &loc));
                out.extend(dfa::verify_dense_table(
                    m.dfa(),
                    &m.dfa().dense_table(),
                    m.dfa().dense_start(),
                    &loc,
                ));
            }
            StringTechnique::Substring(_) => {}
        },
        Expr::Num(bounds) => {
            let d = bounds.to_dfa();
            let loc = expr.to_string();
            out.extend(dfa::verify_dfa(&d, &loc));
            out.extend(dfa::verify_dense_table(
                &d,
                &d.dense_table(),
                d.dense_start(),
                &loc,
            ));
        }
        Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
            for c in cs {
                dfa_pass(c, out);
            }
        }
    }
}

/// Runs all three verification passes over one composed filter
/// expression: the DFA pass on every automaton-backed primitive, the
/// program pass on the compiled [`Engine`], and the netlist pass on the
/// elaborated circuit.
pub fn verify_expr(expr: &Expr, name: &str) -> Report {
    let mut report = Report::new(name);
    dfa_pass(expr, &mut report.diagnostics);
    let engine = Engine::compile(expr);
    report.diagnostics.extend(program::verify_engine(&engine));
    let n = elaborate_filter(expr, name);
    report.diagnostics.extend(netlist::verify_netlist(&n));
    report
}

/// Lints one RiotBench Table VIII query: derives its filter expression
/// with substring block length `b` and runs [`verify_expr`] on it.
///
/// # Errors
///
/// Propagates [`ExprError`] if the query cannot be expressed with the
/// given block length (e.g. `b` longer than an attribute name).
pub fn verify_query(query: &Query, b: usize) -> Result<Report, ExprError> {
    let expr = query_to_exprs(query, b)?;
    let mut report = verify_expr(&expr, &format!("{} (b={b})", query.name));
    report.diagnostics.insert(
        0,
        Diagnostic::info(
            Layer::Program,
            "V000",
            &query.name,
            format!("expression: {expr}"),
        ),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_accounting() {
        let mut r = Report::new("t");
        assert!(r.max_severity().is_none());
        r.diagnostics
            .push(Diagnostic::info(Layer::Dfa, "D005", "x", "sink".into()));
        r.diagnostics.push(Diagnostic::warning(
            Layer::Netlist,
            "N006",
            "n3",
            "dead".into(),
        ));
        assert!(!r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        r.diagnostics.push(Diagnostic::error(
            Layer::Program,
            "P010",
            "ctx 4",
            "drop".into(),
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.at_least(Severity::Warning).count(), 2);
        assert!(r.summary().contains("1 errors"));
        assert!(r.to_string().contains("error [program/P010] ctx 4: drop"));
    }

    #[test]
    fn clean_expression_verifies_clean() {
        let expr = Expr::and([
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::dfa_string(b"dust").unwrap(),
            Expr::int_range(12, 49),
        ]);
        let report = verify_expr(&expr, "smoke");
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn query_lint_is_clean() {
        let report = verify_query(&Query::qt(), 2).unwrap();
        assert!(!report.has_errors(), "{report}");
        assert!(report.diagnostics[0].message.contains("expression:"));
    }
}
